//! # ngs-query
//!
//! A long-lived concurrent region-query engine over preprocessed
//! BAMX/BAIX shards — the serving-side complement to the paper's batch
//! partial conversion (Section III-B). Where `BamConverter::convert_partial`
//! pays shard-open and index-load costs on every call, this engine keeps
//! datasets open in a capacity-bounded LRU [`ShardStore`] and answers a
//! stream of region requests from a bounded worker pool:
//!
//! * **Class-aware admission control** — bounded *per-class* queues
//!   (interactive, batch) with strict-priority + aging dequeue; a full
//!   class queue rejects with the typed [`QueryError::Overloaded`]
//!   (carrying a `retry_after` hint) instead of blocking the caller,
//!   and a per-shard admission cap sheds hot-key monopolists
//!   (DESIGN.md §13).
//! * **Deadline-aware shedding** — each request may carry an absolute
//!   deadline on the engine's injected [`Clock`]; expired requests are
//!   shed with [`QueryError::Shed`] at admission or at dequeue, always
//!   *before* any decode work. Injecting a [`ManualClock`] makes
//!   deadline tests deterministic.
//! * **Overload tooling** — a deterministic open-loop load-plan
//!   generator ([`load`]) and a client-side retry budget ([`retry`])
//!   bound measurement and retry amplification under sustained
//!   overload.
//! * **Concurrent hot path** — the store's cache is sharded into
//!   independently-locked segments, concurrent misses on one dataset
//!   coalesce into a single decode (single-flight), responses are
//!   zero-copy `Arc` clones of the cached block, and workers batch
//!   queued requests per wakeup (DESIGN.md §11).
//! * **Two request kinds** — region→format conversion (byte-identical
//!   to single-rank `convert_partial`, sharing its code path) and
//!   region coverage histograms feeding `ngs-stats`.
//! * **Metrics** — every finished request lands in a ledger (queue
//!   wait, service time, cache hit, bytes out) aggregated into a
//!   [`QueryStats`] snapshot.
//! * **Fault tolerance** — transient shard-open failures retry with a
//!   capped, clock-driven backoff ([`RetryPolicy`]); structurally
//!   corrupt shards are quarantined so they fail fast instead of being
//!   hot-retried on every request. Both surface in [`QueryStats`], and
//!   the store's opener seam ([`ShardStore::with_opener`]) lets tests
//!   and `ngsp chaos` inject `ngs-fault` wrappers.
//! * **Graceful drain** — [`QueryEngine::drain`] stops admission,
//!   finishes all queued work, joins the workers, and returns the final
//!   statistics.
//!
//! Entry points: [`QueryEngine`] directly, `Framework::query_engine()`
//! in `ngs-core`, or the `ngsp query` batch subcommand.

pub mod clock;
pub mod engine;
pub mod load;
pub mod metrics;
pub mod request;
pub mod retry;
pub mod store;

#[cfg(test)]
pub(crate) mod testutil;

pub use clock::{Clock, ManualClock, SystemClock};
pub use engine::{EngineConfig, QueryEngine, Ticket};
pub use load::{generate as generate_load, Arrival, LoadProfile, TrafficKind};
pub use metrics::{QueryStats, RequestMetrics};
pub use request::{
    QueryClass, QueryError, QueryKind, QueryOutcome, QueryRequest, QueryResponse, ShedReason,
};
pub use retry::{RetryBudget, RetryBudgetConfig};
pub use store::{
    CacheCounters, CachedShard, Repairer, RetryPolicy, SegmentCounters, ShardStore, SourceOpener,
};
