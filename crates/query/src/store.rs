//! The shard store: dataset discovery plus a capacity-bounded LRU cache
//! of open BAMX handles and decoded BAIX indexes.
//!
//! Opening a BAMX shard walks its (possibly BGZF-compressed) block
//! structure and loading a BAIX deserializes the whole index, so a
//! long-lived engine amortizes both across requests. `BamxFile` reads
//! are positional (`read_at` on `&self`), which is what makes sharing
//! one cached handle across worker threads sound.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ngs_bamx::{Baix, BamxFile};
use ngs_formats::error::{Error, Result};
use parking_lot::Mutex;

/// An open dataset: the shared BAMX handle plus its decoded BAIX index.
#[derive(Clone)]
pub struct CachedShard {
    /// Open BAMX shard (thread-safe positional reads).
    pub bamx: Arc<BamxFile>,
    /// Decoded BAIX index for the shard.
    pub baix: Arc<Baix>,
}

/// Snapshot of the store's cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to open and index a dataset.
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheCounters {
    /// `hits / (hits + misses)`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct StoreState {
    /// name → (shard, last-use stamp). Eviction removes the smallest
    /// stamp — O(n), fine for the single-digit capacities used here.
    cache: HashMap<String, (CachedShard, u64)>,
    tick: u64,
}

/// Discovers and caches the BAMX+BAIX datasets of one directory.
pub struct ShardStore {
    dir: PathBuf,
    capacity: usize,
    state: Mutex<StoreState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardStore {
    /// Opens a store over `dir`, holding at most `capacity` datasets
    /// open at once (minimum 1).
    pub fn open(dir: impl AsRef<Path>, capacity: usize) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        if !dir.is_dir() {
            return Err(Error::InvalidRecord(format!(
                "shard directory {} does not exist",
                dir.display()
            )));
        }
        Ok(ShardStore {
            dir,
            capacity: capacity.max(1),
            state: Mutex::new(StoreState { cache: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The directory being served.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Dataset names in the directory: every `NAME.bamx` with a sibling
    /// `NAME.baix`, sorted.
    pub fn datasets(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "bamx")
                && path.with_extension("baix").is_file()
            {
                if let Some(stem) = path.file_stem() {
                    names.push(stem.to_string_lossy().into_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Fetches a dataset, opening it on a miss. Returns the shard and
    /// whether the lookup hit the cache.
    pub fn get(&self, name: &str) -> Result<(CachedShard, bool)> {
        if name.contains(['/', '\\']) || name.is_empty() {
            return Err(Error::InvalidRecord(format!("bad dataset name {name:?}")));
        }
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some((shard, stamp)) = state.cache.get_mut(name) {
            *stamp = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((shard.clone(), true));
        }
        // Miss: open under the lock. This serializes cold opens, which
        // keeps a thundering herd from opening the same dataset twice.
        let bamx_path = self.dir.join(format!("{name}.bamx"));
        if !bamx_path.is_file() {
            return Err(Error::InvalidRecord(format!(
                "unknown dataset {name:?} in {}",
                self.dir.display()
            )));
        }
        let bamx = Arc::new(BamxFile::open(&bamx_path)?);
        let baix = Arc::new(Baix::load(bamx_path.with_extension("baix"))?);
        let shard = CachedShard { bamx, baix };
        self.misses.fetch_add(1, Ordering::Relaxed);
        state.cache.insert(name.to_string(), (shard.clone(), tick));
        if state.cache.len() > self.capacity {
            if let Some(victim) = state
                .cache
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                state.cache.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok((shard, false))
    }

    /// Number of datasets currently open.
    pub fn cached(&self) -> usize {
        self.state.lock().cache.len()
    }

    /// Current hit/miss/eviction counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::write_shard;

    #[test]
    fn discovery_lists_paired_shards_only() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "b", &[100, 200]);
        write_shard(dir.path(), "a", &[300]);
        // An orphan .bamx without .baix is not a dataset.
        std::fs::write(dir.path().join("orphan.bamx"), b"junk").unwrap();
        let store = ShardStore::open(dir.path(), 4).unwrap();
        assert_eq!(store.datasets().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn hit_and_miss_counters() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200, 300]);
        let store = ShardStore::open(dir.path(), 2).unwrap();
        let (_, hit) = store.get("d").unwrap();
        assert!(!hit);
        let (shard, hit) = store.get("d").unwrap();
        assert!(hit);
        assert_eq!(shard.bamx.len(), 3);
        assert_eq!(shard.baix.len(), 3);
        assert_eq!(
            store.counters(),
            CacheCounters { hits: 1, misses: 1, evictions: 0 }
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let dir = tempfile::tempdir().unwrap();
        for name in ["a", "b", "c"] {
            write_shard(dir.path(), name, &[100]);
        }
        let store = ShardStore::open(dir.path(), 2).unwrap();
        store.get("a").unwrap();
        store.get("b").unwrap();
        store.get("a").unwrap(); // refresh a; b is now LRU
        store.get("c").unwrap(); // evicts b
        assert_eq!(store.cached(), 2);
        let (_, hit) = store.get("a").unwrap();
        assert!(hit, "refreshed entry must survive eviction");
        let (_, hit) = store.get("b").unwrap();
        assert!(!hit, "LRU entry must have been evicted");
        assert_eq!(store.counters().evictions, 2); // c's insert + b's re-insert
    }

    #[test]
    fn errors_are_typed() {
        let dir = tempfile::tempdir().unwrap();
        assert!(ShardStore::open(dir.path().join("missing"), 1).is_err());
        let store = ShardStore::open(dir.path(), 1).unwrap();
        assert!(store.get("nope").is_err());
        assert!(store.get("../escape").is_err());
        assert!(store.get("").is_err());
    }
}
