//! The shard store: dataset discovery plus a capacity-bounded,
//! *segmented* LRU cache of open BAMX handles and decoded BAIX indexes,
//! with single-flight coalescing of cold opens.
//!
//! Opening a BAMX shard walks its (possibly BGZF-compressed) block
//! structure and loading a BAIX deserializes the whole index, so a
//! long-lived engine amortizes both across requests. `BamxFile` reads
//! are positional (`read_at` on `&self`), which is what makes sharing
//! one cached handle across worker threads sound.
//!
//! # Concurrency (DESIGN.md §11)
//!
//! The store used to serialize every lookup — hits included — on one
//! `Mutex<StoreState>`, which made the serving tier contention-bound
//! (`BENCH_query.json` showed *negative* worker scaling). The rebuilt
//! store removes that sequential bottleneck in three moves:
//!
//! * **Segmentation** — cache, health, and in-flight state are
//!   partitioned into N independently-locked segments by a
//!   deterministic FNV-1a hash of the dataset name
//!   ([`ShardStore::segment_index`]). Requests for datasets in
//!   different segments never touch the same lock. The capacity bound
//!   is a *global* cost budget (`occupancy` atomic); eviction picks the
//!   LRU victim of the *inserting* segment, so no lookup ever holds two
//!   segment locks (a segment down to its last entry tolerates a
//!   bounded overage rather than reach into a sibling).
//! * **Single-flight** — a cold open publishes an in-flight entry in
//!   its segment before releasing the lock; concurrent misses on the
//!   same dataset park on that entry and receive the *shared* decode
//!   result (`Arc` clones — zero copies, zero duplicate decodes).
//!   Failures broadcast a typed copy preserving `is_transient`, and the
//!   entry is removed *before* waiters wake, so a failed decode never
//!   poisons the key: the next lookup starts a fresh attempt (or hits
//!   the health gate the leader recorded).
//! * **Lock order** — at most one segment lock is held at any time, and
//!   never across a decode, repair, or filesystem probe; the in-flight
//!   slot lock is only taken with no segment lock held. Decodes and
//!   repairs for *different* datasets now run concurrently.
//!
//! # Failure handling
//!
//! A failed open is classified by [`Error::is_transient`]:
//!
//! * **Transient** (I/O errors — a flaky disk or network mount): retried
//!   up to [`RetryPolicy::attempts`] times within the same `get`, then
//!   the dataset enters *backoff* — further lookups are refused without
//!   touching the disk until a deadline on the injected [`Clock`]
//!   passes. The backoff doubles per failed round, capped at
//!   [`RetryPolicy::max_backoff`], and clears on the first success.
//! * **Structural** ([`DecodeError`](ngs_formats::error::DecodeError)
//!   and friends — corrupt bytes): the dataset is *quarantined*
//!   permanently. Re-reading corrupt bytes can never succeed, so the
//!   store refuses the dataset immediately instead of hot-retrying the
//!   open on every request (the failure mode this design replaces).
//!
//! Both states are visible in [`CacheCounters`] and, through the
//! engine, in [`QueryStats`](crate::QueryStats). The store never
//! sleeps: in-call retries are immediate and backoff is enforced as a
//! deadline comparison, so tests drive everything with a
//! [`ManualClock`](crate::ManualClock).

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ngs_bamx::repo::ShardRepo;
use ngs_bamx::{Baix, BamxFile};
use ngs_bgzf::ReadAt;
use ngs_formats::error::{Error, Result};
use ngs_obs::{Counter, Histogram, Registry};
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::clock::{Clock, SystemClock};

/// Opens a shard file as a positional read source. The indirection is
/// what lets tests and the `ngsp chaos` harness substitute fault-
/// injecting sources (`ngs_fault::FaultyFile`) for plain files.
pub type SourceOpener = dyn Fn(&Path) -> std::io::Result<Box<dyn ReadAt>> + Send + Sync;

/// Re-derives a damaged dataset from its source of truth (typically a
/// resumable `preprocess_repo` run over the original BAM/SAM). Invoked
/// by the store at most once per structural failure before the dataset
/// is quarantined; returning `Ok` means the artifacts on disk were
/// rebuilt and the store should re-verify and reopen them.
pub type Repairer = dyn Fn(&str) -> Result<()> + Send + Sync;

/// How the store handles transient open failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Open attempts per `get` call (minimum 1). Retries are immediate —
    /// transient faults of the "try again" kind, not "wait it out".
    pub attempts: u32,
    /// Backoff after the first round of exhausted attempts.
    pub base_backoff: Duration,
    /// Backoff ceiling; doubling stops here.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff after `failures` consecutive exhausted rounds:
    /// `base * 2^(failures-1)`, capped at `max_backoff`.
    fn backoff_after(&self, failures: u32) -> Duration {
        let doublings = failures.saturating_sub(1).min(20);
        self.base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff)
    }
}

/// Per-dataset health, tracked across `get` calls.
enum ShardHealth {
    /// Transient failures so far; opens are refused until `retry_at`.
    Backoff { consecutive_failures: u32, retry_at: Duration },
    /// Structural decode failure: permanently refused.
    Quarantined { reason: String },
}

/// An open dataset: the shared BAMX handle plus its decoded BAIX index.
/// Cloning is two `Arc` bumps — responses built from a cached shard are
/// zero-copy views of the decoded block, never re-decodes.
#[derive(Clone)]
pub struct CachedShard {
    /// Open BAMX shard (thread-safe positional reads).
    pub bamx: Arc<BamxFile>,
    /// Decoded BAIX index for the shard.
    pub baix: Arc<Baix>,
}

impl std::fmt::Debug for CachedShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedShard")
            .field("records", &self.bamx.len())
            .field("indexed", &self.baix.len())
            .finish()
    }
}

/// Snapshot of the store's cache and health counters (cross-segment
/// totals; per-segment views come from [`ShardStore::segment_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache — including lookups that parked on
    /// an in-flight decode and received the shared result.
    pub hits: u64,
    /// Lookups that had to open and index a dataset (decode leaders).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Immediate in-call retries after transient open failures.
    pub transient_retries: u64,
    /// Datasets permanently quarantined after structural decode errors.
    pub quarantined: u64,
    /// Lookups refused because the dataset was in transient backoff.
    pub backoff_rejections: u64,
    /// Self-heal attempts: structural failures handed to the wired
    /// [`Repairer`] instead of quarantining outright.
    pub repairs: u64,
    /// Self-heal attempts that ended with the dataset verified, reopened
    /// and served.
    pub repaired: u64,
    /// Cold decode operations actually performed (shard + index opens,
    /// including per-`get` retry attempts). With single-flight
    /// coalescing this stays at one per cold dataset no matter how many
    /// requests raced for it.
    pub decodes: u64,
    /// Lookups that parked on another request's in-flight decode instead
    /// of starting their own (single-flight coalescing).
    pub coalesced: u64,
}

impl CacheCounters {
    /// `hits / (hits + misses)`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-segment cache counters ([`ShardStore::segment_counters`]). The
/// segment-wise sums of these equal the global [`CacheCounters`] fields
/// of the same name — the concurrency suite asserts exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentCounters {
    /// Lookups this segment served from cache (including coalesced
    /// waiters on this segment's in-flight decodes).
    pub hits: u64,
    /// Cold opens admitted into this segment.
    pub misses: u64,
    /// Entries this segment evicted for the global budget.
    pub evictions: u64,
}

/// The outcome an in-flight decode broadcasts to its waiters. `Error`
/// is not `Clone`, so the shared copy lives behind an `Arc` and each
/// waiter reconstructs an owned error preserving classification.
type SharedOutcome = std::result::Result<CachedShard, Arc<Error>>;

/// One in-flight cold open: waiters park on `done` until the leader
/// publishes the shared outcome in `slot`. The entry is removed from
/// its segment's map *before* the outcome is published, so the key is
/// never poisoned — a request arriving after a failure starts fresh.
#[derive(Default)]
struct InFlight {
    slot: Mutex<Option<SharedOutcome>>,
    done: Condvar,
}

impl InFlight {
    /// Parks until the leader publishes, then returns a shared copy.
    fn wait(&self) -> SharedOutcome {
        let mut slot = self.slot.lock();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return match outcome {
                    Ok(shard) => Ok(shard.clone()),
                    Err(e) => Err(Arc::clone(e)),
                };
            }
            self.done.wait(&mut slot);
        }
    }

    /// Publishes the outcome and wakes every waiter.
    fn complete(&self, outcome: SharedOutcome) {
        *self.slot.lock() = Some(outcome);
        self.done.notify_all();
    }
}

/// Mutable state of one segment. Everything here is keyed by dataset
/// name, and a name only ever maps to one segment, so the maps of
/// different segments are disjoint by construction.
#[derive(Default)]
struct SegmentState {
    /// name → (shard, last-use stamp). Eviction removes the smallest
    /// stamp — O(n), fine for the single-digit capacities used here.
    cache: HashMap<String, (CachedShard, u64)>,
    /// name → health for datasets whose last open failed. Disjoint from
    /// `cache` (a successful open clears the entry) and bounded by the
    /// number of distinct failing datasets, so it needs no eviction.
    health: HashMap<String, ShardHealth>,
    /// Datasets with a repair in flight or already spent: one structural
    /// failure gets one repair attempt; a second structural failure
    /// quarantines (no repair loops). Cleared on successful admit.
    repair_spent: HashSet<String>,
    /// name → in-flight cold open other requests coalesce onto.
    inflight: HashMap<String, Arc<InFlight>>,
    /// Per-segment LRU clock (monotonic within the segment).
    tick: u64,
}

/// One independently-locked cache segment. The counters sit outside the
/// mutex so coalesced waiters can account a hit without re-locking.
#[derive(Default)]
struct Segment {
    state: Mutex<SegmentState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// What a lookup found under the segment lock: an in-flight entry to
/// park on, or leadership of a fresh cold open.
enum Role {
    Waiter(Arc<InFlight>),
    Leader(Arc<InFlight>),
}

/// Discovers and caches the BAMX+BAIX datasets of one directory.
///
/// When the directory is manifest-managed (a `MANIFEST` written by
/// [`ShardRepo`] is present), only manifest-verified shards are
/// admitted: every cold open first checks length + CRC32 + layout
/// fingerprint against the manifest, and discovery lists manifest
/// entries rather than raw directory contents. Directories without a
/// manifest behave as before. A wired [`Repairer`]
/// ([`ShardStore::with_repairer`]) turns structural failures into one
/// self-heal attempt before quarantine.
///
/// Cache state is per-segment (see the module docs); the default is a
/// single segment — exactly the old single-lock LRU semantics — and
/// [`ShardStore::with_segments`] shards it for concurrent serving.
pub struct ShardStore {
    dir: PathBuf,
    capacity: usize,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    opener: Box<SourceOpener>,
    repo: Option<ShardRepo>,
    repairer: Option<Box<Repairer>>,
    segments: Vec<Segment>,
    /// Datasets currently cached across all segments (the global cost
    /// budget `capacity` bounds this, with per-segment victim selection).
    occupancy: AtomicUsize,
    // Counter handles — private by default, or registered in a shared
    // `ngs-obs` registry via `with_obs` (no ad-hoc counter structs).
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    transient_retries: Arc<Counter>,
    quarantined: Arc<Counter>,
    backoff_rejections: Arc<Counter>,
    repairs: Arc<Counter>,
    repaired: Arc<Counter>,
    decodes: Arc<Counter>,
    coalesced: Arc<Counter>,
    seg_contended: Arc<Counter>,
    lock_wait: Arc<Histogram>,
}

impl ShardStore {
    /// Opens a store over `dir` with the system clock and default
    /// [`RetryPolicy`], holding at most `capacity` datasets open at once
    /// (minimum 1).
    pub fn open(dir: impl AsRef<Path>, capacity: usize) -> Result<Self> {
        Self::open_with(dir, capacity, Arc::new(SystemClock::new()), RetryPolicy::default())
    }

    /// Opens a store with an injected clock and retry policy. Backoff
    /// deadlines live on the clock's axis, so a
    /// [`ManualClock`](crate::ManualClock) makes retry behaviour fully
    /// deterministic. Starts with one segment; see
    /// [`ShardStore::with_segments`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        capacity: usize,
        clock: Arc<dyn Clock>,
        policy: RetryPolicy,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        if !dir.is_dir() {
            return Err(Error::InvalidRecord(format!(
                "shard directory {} does not exist",
                dir.display()
            )));
        }
        let repo = if ShardRepo::is_managed(&dir) { Some(ShardRepo::open(&dir)?) } else { None };
        Ok(ShardStore {
            dir,
            capacity: capacity.max(1),
            policy,
            clock,
            opener: Box::new(|path: &Path| -> std::io::Result<Box<dyn ReadAt>> {
                Ok(Box::new(std::fs::File::open(path)?))
            }),
            repo,
            repairer: None,
            segments: vec![Segment::default()],
            occupancy: AtomicUsize::new(0),
            hits: Arc::default(),
            misses: Arc::default(),
            evictions: Arc::default(),
            transient_retries: Arc::default(),
            quarantined: Arc::default(),
            backoff_rejections: Arc::default(),
            repairs: Arc::default(),
            repaired: Arc::default(),
            decodes: Arc::default(),
            coalesced: Arc::default(),
            seg_contended: Arc::default(),
            lock_wait: Arc::default(),
        })
    }

    /// Shards the cache into `n` independently-locked segments (minimum
    /// 1). Call at construction time, before any lookups — existing
    /// cache state is discarded, not rehashed. One segment reproduces
    /// the old single-lock LRU exactly; the query engine defaults to
    /// several so unrelated requests never contend.
    pub fn with_segments(mut self, n: usize) -> Self {
        self.segments = (0..n.max(1)).map(|_| Segment::default()).collect();
        self.occupancy = AtomicUsize::new(0);
        self
    }

    /// Publishes the store's counters into a shared `ngs-obs` registry
    /// under `store.*` names (so `ngsp stats` sees cache and shard-health
    /// activity). Call at construction time, before any lookups — the
    /// handles are replaced, not mirrored.
    pub fn with_obs(mut self, registry: &Registry) -> Self {
        self.hits = registry.counter("store.cache_hits");
        self.misses = registry.counter("store.cache_misses");
        self.evictions = registry.counter("store.evictions");
        self.transient_retries = registry.counter("store.transient_retries");
        self.quarantined = registry.counter("store.quarantined");
        self.backoff_rejections = registry.counter("store.backoff_rejections");
        self.repairs = registry.counter("store.repairs");
        self.repaired = registry.counter("store.repaired");
        self.decodes = registry.counter("store.decodes");
        self.coalesced = registry.counter("store.singleflight.coalesced");
        self.seg_contended = registry.counter("store.segment.contended");
        self.lock_wait = registry.histogram("store.segment.lock_wait_ns");
        self
    }

    /// Replaces how shard files are opened — the fault-injection seam.
    /// `ngsp chaos` and the store tests wrap real files in
    /// `ngs_fault::FaultyFile` here.
    pub fn with_opener(mut self, opener: Box<SourceOpener>) -> Self {
        self.opener = opener;
        self
    }

    /// Wires a repair callback — the self-healing seam. On a structural
    /// failure (corrupt bytes, torn artifact, manifest mismatch) the
    /// store invokes it once with the dataset name instead of
    /// quarantining; if it returns `Ok` and the reopened shard verifies,
    /// the request is served. A failed repair (or a second structural
    /// failure) quarantines as before, and transient repair errors feed
    /// the normal backoff machinery.
    pub fn with_repairer(mut self, repairer: Box<Repairer>) -> Self {
        self.repairer = Some(repairer);
        self
    }

    /// Whether the directory is manifest-managed (shards must verify
    /// against a [`ShardRepo`] manifest before being served).
    pub fn is_managed(&self) -> bool {
        self.repo.is_some()
    }

    /// The directory being served.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache capacity bound (global cost budget across segments).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independently-locked cache segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segment a dataset name maps to: FNV-1a over the name bytes,
    /// mod the segment count. Deterministic across runs and processes —
    /// the concurrency suite models per-segment behaviour with it.
    pub fn segment_index(&self, name: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.segments.len() as u64) as usize
    }

    /// Cache counters of one segment (panics on an out-of-range index).
    /// Summed over all segments these equal the hit/miss/eviction fields
    /// of [`ShardStore::counters`].
    pub fn segment_counters(&self, idx: usize) -> SegmentCounters {
        let seg = &self.segments[idx];
        SegmentCounters {
            hits: seg.hits.load(Ordering::Relaxed),
            misses: seg.misses.load(Ordering::Relaxed),
            evictions: seg.evictions.load(Ordering::Relaxed),
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Dataset names served, sorted. In a manifest-managed directory
    /// these are the *published* pairs — every `NAME.bamx` manifest
    /// entry with a sibling `NAME.baix` entry; files on disk that never
    /// completed publication are invisible. Otherwise, every `NAME.bamx`
    /// file with a sibling `NAME.baix` file.
    pub fn datasets(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        if let Some(repo) = &self.repo {
            let manifest = repo.manifest()?;
            for name in manifest.entries.keys() {
                if let Some(stem) = name.strip_suffix(".bamx") {
                    if manifest.entries.contains_key(&format!("{stem}.baix")) {
                        names.push(stem.to_string());
                    }
                }
            }
        } else {
            for entry in std::fs::read_dir(&self.dir)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "bamx")
                    && path.with_extension("baix").is_file()
                {
                    if let Some(stem) = path.file_stem() {
                        names.push(stem.to_string_lossy().into_owned());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Locks one segment, counting contention: an uncontended lookup is
    /// a single `try_lock`; a contended one bumps
    /// `store.segment.contended` and records the wait on the injected
    /// clock in `store.segment.lock_wait_ns`.
    fn lock_segment(&self, idx: usize) -> MutexGuard<'_, SegmentState> {
        if let Some(guard) = self.segments[idx].state.try_lock() {
            return guard;
        }
        self.seg_contended.inc();
        let waited_from = self.clock.now();
        let guard = self.segments[idx].state.lock();
        self.lock_wait
            .record_duration(self.clock.now().saturating_sub(waited_from));
        guard
    }

    /// Fetches a dataset, opening it on a miss. Returns the shard and
    /// whether the lookup was served from shared state (cache hit or a
    /// coalesced in-flight decode). Transient open failures retry per
    /// the [`RetryPolicy`]; structural decode failures quarantine the
    /// dataset (see the module docs). Concurrent misses on the same
    /// dataset coalesce into exactly one decode.
    pub fn get(&self, name: &str) -> Result<(CachedShard, bool)> {
        if name.contains(['/', '\\']) || name.is_empty() {
            return Err(Error::InvalidRecord(format!("bad dataset name {name:?}")));
        }
        let idx = self.segment_index(name);
        let role = {
            let mut state = self.lock_segment(idx);
            state.tick += 1;
            let tick = state.tick;
            if let Some((shard, stamp)) = state.cache.get_mut(name) {
                *stamp = tick;
                self.hits.inc();
                self.segments[idx].hits.fetch_add(1, Ordering::Relaxed);
                return Ok((shard.clone(), true));
            }
            // Health gates, cheapest first: quarantine is permanent,
            // backoff holds until its deadline on the injected clock.
            match state.health.get(name) {
                Some(ShardHealth::Quarantined { reason }) => {
                    return Err(Error::InvalidRecord(format!(
                        "dataset {name:?} is quarantined after a decode failure: {reason}"
                    )));
                }
                Some(ShardHealth::Backoff { consecutive_failures, retry_at }) => {
                    let now = self.clock.now();
                    if now < *retry_at {
                        self.backoff_rejections.inc();
                        return Err(Error::InvalidRecord(format!(
                            "dataset {name:?} is backing off after {consecutive_failures} \
                             transient failure(s); retry at {retry_at:?} (now {now:?})"
                        )));
                    }
                }
                None => {}
            }
            match state.inflight.get(name) {
                Some(entry) => Role::Waiter(Arc::clone(entry)),
                None => {
                    let entry = Arc::new(InFlight::default());
                    state.inflight.insert(name.to_string(), Arc::clone(&entry));
                    Role::Leader(entry)
                }
            }
        };
        match role {
            Role::Waiter(entry) => {
                // Someone else is already decoding this dataset: park on
                // the in-flight entry and share its result — no second
                // decode, no copy.
                self.coalesced.inc();
                match entry.wait() {
                    Ok(shard) => {
                        // In serialized order this lookup would have
                        // found the cache populated, so it counts as a
                        // hit — keeping hits + misses == lookups.
                        self.hits.inc();
                        self.segments[idx].hits.fetch_add(1, Ordering::Relaxed);
                        Ok((shard, true))
                    }
                    Err(shared) => Err(copy_for_waiter(&shared)),
                }
            }
            Role::Leader(entry) => {
                let outcome = self.lead_open(idx, name);
                // Remove the in-flight entry *before* publishing the
                // outcome: requests arriving after a failure must start
                // a fresh attempt, not inherit a stale error.
                self.lock_segment(idx).inflight.remove(name);
                match outcome {
                    Ok(shard) => {
                        entry.complete(Ok(shard.clone()));
                        Ok((shard, false))
                    }
                    Err(e) => {
                        entry.complete(Err(Arc::new(copy_for_waiter(&e))));
                        Err(e)
                    }
                }
            }
        }
    }

    /// The leader's cold-open path: runs with **no segment lock held**
    /// (filesystem probes, decodes, and repairs must not block sibling
    /// lookups), re-acquiring the lock briefly for each state update.
    /// Only one leader per dataset exists at a time (the in-flight
    /// entry), so the brief lock windows cannot interleave with another
    /// writer of this dataset's health state.
    fn lead_open(&self, idx: usize, name: &str) -> Result<CachedShard> {
        // An unknown dataset is a client error, not a shard failure: it
        // must never create health state (a typo'd name is not a
        // quarantine candidate). A manifest-listed dataset whose file is
        // missing is *known* (and repairable), not unknown.
        let bamx_path = self.dir.join(format!("{name}.bamx"));
        let listed = self.repo.as_ref().is_some_and(|repo| {
            repo.manifest().is_ok_and(|m| m.entries.contains_key(&format!("{name}.bamx")))
        });
        if !bamx_path.is_file() && !listed {
            return Err(Error::InvalidRecord(format!(
                "unknown dataset {name:?} in {}",
                self.dir.display()
            )));
        }
        let attempts = self.policy.attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.transient_retries.inc();
            }
            match self.open_verified(name, &bamx_path) {
                Ok(shard) => {
                    self.admit(idx, name, &shard);
                    return Ok(shard);
                }
                Err(e) if e.is_transient() => last_err = Some(e),
                Err(e) => {
                    // Structural: corrupt bytes cannot heal on their own.
                    // One self-heal attempt through the wired repairer;
                    // otherwise quarantine so later lookups fail fast
                    // instead of re-decoding.
                    match self.attempt_repair(idx, name, &bamx_path, e) {
                        Ok(shard) => {
                            self.admit(idx, name, &shard);
                            return Ok(shard);
                        }
                        Err(e) if e.is_transient() => {
                            // The repair touched a flaky disk: leave the
                            // dataset repairable and fall through to the
                            // normal backoff bookkeeping.
                            last_err = Some(e);
                            self.lock_segment(idx).repair_spent.remove(name);
                            break;
                        }
                        Err(e) => {
                            self.lock_segment(idx).health.insert(
                                name.to_string(),
                                ShardHealth::Quarantined { reason: e.to_string() },
                            );
                            self.quarantined.inc();
                            return Err(e);
                        }
                    }
                }
            }
        }
        // All attempts failed transiently: enter (or escalate) backoff.
        let mut state = self.lock_segment(idx);
        let failures = match state.health.get(name) {
            Some(ShardHealth::Backoff { consecutive_failures, .. }) => consecutive_failures + 1,
            _ => 1,
        };
        let retry_at = self.clock.now() + self.policy.backoff_after(failures);
        state
            .health
            .insert(name.to_string(), ShardHealth::Backoff { consecutive_failures: failures, retry_at });
        drop(state);
        Err(last_err.unwrap_or_else(|| {
            Error::InvalidRecord(format!("dataset {name:?} failed to open"))
        }))
    }

    /// Inserts a freshly opened shard, clearing failure bookkeeping and
    /// enforcing the global budget with per-segment victim selection.
    fn admit(&self, idx: usize, name: &str, shard: &CachedShard) {
        let seg = &self.segments[idx];
        let mut state = self.lock_segment(idx);
        state.health.remove(name);
        state.repair_spent.remove(name);
        self.misses.inc();
        seg.misses.fetch_add(1, Ordering::Relaxed);
        state.tick += 1;
        let tick = state.tick;
        if state.cache.insert(name.to_string(), (shard.clone(), tick)).is_none() {
            self.occupancy.fetch_add(1, Ordering::Relaxed);
        }
        // Evict this segment's LRU while the *global* budget is
        // exceeded. The freshest stamp belongs to the entry just
        // inserted, so the victim is never the new entry; a segment down
        // to one entry stops (bounded overage beats holding two segment
        // locks).
        while self.occupancy.load(Ordering::Relaxed) > self.capacity && state.cache.len() > 1 {
            if let Some(victim) = state
                .cache
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                state.cache.remove(&victim);
                self.occupancy.fetch_sub(1, Ordering::Relaxed);
                self.evictions.inc();
                seg.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
    }

    /// One open attempt. In a manifest-managed directory the admission
    /// gate runs first: both artifacts must verify (length, CRC32,
    /// layout fingerprint) against the manifest before any decode.
    fn open_verified(&self, name: &str, bamx_path: &Path) -> Result<CachedShard> {
        self.decodes.inc();
        if let Some(repo) = &self.repo {
            repo.verify_artifact(&format!("{name}.bamx"))?;
            repo.verify_artifact(&format!("{name}.baix"))?;
        }
        self.open_shard(bamx_path)
    }

    /// One self-heal attempt after the structural failure `cause`.
    /// Without a repairer — or when this dataset's one attempt is
    /// already spent — the cause passes straight through (the caller
    /// quarantines). The repairer runs with **no segment lock held**:
    /// the in-flight entry already guarantees at most one rebuild per
    /// dataset, and repairs of different datasets may proceed in
    /// parallel.
    fn attempt_repair(
        &self,
        idx: usize,
        name: &str,
        bamx_path: &Path,
        cause: Error,
    ) -> Result<CachedShard> {
        let Some(repairer) = &self.repairer else { return Err(cause) };
        if !self.lock_segment(idx).repair_spent.insert(name.to_string()) {
            return Err(cause);
        }
        self.repairs.inc();
        repairer(name)?;
        let shard = self.open_verified(name, bamx_path)?;
        self.repaired.inc();
        Ok(shard)
    }

    /// One open attempt: both the shard and its index, through the
    /// injected opener.
    fn open_shard(&self, bamx_path: &Path) -> Result<CachedShard> {
        let context = bamx_path.display().to_string();
        let source = (self.opener)(bamx_path)?;
        let bamx = Arc::new(BamxFile::open_with(source, &context)?);
        let baix_path = bamx_path.with_extension("baix");
        let baix_source = (self.opener)(&baix_path)?;
        let baix = Arc::new(Baix::load_with(&*baix_source, &baix_path.display().to_string())?);
        Ok(CachedShard { bamx, baix })
    }

    /// Whether `name` is permanently quarantined.
    pub fn is_quarantined(&self, name: &str) -> bool {
        let idx = self.segment_index(name);
        matches!(
            self.lock_segment(idx).health.get(name),
            Some(ShardHealth::Quarantined { .. })
        )
    }

    /// Names currently quarantined, sorted (walks every segment).
    pub fn quarantined_datasets(&self) -> Vec<String> {
        let mut names = Vec::new();
        for idx in 0..self.segments.len() {
            let state = self.lock_segment(idx);
            names.extend(
                state
                    .health
                    .iter()
                    .filter(|(_, h)| matches!(h, ShardHealth::Quarantined { .. }))
                    .map(|(k, _)| k.clone()),
            );
        }
        names.sort();
        names
    }

    /// Number of datasets currently open across all segments.
    pub fn cached(&self) -> usize {
        self.occupancy.load(Ordering::Relaxed)
    }

    /// Current cache and health counters (cross-segment totals — the
    /// only sanctioned way to read totals; never sum segment state under
    /// multiple locks).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            transient_retries: self.transient_retries.get(),
            quarantined: self.quarantined.get(),
            backoff_rejections: self.backoff_rejections.get(),
            repairs: self.repairs.get(),
            repaired: self.repaired.get(),
            decodes: self.decodes.get(),
            coalesced: self.coalesced.get(),
        }
    }
}

/// Rebuilds an owned copy of `e` for broadcasting to single-flight
/// waiters. [`Error`] is not `Clone` (it wraps `std::io::Error`), so
/// the copy reconstructs the variant — preserving the
/// [`Error::is_transient`] classification exactly, which is what the
/// retry/quarantine decisions of every consumer key on.
fn copy_for_waiter(e: &Error) -> Error {
    match e {
        Error::Io(io) => Error::Io(std::io::Error::new(io.kind(), io.to_string())),
        Error::Decode(d) => {
            Error::decode(d.kind, d.offset, d.context.clone(), d.detail.clone())
        }
        e if e.is_transient() => Error::Io(std::io::Error::other(e.to_string())),
        e => Error::InvalidRecord(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use crate::clock::ManualClock;
    use crate::testutil::write_shard;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn discovery_lists_paired_shards_only() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "b", &[100, 200]);
        write_shard(dir.path(), "a", &[300]);
        // An orphan .bamx without .baix is not a dataset.
        std::fs::write(dir.path().join("orphan.bamx"), b"junk").unwrap();
        let store = ShardStore::open(dir.path(), 4).unwrap();
        assert_eq!(store.datasets().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn hit_and_miss_counters() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200, 300]);
        let store = ShardStore::open(dir.path(), 2).unwrap();
        let (_, hit) = store.get("d").unwrap();
        assert!(!hit);
        let (shard, hit) = store.get("d").unwrap();
        assert!(hit);
        assert_eq!(shard.bamx.len(), 3);
        assert_eq!(shard.baix.len(), 3);
        assert_eq!(
            store.counters(),
            CacheCounters { hits: 1, misses: 1, decodes: 1, ..CacheCounters::default() }
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let dir = tempfile::tempdir().unwrap();
        for name in ["a", "b", "c"] {
            write_shard(dir.path(), name, &[100]);
        }
        let store = ShardStore::open(dir.path(), 2).unwrap();
        store.get("a").unwrap();
        store.get("b").unwrap();
        store.get("a").unwrap(); // refresh a; b is now LRU
        store.get("c").unwrap(); // evicts b
        assert_eq!(store.cached(), 2);
        let (_, hit) = store.get("a").unwrap();
        assert!(hit, "refreshed entry must survive eviction");
        let (_, hit) = store.get("b").unwrap();
        assert!(!hit, "LRU entry must have been evicted");
        assert_eq!(store.counters().evictions, 2); // c's insert + b's re-insert
    }

    #[test]
    fn segment_counters_sum_to_global_totals() {
        let dir = tempfile::tempdir().unwrap();
        for name in ["a", "b", "c", "d"] {
            write_shard(dir.path(), name, &[100]);
        }
        let store = ShardStore::open(dir.path(), 2).unwrap().with_segments(4);
        assert_eq!(store.segment_count(), 4);
        for name in ["a", "b", "c", "d", "a", "b", "c", "d"] {
            let _ = store.get(name).unwrap();
        }
        let totals = store.counters();
        let (mut hits, mut misses, mut evictions) = (0, 0, 0);
        for idx in 0..store.segment_count() {
            let seg = store.segment_counters(idx);
            hits += seg.hits;
            misses += seg.misses;
            evictions += seg.evictions;
        }
        assert_eq!(hits, totals.hits);
        assert_eq!(misses, totals.misses);
        assert_eq!(evictions, totals.evictions);
        assert_eq!(hits + misses, 8, "every lookup is a hit or a miss");
        assert!(store.cached() <= 2 + 3, "budget 2, overage bounded by segments - 1");
    }

    #[test]
    fn segment_index_is_deterministic_and_in_range() {
        let dir = tempfile::tempdir().unwrap();
        let store = ShardStore::open(dir.path(), 2).unwrap().with_segments(4);
        for name in ["a", "b", "chr1-shard", "input"] {
            let idx = store.segment_index(name);
            assert!(idx < 4);
            assert_eq!(idx, store.segment_index(name), "stable per name");
        }
        // FNV-1a reference value: "a" hashes to 0xaf63dc4c8601ec8c.
        let one = ShardStore::open(dir.path(), 2).unwrap();
        assert_eq!(one.segment_index("anything"), 0, "single segment maps everything to 0");
    }

    #[test]
    fn errors_are_typed() {
        let dir = tempfile::tempdir().unwrap();
        assert!(ShardStore::open(dir.path().join("missing"), 1).is_err());
        let store = ShardStore::open(dir.path(), 1).unwrap();
        assert!(store.get("nope").is_err());
        assert!(store.get("../escape").is_err());
        assert!(store.get("").is_err());
    }

    /// An opener whose first `failures` calls fail with a retryable I/O
    /// error, counting every invocation.
    fn flaky_opener(failures: u32, calls: Arc<AtomicU32>) -> Box<SourceOpener> {
        let remaining = AtomicU32::new(failures);
        Box::new(move |path: &Path| -> std::io::Result<Box<dyn ReadAt>> {
            calls.fetch_add(1, Ordering::Relaxed);
            if remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(std::io::Error::other("injected transient open failure"));
            }
            Ok(Box::new(std::fs::File::open(path)?))
        })
    }

    #[test]
    fn transient_failures_retry_within_one_get() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200]);
        let calls = Arc::new(AtomicU32::new(0));
        let store = ShardStore::open_with(
            dir.path(),
            2,
            Arc::new(ManualClock::new()),
            RetryPolicy { attempts: 3, ..RetryPolicy::default() },
        )
        .unwrap()
        .with_opener(flaky_opener(2, calls.clone()));
        // Two transient failures, then success — all inside one get.
        let (shard, hit) = store.get("d").unwrap();
        assert!(!hit);
        assert_eq!(shard.bamx.len(), 2);
        let c = store.counters();
        assert_eq!(c.transient_retries, 2);
        assert_eq!(c.misses, 1);
        assert_eq!(c.decodes, 3, "each retry round is one decode attempt");
        assert_eq!(c.backoff_rejections, 0);
        assert_eq!(c.quarantined, 0);
        // 2 failed bamx opens + 1 good bamx + 1 good baix.
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn exhausted_transient_attempts_back_off_with_doubling_cap() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        let clock = Arc::new(ManualClock::new());
        let calls = Arc::new(AtomicU32::new(0));
        let policy = RetryPolicy {
            attempts: 1,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
        };
        let store = ShardStore::open_with(dir.path(), 2, clock.clone(), policy)
            .unwrap()
            .with_opener(flaky_opener(u32::MAX, calls.clone()));

        // Round 1: open fails, backoff = 10ms.
        let err = store.get("d").unwrap_err();
        assert!(err.is_transient(), "opener failure must surface as transient: {err}");
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        // Inside the window: refused without touching the opener.
        assert!(store.get("d").is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(store.counters().backoff_rejections, 1);

        // Deadline passes: the opener is consulted again (round 2 → 20ms).
        clock.advance(Duration::from_millis(10));
        assert!(store.get("d").is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        clock.advance(Duration::from_millis(10)); // only 10 of 20ms elapsed
        assert!(store.get("d").is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(store.counters().backoff_rejections, 2);

        // Rounds 3 and 4: 40ms cap reached and held.
        clock.advance(Duration::from_millis(10));
        assert!(store.get("d").is_err()); // round 3 → 40ms
        clock.advance(Duration::from_millis(40));
        assert!(store.get("d").is_err()); // round 4 → still 40ms (cap)
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        clock.advance(Duration::from_millis(39));
        assert!(store.get("d").is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 4, "39 of 40ms: still backing off");
        assert_eq!(store.counters().quarantined, 0);
    }

    #[test]
    fn backoff_clears_on_recovery() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200, 300]);
        let clock = Arc::new(ManualClock::new());
        let calls = Arc::new(AtomicU32::new(0));
        let policy = RetryPolicy {
            attempts: 1,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        };
        let store = ShardStore::open_with(dir.path(), 2, clock.clone(), policy)
            .unwrap()
            .with_opener(flaky_opener(1, calls.clone()));
        assert!(store.get("d").is_err());
        clock.advance(Duration::from_millis(10));
        let (_, hit) = store.get("d").unwrap();
        assert!(!hit);
        // Cached now; and the health entry is gone, so a (hypothetical)
        // future miss starts from a clean slate.
        let (_, hit) = store.get("d").unwrap();
        assert!(hit);
        assert_eq!(store.counters().backoff_rejections, 0);
    }

    #[test]
    fn structural_decode_failure_quarantines_permanently() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "good", &[100]);
        // A corrupt shard: valid pairing on disk, garbage bytes inside.
        std::fs::write(dir.path().join("bad.bamx"), b"BAMJUNKJUNKJUNKJUNKJUNKJUNKJUNK").unwrap();
        std::fs::write(dir.path().join("bad.baix"), b"JUNK").unwrap();
        let calls = Arc::new(AtomicU32::new(0));
        let store = ShardStore::open_with(
            dir.path(),
            2,
            Arc::new(ManualClock::new()),
            RetryPolicy::default(),
        )
        .unwrap()
        .with_opener(flaky_opener(0, calls.clone()));

        let err = store.get("bad").unwrap_err();
        assert!(!err.is_transient(), "corrupt bytes must be structural: {err}");
        assert!(store.is_quarantined("bad"));
        assert_eq!(store.quarantined_datasets(), vec!["bad"]);
        assert_eq!(store.counters().quarantined, 1);
        let opens_after_quarantine = calls.load(Ordering::Relaxed);

        // Quarantine is permanent and fail-fast: the opener is never
        // consulted again, no matter how much time passes.
        let err = store.get("bad").unwrap_err();
        assert!(err.to_string().contains("quarantined"), "got: {err}");
        assert_eq!(calls.load(Ordering::Relaxed), opens_after_quarantine);
        assert_eq!(store.counters().quarantined, 1, "counted once, not per lookup");

        // Healthy datasets are unaffected.
        assert!(store.get("good").is_ok());
        assert_eq!(store.counters().transient_retries, 0);
    }

    /// Builds a manifest-managed shard directory: fixture files from
    /// `write_shard` published through a [`ShardRepo`]. Returns the
    /// published bytes of `NAME.bamx` and `NAME.baix`.
    fn write_managed_shard(dir: &Path, name: &str, starts: &[i64]) -> (Vec<u8>, Vec<u8>) {
        let scratch = tempfile::tempdir().unwrap();
        write_shard(scratch.path(), name, starts);
        let bamx = std::fs::read(scratch.path().join(format!("{name}.bamx"))).unwrap();
        let baix = std::fs::read(scratch.path().join(format!("{name}.baix"))).unwrap();
        let repo = ShardRepo::create(dir).unwrap();
        repo.publish_bytes(&format!("{name}.bamx"), &bamx).unwrap();
        repo.publish_bytes(&format!("{name}.baix"), &baix).unwrap();
        (bamx, baix)
    }

    #[test]
    fn managed_store_serves_verified_and_hides_unpublished() {
        let dir = tempfile::tempdir().unwrap();
        write_managed_shard(dir.path(), "pub", &[100, 200]);
        // A pair dropped into the directory without publication is
        // invisible: it never completed the temp→fsync→rename protocol.
        write_shard(dir.path(), "sneaky", &[300]);
        let store = ShardStore::open(dir.path(), 4).unwrap();
        assert!(store.is_managed());
        assert_eq!(store.datasets().unwrap(), vec!["pub"]);
        let (shard, _) = store.get("pub").unwrap();
        assert_eq!(shard.bamx.len(), 2);
    }

    #[test]
    fn managed_store_refuses_corrupt_shard_without_repairer() {
        let dir = tempfile::tempdir().unwrap();
        let (bamx, _) = write_managed_shard(dir.path(), "d", &[100, 200]);
        // Scribble the published BAMX behind the manifest's back.
        let mut bad = bamx.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        std::fs::write(dir.path().join("d.bamx"), &bad).unwrap();

        let store = ShardStore::open(dir.path(), 4).unwrap();
        let err = store.get("d").unwrap_err();
        assert!(!err.is_transient(), "manifest mismatch must be structural: {err}");
        assert!(err.to_string().contains("CRC32"), "got: {err}");
        assert!(store.is_quarantined("d"));
        assert_eq!(store.counters().quarantined, 1);
    }

    #[test]
    fn repairer_heals_corrupt_shard_instead_of_quarantining() {
        let dir = tempfile::tempdir().unwrap();
        let (bamx, _) = write_managed_shard(dir.path(), "d", &[100, 200, 300]);
        let mut bad = bamx.clone();
        bad[bamx.len() / 2] ^= 0xFF;
        std::fs::write(dir.path().join("d.bamx"), &bad).unwrap();

        let repair_calls = Arc::new(AtomicU32::new(0));
        let (repo_dir, good, calls) =
            (dir.path().to_path_buf(), bamx.clone(), repair_calls.clone());
        let store = ShardStore::open(dir.path(), 4).unwrap().with_repairer(Box::new(
            move |name: &str| {
                calls.fetch_add(1, Ordering::Relaxed);
                let repo = ShardRepo::open(&repo_dir)?;
                repo.publish_bytes(&format!("{name}.bamx"), &good)?;
                Ok(())
            },
        ));
        let (shard, hit) = store.get("d").unwrap();
        assert!(!hit);
        assert_eq!(shard.bamx.len(), 3);
        assert!(!store.is_quarantined("d"));
        assert_eq!(repair_calls.load(Ordering::Relaxed), 1);
        let c = store.counters();
        assert_eq!((c.repairs, c.repaired, c.quarantined), (1, 1, 0));
        // Served from cache afterwards; the repairer is not consulted.
        let (_, hit) = store.get("d").unwrap();
        assert!(hit);
        assert_eq!(repair_calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn failed_repair_quarantines_and_is_not_retried() {
        let dir = tempfile::tempdir().unwrap();
        let (bamx, _) = write_managed_shard(dir.path(), "d", &[100]);
        let mut bad = bamx.clone();
        bad[bamx.len() / 2] ^= 0xFF;
        std::fs::write(dir.path().join("d.bamx"), &bad).unwrap();

        let repair_calls = Arc::new(AtomicU32::new(0));
        let calls = repair_calls.clone();
        // A repairer that "succeeds" without fixing anything: the reopen
        // still fails structurally, so the dataset quarantines.
        let store = ShardStore::open(dir.path(), 4)
            .unwrap()
            .with_repairer(Box::new(move |_name: &str| {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }));
        assert!(store.get("d").is_err());
        assert!(store.is_quarantined("d"));
        assert!(store.get("d").is_err());
        assert_eq!(repair_calls.load(Ordering::Relaxed), 1, "quarantine is fail-fast");
        let c = store.counters();
        assert_eq!((c.repairs, c.repaired, c.quarantined), (1, 0, 1));
    }

    #[test]
    fn transient_repair_failure_feeds_backoff_not_quarantine() {
        // Regression: fsync/rename failures during repair surface as
        // `Error::Io` — transient — so the store backs off and retries
        // instead of permanently quarantining a healthy shard.
        let dir = tempfile::tempdir().unwrap();
        let (bamx, _) = write_managed_shard(dir.path(), "d", &[100, 200]);
        let mut bad = bamx.clone();
        bad[bamx.len() / 2] ^= 0xFF;
        std::fs::write(dir.path().join("d.bamx"), &bad).unwrap();

        let clock = Arc::new(ManualClock::new());
        let repair_calls = Arc::new(AtomicU32::new(0));
        let (repo_dir, good, calls) =
            (dir.path().to_path_buf(), bamx.clone(), repair_calls.clone());
        let policy = RetryPolicy {
            attempts: 1,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        };
        let store = ShardStore::open_with(dir.path(), 4, clock.clone(), policy)
            .unwrap()
            .with_repairer(Box::new(move |name: &str| {
                if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                    // First attempt: the disk hiccups mid-repair, exactly
                    // like an fsync/rename failure inside ShardRepo.
                    return Err(Error::Io(std::io::Error::other("injected fsync failure")));
                }
                let repo = ShardRepo::open(&repo_dir)?;
                repo.publish_bytes(&format!("{name}.bamx"), &good)?;
                Ok(())
            }));

        let err = store.get("d").unwrap_err();
        assert!(err.is_transient(), "fsync failure must stay transient: {err}");
        assert!(!store.is_quarantined("d"), "transient repair error must not quarantine");
        // Backoff gates the next lookup, then the retry heals the shard.
        assert!(store.get("d").is_err());
        assert_eq!(store.counters().backoff_rejections, 1);
        clock.advance(Duration::from_millis(10));
        let (shard, _) = store.get("d").unwrap();
        assert_eq!(shard.bamx.len(), 2);
        assert_eq!(repair_calls.load(Ordering::Relaxed), 2);
        let c = store.counters();
        assert_eq!((c.repairs, c.repaired, c.quarantined), (2, 1, 0));
    }

    #[test]
    fn manifest_listed_but_missing_file_is_repairable_not_unknown() {
        let dir = tempfile::tempdir().unwrap();
        let (bamx, _) = write_managed_shard(dir.path(), "d", &[100]);
        std::fs::remove_file(dir.path().join("d.bamx")).unwrap();

        let (repo_dir, good) = (dir.path().to_path_buf(), bamx.clone());
        let store = ShardStore::open(dir.path(), 4).unwrap().with_repairer(Box::new(
            move |name: &str| {
                let repo = ShardRepo::open(&repo_dir)?;
                repo.publish_bytes(&format!("{name}.bamx"), &good)?;
                Ok(())
            },
        ));
        let (shard, _) = store.get("d").unwrap();
        assert_eq!(shard.bamx.len(), 1);
        assert_eq!(store.counters().repaired, 1);
    }

    #[test]
    fn unknown_dataset_never_creates_health_state() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        let calls = Arc::new(AtomicU32::new(0));
        let store = ShardStore::open_with(
            dir.path(),
            2,
            Arc::new(ManualClock::new()),
            RetryPolicy::default(),
        )
        .unwrap()
        .with_opener(flaky_opener(0, calls.clone()));
        for _ in 0..3 {
            assert!(store.get("missing").is_err());
        }
        assert!(!store.is_quarantined("missing"));
        let c = store.counters();
        assert_eq!(c.quarantined, 0);
        assert_eq!(c.backoff_rejections, 0);
        assert_eq!(calls.load(Ordering::Relaxed), 0, "no open is ever attempted");
    }

    #[test]
    fn waiter_error_copies_preserve_classification() {
        let transient = Error::Io(std::io::Error::other("flaky"));
        assert!(copy_for_waiter(&transient).is_transient());
        let structural = Error::decode(
            ngs_formats::error::DecodeErrorKind::Corrupt,
            7,
            "shard",
            "bad bytes",
        );
        let copy = copy_for_waiter(&structural);
        assert!(!copy.is_transient());
        assert!(copy.to_string().contains("bad bytes"));
    }
}
