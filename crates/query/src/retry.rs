//! Client-side retry budget: a token bucket on the injected [`Clock`]
//! that bounds retry *amplification* under brown-out (DESIGN.md §13).
//!
//! Every initial request deposits a configurable fraction of a token;
//! every retry withdraws a whole token. With deposit ratio `r`, initial
//! reserve `i`, and an optional clock-driven trickle `t` tokens/sec,
//! total attempts over a window of `N` requests and `s` seconds are
//! bounded by `N + i + r·N + t·s` — retries amplify offered load by a
//! bounded factor instead of melting a browning-out cluster. All
//! arithmetic is integer milli-tokens, so outcomes are deterministic
//! and exactly testable on a `ManualClock`.

use std::sync::Arc;
use std::time::Duration;

use ngs_obs::{Counter, Registry};
use parking_lot::Mutex;

use crate::clock::Clock;

/// Milli-tokens per whole token.
const MILLI: u64 = 1000;

/// Sizing of a [`RetryBudget`].
#[derive(Debug, Clone)]
pub struct RetryBudgetConfig {
    /// Milli-tokens deposited per *initial* attempt (100 = a retry per
    /// ten requests; the budget factor is `1 + deposit_milli/1000`).
    pub deposit_milli: u64,
    /// Whole tokens the bucket may hold (burst bound).
    pub cap_tokens: u64,
    /// Whole tokens in the bucket at construction (lets a cold client
    /// retry before any deposits accrue).
    pub initial_tokens: u64,
    /// Milli-tokens trickled in per second of clock time, independent
    /// of traffic (keeps an idle client able to retry occasionally).
    /// Zero disables the trickle.
    pub trickle_milli_per_sec: u64,
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig {
            deposit_milli: 100, // 10% retry ratio
            cap_tokens: 10,
            initial_tokens: 5,
            trickle_milli_per_sec: 0,
        }
    }
}

#[derive(Debug)]
struct BudgetState {
    milli_tokens: u64,
    last_trickle: Duration,
}

/// The token bucket. Shared by every retry site of one logical client
/// (clone the `Arc`): local engine resubmissions and
/// `DistClient::query_with_failover` draw from the same budget, so
/// their combined amplification is bounded together.
pub struct RetryBudget {
    config: RetryBudgetConfig,
    clock: Arc<dyn Clock>,
    state: Mutex<BudgetState>,
    deposits: Arc<Counter>,
    withdrawals: Arc<Counter>,
    exhausted: Arc<Counter>,
}

impl RetryBudget {
    /// A budget with private metrics counters.
    pub fn new(config: RetryBudgetConfig, clock: Arc<dyn Clock>) -> Self {
        Self::with_obs(config, clock, &Registry::new())
    }

    /// A budget publishing `retry.budget_*` counters into `registry`.
    pub fn with_obs(config: RetryBudgetConfig, clock: Arc<dyn Clock>, registry: &Registry) -> Self {
        let now = clock.now();
        RetryBudget {
            state: Mutex::new(BudgetState {
                milli_tokens: (config.initial_tokens.min(config.cap_tokens)) * MILLI,
                last_trickle: now,
            }),
            deposits: registry.counter("retry.budget_deposits"),
            withdrawals: registry.counter("retry.budget_withdrawals"),
            exhausted: registry.counter("retry.budget_exhausted"),
            config,
            clock,
        }
    }

    fn cap_milli(&self) -> u64 {
        self.config.cap_tokens * MILLI
    }

    /// Accrues the clock-driven trickle since the last accrual. Called
    /// under the state lock by both public operations.
    fn trickle(&self, st: &mut BudgetState) {
        if self.config.trickle_milli_per_sec == 0 {
            return;
        }
        let now = self.clock.now();
        let elapsed = now.saturating_sub(st.last_trickle);
        // Whole-second granularity keeps the arithmetic exact; the
        // un-accrued remainder stays on the clock for next time.
        let secs = elapsed.as_secs();
        if secs > 0 {
            let add = secs.saturating_mul(self.config.trickle_milli_per_sec);
            st.milli_tokens = (st.milli_tokens + add).min(self.cap_milli());
            st.last_trickle += Duration::from_secs(secs);
        }
    }

    /// Records one *initial* (non-retry) attempt, depositing its
    /// fraction of a token.
    pub fn on_attempt(&self) {
        let mut st = self.state.lock();
        self.trickle(&mut st);
        st.milli_tokens = (st.milli_tokens + self.config.deposit_milli).min(self.cap_milli());
        drop(st);
        self.deposits.inc();
    }

    /// Tries to pay for one retry. `true` withdraws a whole token and
    /// permits the retry; `false` means the budget is exhausted — the
    /// caller must give up (and surface the original error) rather than
    /// amplify load.
    pub fn try_withdraw(&self) -> bool {
        let mut st = self.state.lock();
        self.trickle(&mut st);
        if st.milli_tokens >= MILLI {
            st.milli_tokens -= MILLI;
            drop(st);
            self.withdrawals.inc();
            true
        } else {
            drop(st);
            self.exhausted.inc();
            false
        }
    }

    /// Whole tokens currently available (diagnostics and tests).
    pub fn balance(&self) -> u64 {
        let mut st = self.state.lock();
        self.trickle(&mut st);
        st.milli_tokens / MILLI
    }

    /// Retries permitted so far.
    pub fn withdrawals(&self) -> u64 {
        self.withdrawals.get()
    }

    /// Retries refused so far.
    pub fn exhausted(&self) -> u64 {
        self.exhausted.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn budget(config: RetryBudgetConfig) -> (RetryBudget, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (RetryBudget::new(config, clock.clone()), clock)
    }

    #[test]
    fn initial_reserve_then_ratio_bound() {
        let (b, _clock) = budget(RetryBudgetConfig {
            deposit_milli: 100,
            cap_tokens: 10,
            initial_tokens: 2,
            trickle_milli_per_sec: 0,
        });
        // Burn the initial reserve.
        assert!(b.try_withdraw());
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw(), "reserve spent, no deposits yet");
        assert_eq!(b.exhausted(), 1);
        // Ten initial attempts at 10% earn exactly one retry.
        for _ in 0..9 {
            b.on_attempt();
            assert!(!b.try_withdraw());
        }
        b.on_attempt();
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
        assert_eq!(b.withdrawals(), 3);
    }

    #[test]
    fn cap_bounds_burst() {
        let (b, _clock) = budget(RetryBudgetConfig {
            deposit_milli: 1000, // a whole token per attempt
            cap_tokens: 3,
            initial_tokens: 0,
            trickle_milli_per_sec: 0,
        });
        for _ in 0..100 {
            b.on_attempt();
        }
        // However many deposits, only `cap_tokens` retries are stored.
        let mut allowed = 0;
        while b.try_withdraw() {
            allowed += 1;
        }
        assert_eq!(allowed, 3);
    }

    #[test]
    fn trickle_accrues_on_the_injected_clock() {
        let (b, clock) = budget(RetryBudgetConfig {
            deposit_milli: 0,
            cap_tokens: 10,
            initial_tokens: 0,
            trickle_milli_per_sec: 500, // a token every 2 s
        });
        assert!(!b.try_withdraw());
        clock.advance(Duration::from_secs(1));
        assert!(!b.try_withdraw(), "only half a token has trickled in");
        clock.advance(Duration::from_secs(1));
        assert!(b.try_withdraw());
        assert!(!b.try_withdraw());
        // Sub-second remainders are never lost: 1.5 s + 0.5 s = 1 token.
        clock.advance(Duration::from_millis(1500));
        assert!(!b.try_withdraw());
        clock.advance(Duration::from_millis(500));
        assert!(b.try_withdraw());
        assert_eq!(b.balance(), 0);
    }
}
