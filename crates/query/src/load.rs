//! Deterministic **open-loop** load plans (DESIGN.md §13).
//!
//! A closed-loop driver (submit, wait, submit) self-throttles: when the
//! server slows down, so does the offered load, and overload can never
//! be observed. An *open-loop* plan fixes every request's arrival time
//! up front — a pure function of the seed and profile, independent of
//! service rate — so offered load keeps arriving at the configured rate
//! whether or not the engine keeps up. That is the regime where
//! shedding, priorities, and retry budgets earn their keep.
//!
//! This module is **pure planning**: [`generate`] maps a
//! [`LoadProfile`] to a `Vec<Arrival>` using an in-module seeded LCG —
//! no clock, no I/O, no engine. Drivers decide how to realize the
//! timeline: `repro load` and `ngsp load` pace it in real time against
//! a live engine; the overload test-suites replay the same plan on a
//! `ManualClock`, where arrival offsets become exact clock settings.

use std::path::Path;
use std::time::Duration;

use ngs_converter::TargetFormat;

use crate::request::{QueryClass, QueryKind, QueryRequest};

/// Mixed traffic kinds of the generator, mirroring the serving tier's
/// real workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Interactive region query: a small window converted for a waiting
    /// user.
    Query,
    /// Bulk conversion: a batch-class window conversion.
    Convert,
    /// Analysis: a batch-class coverage-histogram accumulation.
    Analyze,
}

/// The knobs of a deterministic open-loop plan.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Seed of the arrival process; same seed + same profile = the same
    /// plan, byte for byte.
    pub seed: u64,
    /// Requests in the plan.
    pub requests: usize,
    /// Offered load in requests/second: arrival `i` is due at
    /// `i / rate` (plus deterministic sub-period jitter from the seed).
    pub rate_per_sec: f64,
    /// Datasets the plan draws from (indices `0..datasets`).
    pub datasets: usize,
    /// Region windows per dataset (indices `0..windows`).
    pub windows: usize,
    /// Percent of requests aimed at the hot key (dataset 0, windows
    /// 0..2) — the skew knob. 0 = uniform.
    pub hot_pct: u8,
    /// Percent of requests in the interactive class ([`TrafficKind::Query`]).
    pub interactive_pct: u8,
    /// Of the batch remainder, percent that are [`TrafficKind::Analyze`]
    /// (coverage) rather than [`TrafficKind::Convert`].
    pub analyze_pct: u8,
    /// Relative deadline given to interactive requests (absolute
    /// deadline = submit time + this). `None` = no deadline.
    pub interactive_deadline: Option<Duration>,
    /// Relative deadline given to batch requests.
    pub batch_deadline: Option<Duration>,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            seed: 0x10AD_10AD,
            requests: 1024,
            rate_per_sec: 1000.0,
            datasets: 4,
            windows: 8,
            hot_pct: 60,
            interactive_pct: 70,
            analyze_pct: 25,
            interactive_deadline: Some(Duration::from_millis(50)),
            batch_deadline: Some(Duration::from_secs(2)),
        }
    }
}

/// One planned request: *when* it arrives and *what* it asks for.
/// Dataset/window are indices so the plan stays independent of any
/// particular shard directory; [`Arrival::to_request`] materializes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival offset from plan start.
    pub at: Duration,
    /// Traffic kind (decides class and request kind).
    pub kind: TrafficKind,
    /// Dataset index in `0..profile.datasets`.
    pub dataset: usize,
    /// Window index in `0..profile.windows`.
    pub window: usize,
    /// Relative deadline (absolute = submit time + this).
    pub deadline: Option<Duration>,
}

impl Arrival {
    /// The traffic class this arrival submits under.
    pub fn class(&self) -> QueryClass {
        match self.kind {
            TrafficKind::Query => QueryClass::Interactive,
            TrafficKind::Convert | TrafficKind::Analyze => QueryClass::Batch,
        }
    }

    /// Materializes the arrival against concrete dataset names and
    /// region windows. `tag` uniquifies conversion output directories
    /// (identical requests must not race on one part file); the
    /// absolute `deadline` is the caller's to compute (submit-time
    /// clock + `self.deadline`).
    pub fn to_request(
        &self,
        names: &[String],
        regions: &[String],
        out_root: &Path,
        tag: usize,
        deadline: Option<Duration>,
    ) -> QueryRequest {
        QueryRequest {
            dataset: names[self.dataset % names.len()].clone(),
            region: regions[self.window % regions.len()].clone(),
            kind: match self.kind {
                TrafficKind::Analyze => QueryKind::Coverage { bin_size: 200 },
                TrafficKind::Query | TrafficKind::Convert => QueryKind::Convert {
                    format: TargetFormat::Bed,
                    out_dir: out_root.join(tag.to_string()),
                },
            },
            deadline,
            class: self.class(),
        }
    }
}

/// The seeded LCG behind the plan (same constants as the `repro query`
/// request plan, so the two benches share an arrival idiom).
struct Lcg(u64);

impl Lcg {
    fn roll(&mut self, m: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % m.max(1)
    }
}

/// Generates the plan: a pure function of the profile (no clock, RNG
/// state, or I/O). Arrivals are in nondecreasing `at` order.
pub fn generate(profile: &LoadProfile) -> Vec<Arrival> {
    let mut lcg = Lcg(profile.seed | 1);
    let period_ns = if profile.rate_per_sec > 0.0 {
        (1.0e9 / profile.rate_per_sec) as u64
    } else {
        0
    };
    (0..profile.requests)
        .map(|i| {
            // Base spacing is exact (i × period); jitter shifts each
            // arrival within its own period so bursts exist but order
            // is preserved.
            let jitter = if period_ns > 0 { lcg.roll(period_ns) } else { 0 };
            let at = Duration::from_nanos((i as u64).saturating_mul(period_ns) + jitter);
            let kind = if lcg.roll(100) < u64::from(profile.interactive_pct) {
                TrafficKind::Query
            } else if lcg.roll(100) < u64::from(profile.analyze_pct) {
                TrafficKind::Analyze
            } else {
                TrafficKind::Convert
            };
            let (dataset, window) = if lcg.roll(100) < u64::from(profile.hot_pct) {
                (0, lcg.roll(2.min(profile.windows as u64)) as usize)
            } else {
                (
                    lcg.roll(profile.datasets as u64) as usize,
                    lcg.roll(profile.windows as u64) as usize,
                )
            };
            let deadline = match kind {
                TrafficKind::Query => profile.interactive_deadline,
                TrafficKind::Convert | TrafficKind::Analyze => profile.batch_deadline,
            };
            Arrival { at, kind, dataset, window, deadline }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let profile = LoadProfile { requests: 256, ..Default::default() };
        let a = generate(&profile);
        let b = generate(&profile);
        assert_eq!(a, b, "same seed must reproduce the plan exactly");
        let c = generate(&LoadProfile { seed: 7, ..profile.clone() });
        assert_ne!(a, c, "a different seed must change the plan");
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn arrivals_are_open_loop_and_ordered() {
        let profile =
            LoadProfile { requests: 500, rate_per_sec: 10_000.0, ..Default::default() };
        let plan = generate(&profile);
        // Nondecreasing arrival times, paced by the offered rate (the
        // whole point of open-loop: times fixed before any service).
        for w in plan.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let span = plan.last().unwrap().at;
        let expected = Duration::from_secs_f64(499.0 / 10_000.0);
        assert!(span >= expected && span < expected + Duration::from_millis(1));
    }

    #[test]
    fn mix_and_skew_follow_the_profile() {
        let profile = LoadProfile {
            requests: 4000,
            hot_pct: 60,
            interactive_pct: 70,
            ..Default::default()
        };
        let plan = generate(&profile);
        let interactive =
            plan.iter().filter(|a| a.class() == QueryClass::Interactive).count();
        let hot = plan.iter().filter(|a| a.dataset == 0 && a.window < 2).count();
        // Deterministic plan, statistical tolerance: ±5 points.
        let frac = |n: usize| n * 100 / plan.len();
        assert!((65..=75).contains(&frac(interactive)), "interactive {interactive}");
        assert!(frac(hot) >= 55, "hot share {hot}");
        // All three kinds occur.
        for kind in [TrafficKind::Query, TrafficKind::Convert, TrafficKind::Analyze] {
            assert!(plan.iter().any(|a| a.kind == kind), "missing {kind:?}");
        }
        // Deadlines follow the class.
        for a in &plan {
            match a.class() {
                QueryClass::Interactive => assert_eq!(a.deadline, profile.interactive_deadline),
                QueryClass::Batch => assert_eq!(a.deadline, profile.batch_deadline),
            }
        }
    }

    #[test]
    fn to_request_materializes_class_and_kind() {
        let arrival = Arrival {
            at: Duration::ZERO,
            kind: TrafficKind::Analyze,
            dataset: 1,
            window: 3,
            deadline: Some(Duration::from_millis(5)),
        };
        let names = vec!["a".to_string(), "b".to_string()];
        let regions: Vec<String> = (0..4).map(|i| format!("chr1:{}-{}", i * 10 + 1, i * 10 + 10)).collect();
        let req = arrival.to_request(
            &names,
            &regions,
            Path::new("/tmp/out"),
            7,
            Some(Duration::from_secs(1)),
        );
        assert_eq!(req.dataset, "b");
        assert_eq!(req.region, "chr1:31-40");
        assert_eq!(req.class, QueryClass::Batch);
        assert!(matches!(req.kind, QueryKind::Coverage { bin_size: 200 }));
        assert_eq!(req.deadline, Some(Duration::from_secs(1)));
    }
}
