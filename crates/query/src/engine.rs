//! The long-lived concurrent query engine: a bounded worker pool over a
//! [`ShardStore`], with admission control, per-request deadlines, a
//! metrics ledger, and graceful drain.
//!
//! Architecture: `submit` `try_send`s a job onto one bounded crossbeam
//! channel shared by all workers (MPMC work queue). A full queue is a
//! typed [`QueryError::Overloaded`] rejection, never a block — the
//! paper's design point of keeping the interactive path latency-bounded
//! instead of piling work behind a sequential bottleneck. Each worker
//! resolves the region through the cached BAIX index and either
//! converts the located records (same code path as partial conversion,
//! so output bytes are identical to a one-shot single-rank
//! `BamConverter::convert_partial`) or accumulates them into an
//! `ngs_stats` coverage histogram.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ngs_bamx::Region;
use ngs_converter::bam_converter::convert_index_list;
use ngs_converter::ConvertConfig;
use ngs_formats::error::{Error, Result};
use ngs_obs::{span, Registry, Tracer};
use ngs_pipeline::{PipelineConfig, ShardInput, StreamConverter};
use ngs_stats::CoverageHistogram;

use crate::clock::{Clock, SystemClock};
use crate::metrics::{Completion, Ledger, QueryStats, RequestMetrics};
use crate::request::{QueryError, QueryKind, QueryOutcome, QueryRequest, QueryResponse};
use crate::store::ShardStore;

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Zero is allowed (nothing executes; useful for
    /// deterministic admission-control tests).
    pub workers: usize,
    /// Bound of the shared request queue; `submit` rejects with
    /// [`QueryError::Overloaded`] when it is full.
    pub queue_capacity: usize,
    /// Datasets the shard cache may hold open at once.
    pub cache_capacity: usize,
    /// Independently-locked cache segments in the shard store (minimum
    /// 1). One segment reproduces the classic single-lock LRU exactly;
    /// more let unrelated requests proceed without contending
    /// (DESIGN.md §11). Applies to stores the engine builds itself —
    /// a store injected via [`QueryEngine::with_store`] keeps its own
    /// segmentation.
    pub segments: usize,
    /// Requests a worker may claim per wakeup (minimum 1). After
    /// blocking for one job, a worker opportunistically drains up to
    /// `batch - 1` more that are already queued and runs them
    /// back-to-back, amortizing queue traffic across small requests.
    /// Deadlines are still checked per request at its own start time.
    pub batch: usize,
    /// Converter runtime settings for `Convert` requests. Each request
    /// converts on the one worker that picked it up (rank 0);
    /// parallelism comes from concurrent requests, so `ranks` is
    /// ignored.
    pub convert: ConvertConfig,
    /// When set, `Convert` requests stream through the bounded
    /// `ngs-pipeline` graph instead of the one-shot `convert_index_list`
    /// call — same bytes (enforced by `tests/query_engine.rs`), but the
    /// peak working set per request is bounded by the pipeline window
    /// instead of the coalesced read-range size.
    pub streaming: Option<PipelineConfig>,
    /// Shared observability registry the ledger publishes into (so
    /// `ngsp stats` sees the same `query.*` counters the engine uses).
    /// `None` gives the ledger a private registry.
    pub obs: Option<Arc<Registry>>,
    /// When set, workers record a `query.execute` span per request
    /// (shard = dataset, outcome = ok/error/deadline) into this tracer.
    pub tracer: Option<Arc<Tracer>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(usize::from).unwrap_or(4),
            queue_capacity: 64,
            cache_capacity: 8,
            segments: 8,
            batch: 8,
            convert: ConvertConfig::with_ranks(1),
            streaming: None,
            obs: None,
            tracer: None,
        }
    }
}

impl EngineConfig {
    /// A config with `workers` workers and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers, ..Default::default() }
    }
}

struct Job {
    request: QueryRequest,
    submitted_at: Duration,
    reply: Sender<QueryResponse>,
}

/// Handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<QueryResponse>,
}

impl Ticket {
    /// Blocks until the request finishes. If the engine drained before
    /// the request ran, the response carries
    /// [`QueryError::ShuttingDown`].
    pub fn wait(self) -> QueryResponse {
        self.rx.recv().unwrap_or_else(|_| QueryResponse {
            outcome: Err(QueryError::ShuttingDown),
            metrics: RequestMetrics::default(),
        })
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<QueryResponse> {
        self.rx.try_recv().ok()
    }
}

/// The query engine. Dropping it drains gracefully: queued requests
/// finish, then the workers exit.
pub struct QueryEngine {
    store: Arc<ShardStore>,
    ledger: Arc<Ledger>,
    clock: Arc<dyn Clock>,
    tx: Option<Sender<Job>>,
    // Keeps the queue alive when `workers == 0`, so admission control
    // still reports Full (not Disconnected) with no consumers.
    _rx_keepalive: Receiver<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Starts an engine over `shard_dir` with the system clock.
    pub fn new(shard_dir: impl AsRef<std::path::Path>, config: EngineConfig) -> Result<Self> {
        Self::with_clock(shard_dir, config, Arc::new(SystemClock::new()))
    }

    /// Starts an engine with an injected clock (deterministic tests).
    /// The clock is shared with the [`ShardStore`], so transient-failure
    /// backoff deadlines live on the same axis as request deadlines.
    pub fn with_clock(
        shard_dir: impl AsRef<std::path::Path>,
        config: EngineConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        let mut store = ShardStore::open_with(
            shard_dir,
            config.cache_capacity,
            Arc::clone(&clock),
            crate::store::RetryPolicy::default(),
        )?
        .with_segments(config.segments.max(1));
        if let Some(registry) = &config.obs {
            store = store.with_obs(registry);
        }
        Self::with_store(Arc::new(store), config, clock)
    }

    /// Starts an engine over a pre-built store — the seam through which
    /// tests and `ngsp chaos` inject fault-wrapped shard sources (via
    /// [`ShardStore::with_opener`]).
    pub fn with_store(
        store: Arc<ShardStore>,
        config: EngineConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        let ledger = Arc::new(match &config.obs {
            Some(registry) => Ledger::with_registry(Arc::clone(registry)),
            None => Ledger::default(),
        });
        let (tx, rx) = bounded::<Job>(config.queue_capacity.max(1));
        let batch = config.batch.max(1);
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = rx.clone();
            let store = Arc::clone(&store);
            let ledger = Arc::clone(&ledger);
            let clock = Arc::clone(&clock);
            let convert = config.convert.clone();
            let streaming = config.streaming.clone();
            let tracer = config.tracer.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ngs-query-{i}"))
                    .spawn(move || {
                        worker_loop(rx, store, ledger, clock, convert, streaming, tracer, batch)
                    })?,
            );
        }
        Ok(QueryEngine { store, ledger, clock, tx: Some(tx), _rx_keepalive: rx, workers })
    }

    /// The underlying shard store (for cache counters or discovery).
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// The engine's clock (deadlines are absolute on its axis).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Submits a request without blocking. A full queue returns
    /// [`QueryError::Overloaded`]; a draining engine returns
    /// [`QueryError::ShuttingDown`].
    pub fn submit(&self, request: QueryRequest) -> std::result::Result<Ticket, QueryError> {
        let tx = self.tx.as_ref().ok_or(QueryError::ShuttingDown)?;
        let (reply, rx) = bounded(1);
        let job = Job { submitted_at: self.clock.now(), request, reply };
        match tx.try_send(job) {
            Ok(()) => {
                self.ledger.record_submitted();
                Ok(Ticket { rx })
            }
            Err(TrySendError::Full(_)) => {
                self.ledger.record_rejected();
                Err(QueryError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => Err(QueryError::ShuttingDown),
        }
    }

    /// Aggregated statistics so far, including the store's shard-health
    /// counters (retries, quarantines, backoff rejections).
    pub fn stats(&self) -> QueryStats {
        let mut stats = self.ledger.snapshot();
        let counters = self.store.counters();
        stats.transient_retries = counters.transient_retries;
        stats.quarantined = counters.quarantined;
        stats.backoff_rejections = counters.backoff_rejections;
        stats.repairs = counters.repairs;
        stats.repaired = counters.repaired;
        stats
    }

    /// Graceful drain: stops admission, lets the workers finish every
    /// queued request, joins them, and returns the final statistics.
    pub fn drain(mut self) -> QueryStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        self.tx.take(); // close the queue: workers drain it, then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rx: Receiver<Job>,
    store: Arc<ShardStore>,
    ledger: Arc<Ledger>,
    clock: Arc<dyn Clock>,
    convert: ConvertConfig,
    streaming: Option<PipelineConfig>,
    tracer: Option<Arc<Tracer>>,
    batch: usize,
) {
    // One blocking recv per wakeup, then an opportunistic non-blocking
    // drain of whatever else is already queued (up to `batch` total):
    // small requests amortize their queue/wakeup overhead instead of
    // paying it per request. Submission order is preserved — the drain
    // pulls from the same MPMC queue FIFO — and each job's deadline is
    // judged at its own start time, not the wakeup time.
    let mut claimed = Vec::with_capacity(batch);
    while let Ok(first) = rx.recv() {
        claimed.push(first);
        while claimed.len() < batch {
            match rx.try_recv() {
                Ok(job) => claimed.push(job),
                Err(_) => break,
            }
        }
        ledger.record_batch(claimed.len() as u64);
        for job in claimed.drain(..) {
            run_job(job, &store, &ledger, &clock, &convert, streaming.as_ref(), tracer.as_ref());
        }
    }
}

fn run_job(
    job: Job,
    store: &Arc<ShardStore>,
    ledger: &Arc<Ledger>,
    clock: &Arc<dyn Clock>,
    convert: &ConvertConfig,
    streaming: Option<&PipelineConfig>,
    tracer: Option<&Arc<Tracer>>,
) {
    let Job { request, submitted_at, reply } = job;
    let started_at = clock.now();
    let queue_wait = started_at.saturating_sub(submitted_at);
    let mut metrics = RequestMetrics {
        submitted_at,
        started_at,
        finished_at: started_at,
        queue_wait,
        ..Default::default()
    };
    let mut span = span!(tracer, "query.execute", &request.dataset);
    if let Some(deadline) = request.deadline {
        if started_at > deadline {
            ledger.record_finished(&metrics, Completion::DeadlineMissed);
            if let Some(s) = span.as_mut() {
                s.set_outcome("deadline");
            }
            let _ = reply.send(QueryResponse {
                outcome: Err(QueryError::DeadlineExceeded { deadline, now: started_at }),
                metrics,
            });
            return;
        }
    }
    let executed = execute(store, &request, convert, streaming, clock);
    metrics.finished_at = clock.now();
    metrics.service_time = metrics.finished_at.saturating_sub(started_at);
    if executed.is_err() {
        if let Some(s) = span.as_mut() {
            s.set_outcome("error");
        }
    }
    drop(span);
    let outcome = match executed {
        Ok((outcome, cache_hit)) => {
            metrics.cache_hit = cache_hit;
            metrics.bytes_out = match &outcome {
                QueryOutcome::Converted { bytes_out, .. } => *bytes_out,
                QueryOutcome::Coverage { bins, .. } => {
                    (bins.len() * std::mem::size_of::<f64>()) as u64
                }
            };
            ledger.record_finished(&metrics, Completion::Completed);
            Ok(outcome)
        }
        Err(e) => {
            ledger.record_finished(&metrics, Completion::Failed);
            Err(QueryError::Failed(e.to_string()))
        }
    };
    let _ = reply.send(QueryResponse { outcome, metrics });
}

/// Resolves and runs one request against the store. Returns the outcome
/// and whether the dataset lookup was a cache hit.
fn execute(
    store: &ShardStore,
    request: &QueryRequest,
    convert: &ConvertConfig,
    streaming: Option<&PipelineConfig>,
    clock: &Arc<dyn Clock>,
) -> Result<(QueryOutcome, bool)> {
    let (shard, cache_hit) = store.get(&request.dataset)?;
    let region = Region::parse(&request.region, shard.bamx.header())?;
    let ref_id = region.resolve(shard.bamx.header())?;
    let indices = shard.baix.shard_indices(shard.baix.locate(ref_id, &region));
    let outcome = match &request.kind {
        QueryKind::Convert { format, out_dir } => {
            std::fs::create_dir_all(out_dir)?;
            // Same stem formula as `BamConverter::convert_partial`, so a
            // request's part file is byte-identical (name and content)
            // to the single-rank one-shot path — on BOTH branches below
            // (`tests/query_engine.rs` enforces it).
            let stem = format!(
                "{}.{}",
                request.dataset,
                region.to_string().replace([':', '-'], "_")
            );
            if let Some(pipeline) = streaming {
                // Bounded streaming response path: same records, same
                // bytes, working set capped by the pipeline window.
                let converter = StreamConverter::with_clock(pipeline.clone(), Arc::clone(clock));
                let run = converter.convert(
                    vec![ShardInput {
                        name: request.dataset.clone(),
                        bamx: Arc::clone(&shard.bamx),
                        indices: Some(indices),
                    }],
                    *format,
                    out_dir,
                    &stem,
                    0,
                    true,
                )?;
                // A single-shard request has no "other shards to keep
                // serving": a quarantine here is the request failing.
                if let Some(q) = run.quarantined.first() {
                    return Err(Error::InvalidRecord(format!(
                        "shard {:?} failed structurally mid-stream: {}",
                        q.shard, q.error
                    )));
                }
                QueryOutcome::Converted {
                    output: run.path,
                    records_in: run.records_in,
                    records_out: run.records_out,
                    bytes_out: run.bytes_out,
                }
            } else {
                let (stats, path) = convert_index_list(
                    &shard.bamx,
                    &indices,
                    *format,
                    out_dir,
                    &stem,
                    0,
                    true,
                    convert,
                )?;
                QueryOutcome::Converted {
                    output: path,
                    records_in: stats.records_in,
                    records_out: stats.records_out,
                    bytes_out: stats.bytes_out,
                }
            }
        }
        QueryKind::Coverage { bin_size } => {
            let mut hist = CoverageHistogram::new(shard.bamx.header(), *bin_size);
            let mut records = 0u64;
            // Coalesce consecutive indices into range reads, exactly as
            // conversion does.
            let mut i = 0usize;
            while i < indices.len() {
                let run_start = indices[i];
                let mut j = i + 1;
                while j < indices.len() && indices[j] == indices[j - 1] + 1 {
                    j += 1;
                }
                let run_end = indices[j - 1] + 1;
                for rec in shard.bamx.read_range(run_start, run_end)? {
                    records += 1;
                    hist.add_alignment(&rec);
                }
                i = j;
            }
            QueryOutcome::Coverage { bins: hist.bins, bin_size: *bin_size, records }
        }
    };
    Ok((outcome, cache_hit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::testutil::write_shard;
    use ngs_converter::TargetFormat;

    fn convert_request(dataset: &str, region: &str, out_dir: &std::path::Path) -> QueryRequest {
        QueryRequest {
            dataset: dataset.into(),
            region: region.into(),
            kind: QueryKind::Convert {
                format: TargetFormat::Bed,
                out_dir: out_dir.to_path_buf(),
            },
            deadline: None,
        }
    }

    #[test]
    fn convert_and_coverage_requests_execute() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 300, 500, 700, 900]);
        let engine =
            QueryEngine::new(dir.path(), EngineConfig::with_workers(2)).unwrap();

        let out = dir.path().join("out");
        let t1 = engine.submit(convert_request("d", "chr1:1-600", &out)).unwrap();
        let t2 = engine
            .submit(QueryRequest {
                dataset: "d".into(),
                region: "chr1".into(),
                kind: QueryKind::Coverage { bin_size: 25 },
                deadline: None,
            })
            .unwrap();

        match t1.wait().outcome.unwrap() {
            QueryOutcome::Converted { records_in, output, .. } => {
                // Starts (0-based) inside [0,600): 99, 299, 499.
                assert_eq!(records_in, 3);
                assert!(output.is_file());
            }
            other => panic!("expected Converted, got {other:?}"),
        }
        match t2.wait().outcome.unwrap() {
            QueryOutcome::Coverage { records, bins, .. } => {
                assert_eq!(records, 5);
                assert!(bins.iter().sum::<f64>() > 0.0);
            }
            other => panic!("expected Coverage, got {other:?}"),
        }
        let stats = engine.drain();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits + stats.cache_misses, 2);
    }

    #[test]
    fn queue_full_is_typed_rejection() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        // No workers: the queue can only fill, deterministically.
        let config = EngineConfig {
            workers: 0,
            queue_capacity: 2,
            ..EngineConfig::default()
        };
        let engine = QueryEngine::new(dir.path(), config).unwrap();
        let out = dir.path().join("out");
        let _t1 = engine.submit(convert_request("d", "chr1", &out)).unwrap();
        let _t2 = engine.submit(convert_request("d", "chr1", &out)).unwrap();
        let err = engine.submit(convert_request("d", "chr1", &out)).unwrap_err();
        assert_eq!(err, QueryError::Overloaded);
        assert_eq!(engine.stats().rejected, 1);
        // Tickets of never-run requests resolve to ShuttingDown on drain.
        let t = _t1;
        drop(engine);
        assert_eq!(t.wait().outcome.unwrap_err(), QueryError::ShuttingDown);
    }

    #[test]
    fn expired_deadline_is_not_executed() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        let clock = Arc::new(ManualClock::new());
        clock.set(Duration::from_secs(10));
        let engine = QueryEngine::with_clock(
            dir.path(),
            EngineConfig::with_workers(1),
            clock.clone(),
        )
        .unwrap();
        let mut req = convert_request("d", "chr1", &dir.path().join("out"));
        req.deadline = Some(Duration::from_secs(5)); // already past
        let resp = engine.submit(req).unwrap().wait();
        match resp.outcome.unwrap_err() {
            QueryError::DeadlineExceeded { deadline, now } => {
                assert_eq!(deadline, Duration::from_secs(5));
                assert_eq!(now, Duration::from_secs(10));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = engine.drain();
        assert_eq!(stats.deadline_missed, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn future_deadline_executes_and_clock_is_injected() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200]);
        let clock = Arc::new(ManualClock::new());
        clock.set(Duration::from_secs(3));
        let engine = QueryEngine::with_clock(
            dir.path(),
            EngineConfig::with_workers(1),
            clock.clone(),
        )
        .unwrap();
        let mut req = convert_request("d", "chr1", &dir.path().join("out"));
        req.deadline = Some(Duration::from_secs(30));
        let resp = engine.submit(req).unwrap().wait();
        assert!(resp.outcome.is_ok());
        // The manual clock never advanced, so timing fields are exact.
        assert_eq!(resp.metrics.submitted_at, Duration::from_secs(3));
        assert_eq!(resp.metrics.queue_wait, Duration::ZERO);
        assert_eq!(resp.metrics.service_time, Duration::ZERO);
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        let engine = QueryEngine::new(dir.path(), EngineConfig::with_workers(1)).unwrap();
        let out = dir.path().join("out");
        // Unknown dataset.
        let r1 = engine.submit(convert_request("nope", "chr1", &out)).unwrap().wait();
        assert!(matches!(r1.outcome, Err(QueryError::Failed(_))));
        // Bad region on a known dataset.
        let r2 = engine.submit(convert_request("d", "chrZ:1-2", &out)).unwrap().wait();
        assert!(matches!(r2.outcome, Err(QueryError::Failed(_))));
        // The engine still works afterwards.
        let r3 = engine.submit(convert_request("d", "chr1", &out)).unwrap().wait();
        assert!(r3.outcome.is_ok());
        let stats = engine.drain();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn corrupt_shard_quarantines_and_surfaces_in_stats() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "good", &[100, 200]);
        std::fs::write(dir.path().join("bad.bamx"), b"BAMJUNKJUNKJUNKJUNKJUNKJUNKJUNK")
            .unwrap();
        std::fs::write(dir.path().join("bad.baix"), b"JUNK").unwrap();
        let engine = QueryEngine::new(dir.path(), EngineConfig::with_workers(1)).unwrap();
        let out = dir.path().join("out");
        // First request decodes the corrupt shard and quarantines it.
        let r1 = engine.submit(convert_request("bad", "chr1", &out)).unwrap().wait();
        assert!(matches!(r1.outcome, Err(QueryError::Failed(_))));
        // Second fails fast from quarantine, reported the same way.
        let r2 = engine.submit(convert_request("bad", "chr1", &out)).unwrap().wait();
        match r2.outcome {
            Err(QueryError::Failed(msg)) => assert!(msg.contains("quarantined"), "got: {msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(engine.store().is_quarantined("bad"));
        // Healthy datasets still serve.
        let r3 = engine.submit(convert_request("good", "chr1", &out)).unwrap().wait();
        assert!(r3.outcome.is_ok());
        let stats = engine.drain();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.transient_retries, 0);
        assert_eq!(stats.backoff_rejections, 0);
    }

    #[test]
    fn engine_with_store_recovers_from_transient_faults() {
        use crate::store::{RetryPolicy, ShardStore, SourceOpener};
        use std::sync::atomic::{AtomicU32, Ordering};

        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200, 300]);
        let clock = Arc::new(ManualClock::new());
        // First two opens fail transiently; in-call retry absorbs both.
        let remaining = AtomicU32::new(2);
        let opener: Box<SourceOpener> = Box::new(move |path| {
            if remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(std::io::Error::other("flaky mount"));
            }
            Ok(Box::new(std::fs::File::open(path)?))
        });
        let store = Arc::new(
            ShardStore::open_with(dir.path(), 2, clock.clone(), RetryPolicy::default())
                .unwrap()
                .with_opener(opener),
        );
        let engine =
            QueryEngine::with_store(store, EngineConfig::with_workers(1), clock).unwrap();
        let resp = engine
            .submit(convert_request("d", "chr1", &dir.path().join("out")))
            .unwrap()
            .wait();
        assert!(resp.outcome.is_ok(), "retry must absorb transient faults: {resp:?}");
        let stats = engine.drain();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.transient_retries, 2);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn obs_registry_and_tracer_observe_requests() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200]);
        let clock = Arc::new(ManualClock::new());
        let registry = Arc::new(ngs_obs::Registry::new());
        let tracer = ngs_obs::Tracer::new(16, clock.clone());
        let config = EngineConfig {
            workers: 1,
            obs: Some(Arc::clone(&registry)),
            tracer: Some(Arc::clone(&tracer)),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::with_clock(dir.path(), config, clock).unwrap();
        let out = dir.path().join("out");
        assert!(engine.submit(convert_request("d", "chr1", &out)).unwrap().wait().outcome.is_ok());
        assert!(engine
            .submit(convert_request("nope", "chr1", &out))
            .unwrap()
            .wait()
            .outcome
            .is_err());
        drop(engine);
        // The shared registry saw both the ledger and the store.
        let snap = registry.snapshot();
        assert_eq!(snap.counters["query.submitted"], 2);
        assert_eq!(snap.counters["query.completed"], 1);
        assert_eq!(snap.counters["query.failed"], 1);
        assert_eq!(snap.counters["store.cache_misses"], 1);
        assert_eq!(snap.histograms["query.latency_ns"].count, 2);
        // Under the manual clock the snapshot renders byte-identically.
        assert_eq!(snap.render_json(), registry.snapshot().render_json());
        // The tracer recorded one span per executed request, in order.
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, "query.execute");
        assert_eq!(events[0].shard, "d");
        assert_eq!(events[0].outcome, "ok");
        assert_eq!(events[1].shard, "nope");
        assert_eq!(events[1].outcome, "error");
    }

    #[test]
    fn drain_finishes_queued_work() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200, 300, 400]);
        let engine = QueryEngine::new(dir.path(), EngineConfig::with_workers(2)).unwrap();
        let out = dir.path().join("out");
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                engine
                    .submit(convert_request("d", "chr1", &out.join(i.to_string())))
                    .unwrap()
            })
            .collect();
        let stats = engine.drain();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        for t in tickets {
            assert!(t.wait().outcome.is_ok());
        }
        // Same dataset every time: exactly one miss, the rest hits.
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 7);
    }
}
