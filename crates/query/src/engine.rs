//! The long-lived concurrent query engine: a bounded worker pool over a
//! [`ShardStore`], with class-aware admission control, deadline-aware
//! shedding, per-request deadlines, a metrics ledger, and graceful
//! drain.
//!
//! Architecture (DESIGN.md §13): `submit` places a job on one of the
//! bounded **per-class queues** (interactive, batch) guarded by a single
//! scheduler mutex + condvar. Admission never blocks: a full class queue
//! is a typed [`QueryError::Overloaded`] rejection carrying a
//! `retry_after` hint derived from queue depth; a request whose deadline
//! has already passed, or whose dataset has exhausted its per-shard
//! admission cap, is shed with a typed [`QueryError::Shed`] — both
//! before any decode work. Workers dequeue strict-priority with aging
//! (a batch job that has waited past `age_promote` jumps ahead so bulk
//! traffic cannot be starved forever), re-check deadlines at dequeue
//! (lazy expiry, still before decode), and either convert the located
//! records (same code path as partial conversion, so output bytes are
//! identical to a one-shot single-rank `BamConverter::convert_partial`)
//! or accumulate them into an `ngs_stats` coverage histogram.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use ngs_bamx::Region;
use ngs_converter::bam_converter::convert_index_list;
use ngs_converter::ConvertConfig;
use ngs_formats::error::{Error, Result};
use ngs_obs::{span, Registry, Tracer};
use ngs_pipeline::{PipelineConfig, ShardInput, StreamConverter};
use ngs_stats::CoverageHistogram;
use parking_lot::{Condvar, Mutex};

use crate::clock::{Clock, SystemClock};
use crate::metrics::{Completion, Ledger, QueryStats, RequestMetrics};
use crate::request::{
    QueryClass, QueryError, QueryKind, QueryOutcome, QueryRequest, QueryResponse, ShedReason,
};
use crate::store::ShardStore;

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Zero is allowed (nothing executes; useful for
    /// deterministic admission-control tests).
    pub workers: usize,
    /// Bound of each **per-class** request queue; `submit` rejects with
    /// [`QueryError::Overloaded`] when the request's class queue is
    /// full.
    pub queue_capacity: usize,
    /// Datasets the shard cache may hold open at once.
    pub cache_capacity: usize,
    /// Independently-locked cache segments in the shard store (minimum
    /// 1). One segment reproduces the classic single-lock LRU exactly;
    /// more let unrelated requests proceed without contending
    /// (DESIGN.md §11). Applies to stores the engine builds itself —
    /// a store injected via [`QueryEngine::with_store`] keeps its own
    /// segmentation.
    pub segments: usize,
    /// Requests a worker may claim per wakeup (minimum 1). After
    /// waking for one job, a worker claims up to `batch - 1` more that
    /// are already queued (same priority rules) and runs them
    /// back-to-back, amortizing scheduler traffic across small
    /// requests. Deadlines are still checked per request at its own
    /// start time.
    pub batch: usize,
    /// Per-shard in-admission cap: how many queued-or-running requests
    /// one dataset may hold at once. `0` disables the cap. With a cap,
    /// a hot key sheds ([`ShedReason::HotShard`]) instead of
    /// monopolizing every queue slot and worker (DESIGN.md §13).
    pub hot_shard_cap: usize,
    /// Aging threshold for the strict-priority dequeue: a queued
    /// request (any class) whose wait reaches this bound is promoted
    /// ahead of fresher higher-priority work, so batch traffic cannot
    /// be starved indefinitely by a steady interactive stream.
    pub age_promote: Duration,
    /// Unit of the `retry_after` hint on [`QueryError::Overloaded`] and
    /// [`QueryError::Shed`]: the hint is `shed_retry_unit × (class
    /// queue depth + 1)`, so back-off scales with how far behind the
    /// engine is.
    pub shed_retry_unit: Duration,
    /// Converter runtime settings for `Convert` requests. Each request
    /// converts on the one worker that picked it up (rank 0);
    /// parallelism comes from concurrent requests, so `ranks` is
    /// ignored.
    pub convert: ConvertConfig,
    /// When set, `Convert` requests stream through the bounded
    /// `ngs-pipeline` graph instead of the one-shot `convert_index_list`
    /// call — same bytes (enforced by `tests/query_engine.rs`), but the
    /// peak working set per request is bounded by the pipeline window
    /// instead of the coalesced read-range size.
    pub streaming: Option<PipelineConfig>,
    /// Shared observability registry the ledger publishes into (so
    /// `ngsp stats` sees the same `query.*` counters the engine uses).
    /// `None` gives the ledger a private registry.
    pub obs: Option<Arc<Registry>>,
    /// When set, workers record a `query.execute` span per request
    /// (shard = dataset, outcome = ok/error/shed) into this tracer.
    pub tracer: Option<Arc<Tracer>>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism().map(usize::from).unwrap_or(4),
            queue_capacity: 64,
            cache_capacity: 8,
            segments: 8,
            batch: 8,
            hot_shard_cap: 0,
            age_promote: Duration::from_millis(100),
            shed_retry_unit: Duration::from_micros(500),
            convert: ConvertConfig::with_ranks(1),
            streaming: None,
            obs: None,
            tracer: None,
        }
    }
}

impl EngineConfig {
    /// A config with `workers` workers and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers, ..Default::default() }
    }
}

struct Job {
    request: QueryRequest,
    submitted_at: Duration,
    reply: Sender<QueryResponse>,
}

/// Handle to one submitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<QueryResponse>,
}

impl Ticket {
    /// Blocks until the request finishes. If the engine drained before
    /// the request ran, the response carries
    /// [`QueryError::ShuttingDown`].
    pub fn wait(self) -> QueryResponse {
        self.rx.recv().unwrap_or_else(|_| QueryResponse {
            outcome: Err(QueryError::ShuttingDown),
            metrics: RequestMetrics::default(),
        })
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<QueryResponse> {
        self.rx.try_recv().ok()
    }
}

/// Mutable scheduler state behind the one scheduler lock. A thread
/// holds this lock only for queue surgery — never across a decode.
struct SchedState {
    /// One bounded FIFO per traffic class, indexed by
    /// [`QueryClass::index`].
    queues: [VecDeque<Job>; QueryClass::COUNT],
    /// Queued-or-running requests per dataset (only maintained when the
    /// hot-shard cap is enabled).
    admitted: HashMap<String, usize>,
    /// `false` once drain begins: no new admissions, workers exit when
    /// the queues are empty.
    open: bool,
}

/// The class-aware admission scheduler (DESIGN.md §13): bounded
/// per-class queues, strict-priority + aging dequeue, shed-before-decode
/// deadline checks, and a per-shard admission cap.
struct Scheduler {
    state: Mutex<SchedState>,
    available: Condvar,
    /// Per-class queue depths mirrored outside the lock so `retry_after`
    /// hints can be derived without taking it.
    depths: [AtomicUsize; QueryClass::COUNT],
    per_class_capacity: usize,
    hot_shard_cap: usize,
    age_promote: Duration,
    shed_retry_unit: Duration,
}

impl Scheduler {
    fn new(config: &EngineConfig) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                queues: std::array::from_fn(|_| VecDeque::new()),
                admitted: HashMap::new(),
                open: true,
            }),
            available: Condvar::new(),
            depths: std::array::from_fn(|_| AtomicUsize::new(0)),
            per_class_capacity: config.queue_capacity.max(1),
            hot_shard_cap: config.hot_shard_cap,
            age_promote: config.age_promote,
            shed_retry_unit: config.shed_retry_unit,
        }
    }

    /// The back-off hint for `class` right now: `shed_retry_unit ×
    /// (queue depth + 1)`.
    fn retry_after(&self, class: QueryClass) -> Duration {
        let depth = self.depths[class.index()].load(Ordering::Relaxed);
        self.shed_retry_unit * u32::try_from(depth.saturating_add(1)).unwrap_or(u32::MAX)
    }

    /// Non-blocking admission. Ordering of the checks is part of the
    /// contract: shutting-down, then expired-deadline shed, then
    /// hot-shard shed, then queue-full overload.
    fn admit(&self, job: Job, now: Duration, ledger: &Ledger) -> std::result::Result<(), QueryError> {
        let class = job.request.class;
        let idx = class.index();
        let mut st = self.state.lock();
        if !st.open {
            return Err(QueryError::ShuttingDown);
        }
        if let Some(deadline) = job.request.deadline {
            if now > deadline {
                drop(st);
                ledger.record_shed(class, ShedReason::Expired);
                return Err(QueryError::Shed {
                    reason: ShedReason::Expired,
                    retry_after: self.retry_after(class),
                });
            }
        }
        if self.hot_shard_cap > 0 {
            let in_admission = st.admitted.get(&job.request.dataset).copied().unwrap_or(0);
            if in_admission >= self.hot_shard_cap {
                drop(st);
                ledger.record_shed(class, ShedReason::HotShard);
                return Err(QueryError::Shed {
                    reason: ShedReason::HotShard,
                    retry_after: self.retry_after(class),
                });
            }
        }
        if st.queues[idx].len() >= self.per_class_capacity {
            drop(st);
            ledger.record_rejected(class);
            return Err(QueryError::Overloaded { retry_after: self.retry_after(class) });
        }
        if self.hot_shard_cap > 0 {
            *st.admitted.entry(job.request.dataset.clone()).or_insert(0) += 1;
        }
        st.queues[idx].push_back(job);
        let depth = st.queues[idx].len();
        drop(st);
        self.depths[idx].store(depth, Ordering::Relaxed);
        ledger.record_submitted(class);
        ledger.set_queue_depth(class, depth as u64);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue under the already-held lock: strict priority with aging.
    /// Any class front whose wait has reached `age_promote` is urgent;
    /// the earliest-submitted urgent front wins (ties go to the higher
    /// priority class, because it is scanned first). With no urgent
    /// front, the highest-priority non-empty queue serves. Returns the
    /// job and whether picking it was an aging *promotion* (a
    /// lower-priority job jumping ahead of queued higher-priority
    /// work).
    fn pick(&self, st: &mut SchedState, now: Duration, ledger: &Ledger) -> Option<Job> {
        let strict = QueryClass::ALL.iter().position(|c| !st.queues[c.index()].is_empty())?;
        let mut chosen = strict;
        let mut best_submitted = None;
        for class in QueryClass::ALL {
            let idx = class.index();
            if let Some(front) = st.queues[idx].front() {
                if now.saturating_sub(front.submitted_at) >= self.age_promote
                    && best_submitted.is_none_or(|b| front.submitted_at < b)
                {
                    best_submitted = Some(front.submitted_at);
                    chosen = idx;
                }
            }
        }
        // `chosen` is non-empty by construction (strict or aged front).
        let job = st.queues[chosen].pop_front()?;
        let depth = st.queues[chosen].len();
        self.depths[chosen].store(depth, Ordering::Relaxed);
        if chosen != strict {
            ledger.record_aged_promotion();
        }
        ledger.set_queue_depth(job.request.class, depth as u64);
        Some(job)
    }

    /// Releases one admission slot for `dataset` after its job ran (or
    /// was shed at dequeue). Only called when the hot-shard cap is on.
    fn release(&self, dataset: &str) {
        let mut st = self.state.lock();
        if let Some(n) = st.admitted.get_mut(dataset) {
            *n -= 1;
            if *n == 0 {
                st.admitted.remove(dataset);
            }
        }
    }

    /// Begins drain: stop admission and wake every worker so they can
    /// finish the queues and exit.
    fn close(&self) {
        self.state.lock().open = false;
        self.available.notify_all();
    }
}

/// The query engine. Dropping it drains gracefully: queued requests
/// finish, then the workers exit.
pub struct QueryEngine {
    store: Arc<ShardStore>,
    ledger: Arc<Ledger>,
    clock: Arc<dyn Clock>,
    sched: Arc<Scheduler>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryEngine {
    /// Starts an engine over `shard_dir` with the system clock.
    pub fn new(shard_dir: impl AsRef<std::path::Path>, config: EngineConfig) -> Result<Self> {
        Self::with_clock(shard_dir, config, Arc::new(SystemClock::new()))
    }

    /// Starts an engine with an injected clock (deterministic tests).
    /// The clock is shared with the [`ShardStore`], so transient-failure
    /// backoff deadlines live on the same axis as request deadlines.
    pub fn with_clock(
        shard_dir: impl AsRef<std::path::Path>,
        config: EngineConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        let mut store = ShardStore::open_with(
            shard_dir,
            config.cache_capacity,
            Arc::clone(&clock),
            crate::store::RetryPolicy::default(),
        )?
        .with_segments(config.segments.max(1));
        if let Some(registry) = &config.obs {
            store = store.with_obs(registry);
        }
        Self::with_store(Arc::new(store), config, clock)
    }

    /// Starts an engine over a pre-built store — the seam through which
    /// tests and `ngsp chaos` inject fault-wrapped shard sources (via
    /// [`ShardStore::with_opener`]).
    pub fn with_store(
        store: Arc<ShardStore>,
        config: EngineConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        let ledger = Arc::new(match &config.obs {
            Some(registry) => Ledger::with_registry(Arc::clone(registry)),
            None => Ledger::default(),
        });
        let sched = Arc::new(Scheduler::new(&config));
        let batch = config.batch.max(1);
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let sched = Arc::clone(&sched);
            let store = Arc::clone(&store);
            let ledger = Arc::clone(&ledger);
            let clock = Arc::clone(&clock);
            let convert = config.convert.clone();
            let streaming = config.streaming.clone();
            let tracer = config.tracer.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("ngs-query-{i}"))
                    .spawn(move || {
                        worker_loop(sched, store, ledger, clock, convert, streaming, tracer, batch)
                    })?,
            );
        }
        Ok(QueryEngine { store, ledger, clock, sched, workers })
    }

    /// The underlying shard store (for cache counters or discovery).
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// The engine's clock (deadlines are absolute on its axis).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Submits a request without blocking. A full class queue returns
    /// [`QueryError::Overloaded`]; an expired deadline or exhausted
    /// hot-shard cap returns [`QueryError::Shed`] (both carry a
    /// `retry_after` hint); a draining engine returns
    /// [`QueryError::ShuttingDown`]. Shed and overloaded requests never
    /// reach the store — the shed-before-decode invariant.
    pub fn submit(&self, request: QueryRequest) -> std::result::Result<Ticket, QueryError> {
        let now = self.clock.now();
        let (reply, rx) = bounded(1);
        let job = Job { submitted_at: now, request, reply };
        self.sched.admit(job, now, &self.ledger)?;
        Ok(Ticket { rx })
    }

    /// Aggregated statistics so far, including the store's shard-health
    /// counters (retries, quarantines, backoff rejections).
    pub fn stats(&self) -> QueryStats {
        let mut stats = self.ledger.snapshot();
        let counters = self.store.counters();
        stats.transient_retries = counters.transient_retries;
        stats.quarantined = counters.quarantined;
        stats.backoff_rejections = counters.backoff_rejections;
        stats.repairs = counters.repairs;
        stats.repaired = counters.repaired;
        stats
    }

    /// Graceful drain: stops admission, lets the workers finish every
    /// queued request, joins them, and returns the final statistics.
    pub fn drain(mut self) -> QueryStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        self.sched.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    sched: Arc<Scheduler>,
    store: Arc<ShardStore>,
    ledger: Arc<Ledger>,
    clock: Arc<dyn Clock>,
    convert: ConvertConfig,
    streaming: Option<PipelineConfig>,
    tracer: Option<Arc<Tracer>>,
    batch: usize,
) {
    // One condvar wakeup, then an opportunistic claim of whatever else
    // is already queued (up to `batch` total, same priority rules):
    // small requests amortize their scheduler traffic instead of paying
    // it per request. Each job's deadline is judged at its own start
    // time, not the wakeup time.
    let mut claimed = Vec::with_capacity(batch);
    loop {
        {
            let mut st = sched.state.lock();
            loop {
                if let Some(job) = sched.pick(&mut st, clock.now(), &ledger) {
                    claimed.push(job);
                    break;
                }
                if !st.open {
                    return;
                }
                sched.available.wait(&mut st);
            }
            while claimed.len() < batch {
                match sched.pick(&mut st, clock.now(), &ledger) {
                    Some(job) => claimed.push(job),
                    None => break,
                }
            }
        }
        ledger.record_batch(claimed.len() as u64);
        for job in claimed.drain(..) {
            let slot = (sched.hot_shard_cap > 0).then(|| job.request.dataset.clone());
            run_job(job, &sched, &store, &ledger, &clock, &convert, streaming.as_ref(), tracer.as_ref());
            if let Some(dataset) = slot {
                sched.release(&dataset);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_job(
    job: Job,
    sched: &Scheduler,
    store: &Arc<ShardStore>,
    ledger: &Arc<Ledger>,
    clock: &Arc<dyn Clock>,
    convert: &ConvertConfig,
    streaming: Option<&PipelineConfig>,
    tracer: Option<&Arc<Tracer>>,
) {
    let Job { request, submitted_at, reply } = job;
    let class = request.class;
    let started_at = clock.now();
    let queue_wait = started_at.saturating_sub(submitted_at);
    let mut metrics = RequestMetrics {
        submitted_at,
        started_at,
        finished_at: started_at,
        queue_wait,
        ..Default::default()
    };
    let mut span = span!(tracer, "query.execute", &request.dataset);
    if let Some(deadline) = request.deadline {
        // Lazy expiry: the deadline passed while the request was
        // queued. Shed it here, before any store or decode work — a
        // request dequeued exactly at its deadline tick still runs.
        if started_at > deadline {
            ledger.record_finished(&metrics, Completion::DeadlineMissed, class, false);
            ledger.record_shed(class, ShedReason::ExpiredInQueue);
            if let Some(s) = span.as_mut() {
                s.set_outcome("shed");
            }
            let _ = reply.send(QueryResponse {
                outcome: Err(QueryError::Shed {
                    reason: ShedReason::ExpiredInQueue,
                    retry_after: sched.retry_after(class),
                }),
                metrics,
            });
            return;
        }
    }
    let executed = execute(store, &request, convert, streaming, clock);
    metrics.finished_at = clock.now();
    metrics.service_time = metrics.finished_at.saturating_sub(started_at);
    if executed.is_err() {
        if let Some(s) = span.as_mut() {
            s.set_outcome("error");
        }
    }
    drop(span);
    let outcome = match executed {
        Ok((outcome, cache_hit)) => {
            metrics.cache_hit = cache_hit;
            metrics.bytes_out = match &outcome {
                QueryOutcome::Converted { bytes_out, .. } => *bytes_out,
                QueryOutcome::Coverage { bins, .. } => {
                    (bins.len() * std::mem::size_of::<f64>()) as u64
                }
            };
            // Goodput = completed *within deadline*; deadline-free
            // requests always count.
            let in_deadline = request.deadline.is_none_or(|d| metrics.finished_at <= d);
            ledger.record_finished(&metrics, Completion::Completed, class, in_deadline);
            Ok(outcome)
        }
        Err(e) => {
            ledger.record_finished(&metrics, Completion::Failed, class, false);
            Err(QueryError::Failed(e.to_string()))
        }
    };
    let _ = reply.send(QueryResponse { outcome, metrics });
}

/// Resolves and runs one request against the store. Returns the outcome
/// and whether the dataset lookup was a cache hit.
fn execute(
    store: &ShardStore,
    request: &QueryRequest,
    convert: &ConvertConfig,
    streaming: Option<&PipelineConfig>,
    clock: &Arc<dyn Clock>,
) -> Result<(QueryOutcome, bool)> {
    let (shard, cache_hit) = store.get(&request.dataset)?;
    let region = Region::parse(&request.region, shard.bamx.header())?;
    let ref_id = region.resolve(shard.bamx.header())?;
    let indices = shard.baix.shard_indices(shard.baix.locate(ref_id, &region));
    let outcome = match &request.kind {
        QueryKind::Convert { format, out_dir } => {
            std::fs::create_dir_all(out_dir)?;
            // Same stem formula as `BamConverter::convert_partial`, so a
            // request's part file is byte-identical (name and content)
            // to the single-rank one-shot path — on BOTH branches below
            // (`tests/query_engine.rs` enforces it).
            let stem = format!(
                "{}.{}",
                request.dataset,
                region.to_string().replace([':', '-'], "_")
            );
            if let Some(pipeline) = streaming {
                // Bounded streaming response path: same records, same
                // bytes, working set capped by the pipeline window.
                let converter = StreamConverter::with_clock(pipeline.clone(), Arc::clone(clock));
                let run = converter.convert(
                    vec![ShardInput {
                        name: request.dataset.clone(),
                        bamx: Arc::clone(&shard.bamx),
                        indices: Some(indices),
                    }],
                    *format,
                    out_dir,
                    &stem,
                    0,
                    true,
                )?;
                // A single-shard request has no "other shards to keep
                // serving": a quarantine here is the request failing.
                if let Some(q) = run.quarantined.first() {
                    return Err(Error::InvalidRecord(format!(
                        "shard {:?} failed structurally mid-stream: {}",
                        q.shard, q.error
                    )));
                }
                QueryOutcome::Converted {
                    output: run.path,
                    records_in: run.records_in,
                    records_out: run.records_out,
                    bytes_out: run.bytes_out,
                }
            } else {
                let (stats, path) = convert_index_list(
                    &shard.bamx,
                    &indices,
                    *format,
                    out_dir,
                    &stem,
                    0,
                    true,
                    convert,
                )?;
                QueryOutcome::Converted {
                    output: path,
                    records_in: stats.records_in,
                    records_out: stats.records_out,
                    bytes_out: stats.bytes_out,
                }
            }
        }
        QueryKind::Coverage { bin_size } => {
            let mut hist = CoverageHistogram::new(shard.bamx.header(), *bin_size);
            let mut records = 0u64;
            // Coalesce consecutive indices into range reads, exactly as
            // conversion does.
            let mut i = 0usize;
            while i < indices.len() {
                let run_start = indices[i];
                let mut j = i + 1;
                while j < indices.len() && indices[j] == indices[j - 1] + 1 {
                    j += 1;
                }
                let run_end = indices[j - 1] + 1;
                for rec in shard.bamx.read_range(run_start, run_end)? {
                    records += 1;
                    hist.add_alignment(&rec);
                }
                i = j;
            }
            QueryOutcome::Coverage { bins: hist.bins, bin_size: *bin_size, records }
        }
    };
    Ok((outcome, cache_hit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::testutil::write_shard;
    use ngs_converter::TargetFormat;

    fn convert_request(dataset: &str, region: &str, out_dir: &std::path::Path) -> QueryRequest {
        QueryRequest {
            dataset: dataset.into(),
            region: region.into(),
            kind: QueryKind::Convert {
                format: TargetFormat::Bed,
                out_dir: out_dir.to_path_buf(),
            },
            deadline: None,
            class: QueryClass::Interactive,
        }
    }

    #[test]
    fn convert_and_coverage_requests_execute() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 300, 500, 700, 900]);
        let engine =
            QueryEngine::new(dir.path(), EngineConfig::with_workers(2)).unwrap();

        let out = dir.path().join("out");
        let t1 = engine.submit(convert_request("d", "chr1:1-600", &out)).unwrap();
        let t2 = engine
            .submit(QueryRequest {
                dataset: "d".into(),
                region: "chr1".into(),
                kind: QueryKind::Coverage { bin_size: 25 },
                deadline: None,
                class: QueryClass::Batch,
            })
            .unwrap();

        match t1.wait().outcome.unwrap() {
            QueryOutcome::Converted { records_in, output, .. } => {
                // Starts (0-based) inside [0,600): 99, 299, 499.
                assert_eq!(records_in, 3);
                assert!(output.is_file());
            }
            other => panic!("expected Converted, got {other:?}"),
        }
        match t2.wait().outcome.unwrap() {
            QueryOutcome::Coverage { records, bins, .. } => {
                assert_eq!(records, 5);
                assert!(bins.iter().sum::<f64>() > 0.0);
            }
            other => panic!("expected Coverage, got {other:?}"),
        }
        let stats = engine.drain();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits + stats.cache_misses, 2);
        // One request per class, both completed within (absent)
        // deadlines — goodput counts both.
        assert_eq!(stats.class_submitted, [1, 1]);
        assert_eq!(stats.class_completed, [1, 1]);
        assert_eq!(stats.goodput_completed, 2);
    }

    #[test]
    fn queue_full_is_typed_rejection() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        // No workers: the queue can only fill, deterministically.
        let config = EngineConfig {
            workers: 0,
            queue_capacity: 2,
            shed_retry_unit: Duration::from_millis(1),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::new(dir.path(), config).unwrap();
        let out = dir.path().join("out");
        let _t1 = engine.submit(convert_request("d", "chr1", &out)).unwrap();
        let _t2 = engine.submit(convert_request("d", "chr1", &out)).unwrap();
        let err = engine.submit(convert_request("d", "chr1", &out)).unwrap_err();
        // Depth 2 at rejection time → retry_after = unit × 3.
        assert_eq!(err, QueryError::Overloaded { retry_after: Duration::from_millis(3) });
        assert_eq!(err.retry_after(), Some(Duration::from_millis(3)));
        assert_eq!(engine.stats().rejected, 1);
        // Queues are per class: the batch queue still has room.
        let mut batch_req = convert_request("d", "chr1", &out);
        batch_req.class = QueryClass::Batch;
        let _t3 = engine.submit(batch_req).unwrap();
        // Tickets of never-run requests resolve to ShuttingDown on drain.
        let t = _t1;
        drop(engine);
        assert_eq!(t.wait().outcome.unwrap_err(), QueryError::ShuttingDown);
    }

    #[test]
    fn expired_deadline_is_shed_at_admission() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        let clock = Arc::new(ManualClock::new());
        clock.set(Duration::from_secs(10));
        let engine = QueryEngine::with_clock(
            dir.path(),
            EngineConfig::with_workers(1),
            clock.clone(),
        )
        .unwrap();
        let mut req = convert_request("d", "chr1", &dir.path().join("out"));
        req.deadline = Some(Duration::from_secs(5)); // already past
        let err = engine.submit(req).unwrap_err();
        match err {
            QueryError::Shed { reason, retry_after } => {
                assert_eq!(reason, ShedReason::Expired);
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        // The store was never touched: shed-before-decode.
        assert_eq!(engine.store().counters().decodes, 0);
        let stats = engine.drain();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.shed_expired, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn hot_shard_cap_sheds_the_monopolist_only() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "hot", &[100]);
        write_shard(dir.path(), "cold", &[200]);
        let config = EngineConfig {
            workers: 0, // deterministic: nothing dequeues
            queue_capacity: 16,
            hot_shard_cap: 2,
            ..EngineConfig::default()
        };
        let engine = QueryEngine::new(dir.path(), config).unwrap();
        let out = dir.path().join("out");
        let _h1 = engine.submit(convert_request("hot", "chr1", &out)).unwrap();
        let _h2 = engine.submit(convert_request("hot", "chr1", &out)).unwrap();
        let err = engine.submit(convert_request("hot", "chr1", &out)).unwrap_err();
        assert!(
            matches!(err, QueryError::Shed { reason: ShedReason::HotShard, .. }),
            "expected hot-shard shed, got {err:?}"
        );
        // Other datasets are unaffected by the hot key's cap.
        let _c = engine.submit(convert_request("cold", "chr1", &out)).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.shed_hot_shard, 1);
        assert_eq!(stats.submitted, 3);
    }

    #[test]
    fn future_deadline_executes_and_clock_is_injected() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200]);
        let clock = Arc::new(ManualClock::new());
        clock.set(Duration::from_secs(3));
        let engine = QueryEngine::with_clock(
            dir.path(),
            EngineConfig::with_workers(1),
            clock.clone(),
        )
        .unwrap();
        let mut req = convert_request("d", "chr1", &dir.path().join("out"));
        req.deadline = Some(Duration::from_secs(30));
        let resp = engine.submit(req).unwrap().wait();
        assert!(resp.outcome.is_ok());
        // The manual clock never advanced, so timing fields are exact.
        assert_eq!(resp.metrics.submitted_at, Duration::from_secs(3));
        assert_eq!(resp.metrics.queue_wait, Duration::ZERO);
        assert_eq!(resp.metrics.service_time, Duration::ZERO);
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100]);
        let engine = QueryEngine::new(dir.path(), EngineConfig::with_workers(1)).unwrap();
        let out = dir.path().join("out");
        // Unknown dataset.
        let r1 = engine.submit(convert_request("nope", "chr1", &out)).unwrap().wait();
        assert!(matches!(r1.outcome, Err(QueryError::Failed(_))));
        // Bad region on a known dataset.
        let r2 = engine.submit(convert_request("d", "chrZ:1-2", &out)).unwrap().wait();
        assert!(matches!(r2.outcome, Err(QueryError::Failed(_))));
        // The engine still works afterwards.
        let r3 = engine.submit(convert_request("d", "chr1", &out)).unwrap().wait();
        assert!(r3.outcome.is_ok());
        let stats = engine.drain();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn corrupt_shard_quarantines_and_surfaces_in_stats() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "good", &[100, 200]);
        std::fs::write(dir.path().join("bad.bamx"), b"BAMJUNKJUNKJUNKJUNKJUNKJUNKJUNK")
            .unwrap();
        std::fs::write(dir.path().join("bad.baix"), b"JUNK").unwrap();
        let engine = QueryEngine::new(dir.path(), EngineConfig::with_workers(1)).unwrap();
        let out = dir.path().join("out");
        // First request decodes the corrupt shard and quarantines it.
        let r1 = engine.submit(convert_request("bad", "chr1", &out)).unwrap().wait();
        assert!(matches!(r1.outcome, Err(QueryError::Failed(_))));
        // Second fails fast from quarantine, reported the same way.
        let r2 = engine.submit(convert_request("bad", "chr1", &out)).unwrap().wait();
        match r2.outcome {
            Err(QueryError::Failed(msg)) => assert!(msg.contains("quarantined"), "got: {msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(engine.store().is_quarantined("bad"));
        // Healthy datasets still serve.
        let r3 = engine.submit(convert_request("good", "chr1", &out)).unwrap().wait();
        assert!(r3.outcome.is_ok());
        let stats = engine.drain();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.transient_retries, 0);
        assert_eq!(stats.backoff_rejections, 0);
    }

    #[test]
    fn engine_with_store_recovers_from_transient_faults() {
        use crate::store::{RetryPolicy, ShardStore, SourceOpener};
        use std::sync::atomic::{AtomicU32, Ordering};

        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200, 300]);
        let clock = Arc::new(ManualClock::new());
        // First two opens fail transiently; in-call retry absorbs both.
        let remaining = AtomicU32::new(2);
        let opener: Box<SourceOpener> = Box::new(move |path| {
            if remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                return Err(std::io::Error::other("flaky mount"));
            }
            Ok(Box::new(std::fs::File::open(path)?))
        });
        let store = Arc::new(
            ShardStore::open_with(dir.path(), 2, clock.clone(), RetryPolicy::default())
                .unwrap()
                .with_opener(opener),
        );
        let engine =
            QueryEngine::with_store(store, EngineConfig::with_workers(1), clock).unwrap();
        let resp = engine
            .submit(convert_request("d", "chr1", &dir.path().join("out")))
            .unwrap()
            .wait();
        assert!(resp.outcome.is_ok(), "retry must absorb transient faults: {resp:?}");
        let stats = engine.drain();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.transient_retries, 2);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn obs_registry_and_tracer_observe_requests() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200]);
        let clock = Arc::new(ManualClock::new());
        let registry = Arc::new(ngs_obs::Registry::new());
        let tracer = ngs_obs::Tracer::new(16, clock.clone());
        let config = EngineConfig {
            workers: 1,
            obs: Some(Arc::clone(&registry)),
            tracer: Some(Arc::clone(&tracer)),
            ..EngineConfig::default()
        };
        let engine = QueryEngine::with_clock(dir.path(), config, clock).unwrap();
        let out = dir.path().join("out");
        assert!(engine.submit(convert_request("d", "chr1", &out)).unwrap().wait().outcome.is_ok());
        assert!(engine
            .submit(convert_request("nope", "chr1", &out))
            .unwrap()
            .wait()
            .outcome
            .is_err());
        drop(engine);
        // The shared registry saw both the ledger and the store.
        let snap = registry.snapshot();
        assert_eq!(snap.counters["query.submitted"], 2);
        assert_eq!(snap.counters["query.completed"], 1);
        assert_eq!(snap.counters["query.failed"], 1);
        assert_eq!(snap.counters["query.class.interactive.submitted"], 2);
        assert_eq!(snap.counters["query.goodput_completed"], 1);
        assert_eq!(snap.counters["store.cache_misses"], 1);
        assert_eq!(snap.histograms["query.latency_ns"].count, 2);
        // Under the manual clock the snapshot renders byte-identically.
        assert_eq!(snap.render_json(), registry.snapshot().render_json());
        // The tracer recorded one span per executed request, in order.
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, "query.execute");
        assert_eq!(events[0].shard, "d");
        assert_eq!(events[0].outcome, "ok");
        assert_eq!(events[1].shard, "nope");
        assert_eq!(events[1].outcome, "error");
    }

    #[test]
    fn drain_finishes_queued_work() {
        let dir = tempfile::tempdir().unwrap();
        write_shard(dir.path(), "d", &[100, 200, 300, 400]);
        let engine = QueryEngine::new(dir.path(), EngineConfig::with_workers(2)).unwrap();
        let out = dir.path().join("out");
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                engine
                    .submit(convert_request("d", "chr1", &out.join(i.to_string())))
                    .unwrap()
            })
            .collect();
        let stats = engine.drain();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.completed, 8);
        for t in tickets {
            assert!(t.wait().outcome.is_ok());
        }
        // Same dataset every time: exactly one miss, the rest hits.
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 7);
    }

    /// Direct scheduler-level pin of the dequeue contract: strict
    /// priority flips submission order, and an aged batch front jumps
    /// ahead of fresher interactive work (counted as a promotion).
    #[test]
    fn scheduler_dequeues_strict_priority_with_aging() {
        fn job(class: QueryClass, name: &str, submitted_at: Duration) -> Job {
            // The receiver is dropped: replies to these jobs go nowhere,
            // which is fine — only dequeue order is under test.
            let (reply, _rx) = bounded(1);
            Job {
                request: QueryRequest {
                    dataset: name.into(),
                    region: "chr1".into(),
                    kind: QueryKind::Coverage { bin_size: 25 },
                    deadline: None,
                    class,
                },
                submitted_at,
                reply,
            }
        }
        let config = EngineConfig {
            queue_capacity: 16,
            age_promote: Duration::from_millis(100),
            ..EngineConfig::default()
        };
        let sched = Scheduler::new(&config);
        let ledger = Ledger::default();

        // Batch submitted first, interactive second: strict priority
        // serves interactive first while nothing has aged.
        sched.admit(job(QueryClass::Batch, "b0", Duration::ZERO), Duration::ZERO, &ledger).unwrap();
        sched
            .admit(
                job(QueryClass::Interactive, "i0", Duration::from_millis(10)),
                Duration::from_millis(10),
                &ledger,
            )
            .unwrap();
        {
            let mut st = sched.state.lock();
            let first = sched.pick(&mut st, Duration::from_millis(10), &ledger).unwrap();
            assert_eq!(first.request.dataset, "i0");
            let second = sched.pick(&mut st, Duration::from_millis(10), &ledger).unwrap();
            assert_eq!(second.request.dataset, "b0");
            assert!(sched.pick(&mut st, Duration::from_millis(10), &ledger).is_none());
        }
        assert_eq!(ledger.snapshot().aged_promotions, 0);

        // Now an old batch job vs a fresh interactive one: once the
        // batch front's wait reaches `age_promote`, it is promoted.
        sched.admit(job(QueryClass::Batch, "b1", Duration::ZERO), Duration::ZERO, &ledger).unwrap();
        sched
            .admit(
                job(QueryClass::Interactive, "i1", Duration::from_millis(120)),
                Duration::from_millis(120),
                &ledger,
            )
            .unwrap();
        {
            let mut st = sched.state.lock();
            let first = sched.pick(&mut st, Duration::from_millis(120), &ledger).unwrap();
            assert_eq!(first.request.dataset, "b1", "aged batch job must be promoted");
            let second = sched.pick(&mut st, Duration::from_millis(120), &ledger).unwrap();
            assert_eq!(second.request.dataset, "i1");
        }
        assert_eq!(ledger.snapshot().aged_promotions, 1);
    }
}
