//! Injected time sources for the query engine.
//!
//! The engine never reads wall time directly: every timestamp (queue
//! wait, service time, deadlines) goes through the [`Clock`] trait, so
//! production uses a monotonic [`SystemClock`] while tests drive a
//! [`ManualClock`] by hand — keeping deadline behaviour fully
//! deterministic, as CLAUDE.md requires of all tests.
//!
//! The trait's canonical home is [`ngs_pipeline::clock`]; this module
//! re-exports it so the query engine and the streaming pipeline share
//! one time axis (an engine's injected clock also drives the per-stage
//! metrics of any pipeline it spawns).

pub use ngs_pipeline::clock::{Clock, ManualClock, SystemClock};
