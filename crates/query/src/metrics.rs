//! The per-request metrics ledger and its aggregated snapshot.

use std::time::Duration;

use parking_lot::Mutex;

/// Timing and cache measurements of one finished request. All instants
/// are on the engine clock's axis.
#[derive(Debug, Clone, Default)]
pub struct RequestMetrics {
    /// When `submit` accepted the request.
    pub submitted_at: Duration,
    /// When a worker dequeued it.
    pub started_at: Duration,
    /// When the worker finished (successfully or not).
    pub finished_at: Duration,
    /// Time spent queued (`started_at - submitted_at`).
    pub queue_wait: Duration,
    /// Time spent executing (`finished_at - started_at`).
    pub service_time: Duration,
    /// Whether the dataset lookup hit the shard cache.
    pub cache_hit: bool,
    /// Output bytes produced (conversion bytes, or bin bytes for
    /// coverage requests).
    pub bytes_out: u64,
}

impl RequestMetrics {
    /// End-to-end latency (`finished_at - submitted_at`).
    pub fn latency(&self) -> Duration {
        self.finished_at.saturating_sub(self.submitted_at)
    }
}

/// How a dequeued request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Executed and produced an outcome.
    Completed,
    /// Execution returned an error.
    Failed,
    /// Dropped because its deadline had passed.
    DeadlineMissed,
}

/// Aggregated engine statistics; see [`Ledger::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that executed successfully.
    pub completed: u64,
    /// Requests whose execution failed.
    pub failed: u64,
    /// Requests dropped for missing their deadline.
    pub deadline_missed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// Completed requests whose dataset lookup hit the cache.
    pub cache_hits: u64,
    /// Completed requests whose dataset lookup missed.
    pub cache_misses: u64,
    /// Total output bytes across finished requests.
    pub bytes_out: u64,
    /// Sum of queue waits.
    pub total_queue_wait: Duration,
    /// Sum of service times.
    pub total_service: Duration,
    /// Sum of end-to-end latencies.
    pub total_latency: Duration,
    /// Largest end-to-end latency seen.
    pub max_latency: Duration,
    /// Immediate in-store retries after transient shard-open failures.
    /// Filled from the shard store by `QueryEngine::stats`, not by the
    /// ledger (always zero in a bare [`Ledger::snapshot`]).
    pub transient_retries: u64,
    /// Datasets permanently quarantined after structural decode errors
    /// (filled from the shard store, like `transient_retries`).
    pub quarantined: u64,
    /// Lookups refused because their dataset was in transient backoff
    /// (filled from the shard store, like `transient_retries`).
    pub backoff_rejections: u64,
    /// Self-heal attempts after structural shard failures (filled from
    /// the shard store, like `transient_retries`).
    pub repairs: u64,
    /// Self-heal attempts that restored and served the dataset (filled
    /// from the shard store, like `transient_retries`).
    pub repaired: u64,
}

impl QueryStats {
    /// Requests that reached a worker and finished, one way or another.
    pub fn finished(&self) -> u64 {
        self.completed + self.failed + self.deadline_missed
    }

    /// Cache hit rate over completed requests (0 when none completed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean end-to-end latency over finished requests.
    pub fn mean_latency(&self) -> Duration {
        let n = self.finished();
        if n == 0 {
            Duration::ZERO
        } else {
            self.total_latency / n as u32
        }
    }
}

/// Thread-safe accumulator the workers write into.
#[derive(Debug, Default)]
pub struct Ledger {
    stats: Mutex<QueryStats>,
}

impl Ledger {
    /// Counts an accepted submission.
    pub fn record_submitted(&self) {
        self.stats.lock().submitted += 1;
    }

    /// Counts an admission-control rejection.
    pub fn record_rejected(&self) {
        self.stats.lock().rejected += 1;
    }

    /// Folds one finished request into the aggregate.
    pub fn record_finished(&self, metrics: &RequestMetrics, completion: Completion) {
        let mut s = self.stats.lock();
        match completion {
            Completion::Completed => s.completed += 1,
            Completion::Failed => s.failed += 1,
            Completion::DeadlineMissed => s.deadline_missed += 1,
        }
        // Cache accounting only makes sense for requests that actually
        // completed a lookup: deadline drops never touch the store and
        // failures may have died before (or during) it.
        if completion == Completion::Completed {
            if metrics.cache_hit {
                s.cache_hits += 1;
            } else {
                s.cache_misses += 1;
            }
        }
        s.bytes_out += metrics.bytes_out;
        s.total_queue_wait += metrics.queue_wait;
        s.total_service += metrics.service_time;
        let latency = metrics.latency();
        s.total_latency += latency;
        s.max_latency = s.max_latency.max(latency);
    }

    /// A copy of the aggregate at this moment.
    pub fn snapshot(&self) -> QueryStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(wait_ms: u64, service_ms: u64, hit: bool, bytes: u64) -> RequestMetrics {
        let submitted = Duration::from_millis(10);
        let started = submitted + Duration::from_millis(wait_ms);
        RequestMetrics {
            submitted_at: submitted,
            started_at: started,
            finished_at: started + Duration::from_millis(service_ms),
            queue_wait: Duration::from_millis(wait_ms),
            service_time: Duration::from_millis(service_ms),
            cache_hit: hit,
            bytes_out: bytes,
        }
    }

    #[test]
    fn ledger_aggregates() {
        let ledger = Ledger::default();
        ledger.record_submitted();
        ledger.record_submitted();
        ledger.record_submitted();
        ledger.record_rejected();
        ledger.record_finished(&metrics(5, 20, false, 100), Completion::Completed);
        ledger.record_finished(&metrics(1, 4, true, 50), Completion::Completed);
        ledger.record_finished(&metrics(9, 0, false, 0), Completion::DeadlineMissed);
        let s = ledger.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.finished(), 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1); // deadline drop counts neither way
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.bytes_out, 150);
        assert_eq!(s.total_queue_wait, Duration::from_millis(15));
        assert_eq!(s.total_service, Duration::from_millis(24));
        assert_eq!(s.max_latency, Duration::from_millis(25));
        assert_eq!(s.mean_latency(), Duration::from_millis(13));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = QueryStats::default();
        assert_eq!(s.finished(), 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
    }
}
