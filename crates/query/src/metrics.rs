//! The per-request metrics ledger and its aggregated snapshot.
//!
//! Since the `ngs-obs` unification the ledger is *histogram-backed*: it
//! owns no sums of its own but publishes counters and log2 histograms
//! (`query.latency_ns`, `query.queue_wait_ns`, `query.service_ns`) into
//! a shared [`Registry`] — the same registry `ngsp stats` renders —
//! and [`QueryStats`] is a snapshot view read back out of it, now with
//! p50/p95/p99 estimates alongside the exact totals.

use std::sync::Arc;
use std::time::Duration;

use ngs_obs::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};

use crate::request::{QueryClass, ShedReason};

/// Timing and cache measurements of one finished request. All instants
/// are on the engine clock's axis.
#[derive(Debug, Clone, Default)]
pub struct RequestMetrics {
    /// When `submit` accepted the request.
    pub submitted_at: Duration,
    /// When a worker dequeued it.
    pub started_at: Duration,
    /// When the worker finished (successfully or not).
    pub finished_at: Duration,
    /// Time spent queued (`started_at - submitted_at`).
    pub queue_wait: Duration,
    /// Time spent executing (`finished_at - started_at`).
    pub service_time: Duration,
    /// Whether the dataset lookup hit the shard cache.
    pub cache_hit: bool,
    /// Output bytes produced (conversion bytes, or bin bytes for
    /// coverage requests).
    pub bytes_out: u64,
}

impl RequestMetrics {
    /// End-to-end latency (`finished_at - submitted_at`).
    pub fn latency(&self) -> Duration {
        self.finished_at.saturating_sub(self.submitted_at)
    }
}

/// How a dequeued request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Executed and produced an outcome.
    Completed,
    /// Execution returned an error.
    Failed,
    /// Dropped because its deadline had passed.
    DeadlineMissed,
}

/// Aggregated engine statistics; see [`Ledger::snapshot`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests that executed successfully.
    pub completed: u64,
    /// Requests whose execution failed.
    pub failed: u64,
    /// Requests dropped for missing their deadline.
    pub deadline_missed: u64,
    /// Requests rejected at admission (class queue full).
    pub rejected: u64,
    /// Requests shed by load control before any decode work (expired
    /// deadline at admission or in queue, hot-shard cap) — DESIGN.md §13.
    pub shed: u64,
    /// Sheds whose deadline had already passed at admission.
    pub shed_expired: u64,
    /// Sheds whose deadline passed while queued (lazy expiry at
    /// dequeue; these also count in `deadline_missed`).
    pub shed_expired_in_queue: u64,
    /// Sheds from the per-shard admission cap.
    pub shed_hot_shard: u64,
    /// Aged dequeues where a lower-priority job jumped ahead of queued
    /// higher-priority work (anti-starvation promotions).
    pub aged_promotions: u64,
    /// Completed requests that finished within their deadline (or had
    /// none) — the goodput numerator.
    pub goodput_completed: u64,
    /// Per-class accepted submissions, indexed by [`QueryClass::index`].
    pub class_submitted: [u64; QueryClass::COUNT],
    /// Per-class successful completions.
    pub class_completed: [u64; QueryClass::COUNT],
    /// Per-class queue-full rejections.
    pub class_rejected: [u64; QueryClass::COUNT],
    /// Per-class load-control sheds (all reasons).
    pub class_shed: [u64; QueryClass::COUNT],
    /// Per-class end-to-end latency distributions (nanoseconds).
    pub class_latency: [HistogramSnapshot; QueryClass::COUNT],
    /// Completed requests whose dataset lookup hit the cache.
    pub cache_hits: u64,
    /// Completed requests whose dataset lookup missed.
    pub cache_misses: u64,
    /// Total output bytes across finished requests.
    pub bytes_out: u64,
    /// Sum of queue waits.
    pub total_queue_wait: Duration,
    /// Sum of service times.
    pub total_service: Duration,
    /// Sum of end-to-end latencies.
    pub total_latency: Duration,
    /// Largest end-to-end latency seen.
    pub max_latency: Duration,
    /// End-to-end latency distribution (nanoseconds).
    pub latency_hist: HistogramSnapshot,
    /// Queue-wait distribution (nanoseconds).
    pub queue_wait_hist: HistogramSnapshot,
    /// Service-time distribution (nanoseconds).
    pub service_hist: HistogramSnapshot,
    /// Immediate in-store retries after transient shard-open failures.
    /// Filled from the shard store by `QueryEngine::stats`, not by the
    /// ledger (always zero in a bare [`Ledger::snapshot`]).
    pub transient_retries: u64,
    /// Datasets permanently quarantined after structural decode errors
    /// (filled from the shard store, like `transient_retries`).
    pub quarantined: u64,
    /// Lookups refused because their dataset was in transient backoff
    /// (filled from the shard store, like `transient_retries`).
    pub backoff_rejections: u64,
    /// Self-heal attempts after structural shard failures (filled from
    /// the shard store, like `transient_retries`).
    pub repairs: u64,
    /// Self-heal attempts that restored and served the dataset (filled
    /// from the shard store, like `transient_retries`).
    pub repaired: u64,
}

impl QueryStats {
    /// Requests that reached a worker and finished, one way or another.
    pub fn finished(&self) -> u64 {
        self.completed + self.failed + self.deadline_missed
    }

    /// Cache hit rate over completed requests (0 when none completed).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean end-to-end latency over finished requests. The division runs
    /// over the total's full nanosecond range in `u128` — a `u32` divisor
    /// would silently truncate past 2³² finished requests.
    pub fn mean_latency(&self) -> Duration {
        let n = self.finished();
        if n == 0 {
            Duration::ZERO
        } else {
            let mean = self.total_latency.as_nanos() / u128::from(n);
            // A mean of per-request durations always fits u64 nanoseconds.
            Duration::from_nanos(u64::try_from(mean).unwrap_or(u64::MAX))
        }
    }

    /// Median end-to-end latency estimate (log2-bucket upper bound).
    pub fn p50_latency(&self) -> Duration {
        Duration::from_nanos(self.latency_hist.p50())
    }

    /// 95th-percentile end-to-end latency estimate.
    pub fn p95_latency(&self) -> Duration {
        Duration::from_nanos(self.latency_hist.p95())
    }

    /// 99th-percentile end-to-end latency estimate.
    pub fn p99_latency(&self) -> Duration {
        Duration::from_nanos(self.latency_hist.p99())
    }
}

/// Per-class handle bundle (one per [`QueryClass`]), published under
/// `query.class.<name>.*`.
#[derive(Debug)]
struct ClassHandles {
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    latency: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
}

/// Thread-safe accumulator the workers write into: handles onto the
/// shared [`Registry`], so every update is one relaxed atomic and the
/// same numbers surface in `ngsp stats`.
#[derive(Debug)]
pub struct Ledger {
    registry: Arc<Registry>,
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    deadline_missed: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    bytes_out: Arc<Counter>,
    queue_wait: Arc<Histogram>,
    service: Arc<Histogram>,
    latency: Arc<Histogram>,
    /// Peak = largest latency seen (`fetch_max` via the gauge's peak).
    max_latency: Arc<Gauge>,
    /// Worker wakeups (one blocking dequeue each, however many jobs the
    /// wakeup then claims).
    wakeups: Arc<Counter>,
    /// Jobs claimed per wakeup — how well batching amortizes queue
    /// traffic (mean = finished jobs / wakeups).
    batch_jobs: Arc<Histogram>,
    /// Load-control sheds, total and by reason (DESIGN.md §13).
    shed: Arc<Counter>,
    shed_expired: Arc<Counter>,
    shed_expired_in_queue: Arc<Counter>,
    shed_hot_shard: Arc<Counter>,
    /// Anti-starvation promotions in the aged dequeue.
    aged_promotions: Arc<Counter>,
    /// Completions within deadline — the goodput numerator.
    goodput_completed: Arc<Counter>,
    /// Per-class handles, indexed by [`QueryClass::index`].
    classes: [ClassHandles; QueryClass::COUNT],
}

impl Default for Ledger {
    fn default() -> Self {
        Self::with_registry(Arc::new(Registry::new()))
    }
}

impl Ledger {
    /// A ledger publishing its `query.*` metrics into `registry`.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        let classes = std::array::from_fn(|i| {
            let name = QueryClass::ALL[i].name();
            ClassHandles {
                submitted: registry.counter(&format!("query.class.{name}.submitted")),
                completed: registry.counter(&format!("query.class.{name}.completed")),
                rejected: registry.counter(&format!("query.class.{name}.rejected")),
                shed: registry.counter(&format!("query.class.{name}.shed")),
                latency: registry.histogram(&format!("query.class.{name}.latency_ns")),
                queue_depth: registry.gauge(&format!("query.class.{name}.queue_depth")),
            }
        });
        Ledger {
            submitted: registry.counter("query.submitted"),
            rejected: registry.counter("query.rejected"),
            completed: registry.counter("query.completed"),
            failed: registry.counter("query.failed"),
            deadline_missed: registry.counter("query.deadline_missed"),
            cache_hits: registry.counter("query.cache_hits"),
            cache_misses: registry.counter("query.cache_misses"),
            bytes_out: registry.counter("query.bytes_out"),
            queue_wait: registry.histogram("query.queue_wait_ns"),
            service: registry.histogram("query.service_ns"),
            latency: registry.histogram("query.latency_ns"),
            max_latency: registry.gauge("query.max_latency_ns"),
            wakeups: registry.counter("query.worker_wakeups"),
            batch_jobs: registry.histogram("query.batch_jobs"),
            shed: registry.counter("query.shed"),
            shed_expired: registry.counter("query.shed.expired"),
            shed_expired_in_queue: registry.counter("query.shed.expired_in_queue"),
            shed_hot_shard: registry.counter("query.shed.hot_shard"),
            aged_promotions: registry.counter("query.aged_promotions"),
            goodput_completed: registry.counter("query.goodput_completed"),
            classes,
            registry,
        }
    }

    /// The registry this ledger publishes into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Counts an accepted submission.
    pub fn record_submitted(&self, class: QueryClass) {
        self.submitted.inc();
        self.classes[class.index()].submitted.inc();
    }

    /// Counts an admission-control (queue-full) rejection.
    pub fn record_rejected(&self, class: QueryClass) {
        self.rejected.inc();
        self.classes[class.index()].rejected.inc();
    }

    /// Counts a load-control shed (before any decode work).
    pub fn record_shed(&self, class: QueryClass, reason: ShedReason) {
        self.shed.inc();
        self.classes[class.index()].shed.inc();
        match reason {
            ShedReason::Expired => self.shed_expired.inc(),
            ShedReason::ExpiredInQueue => self.shed_expired_in_queue.inc(),
            ShedReason::HotShard => self.shed_hot_shard.inc(),
        }
    }

    /// Counts one anti-starvation promotion in the aged dequeue.
    pub fn record_aged_promotion(&self) {
        self.aged_promotions.inc();
    }

    /// Publishes the current depth of `class`'s queue.
    pub fn set_queue_depth(&self, class: QueryClass, depth: u64) {
        self.classes[class.index()].queue_depth.set(depth);
    }

    /// Counts one worker wakeup that claimed `jobs` queued requests.
    pub fn record_batch(&self, jobs: u64) {
        self.wakeups.inc();
        self.batch_jobs.record(jobs);
    }

    /// Folds one finished request into the aggregate. `in_deadline` is
    /// whether a completed request finished within its deadline (or had
    /// none) — the goodput criterion; it is ignored for non-completions.
    pub fn record_finished(
        &self,
        metrics: &RequestMetrics,
        completion: Completion,
        class: QueryClass,
        in_deadline: bool,
    ) {
        match completion {
            Completion::Completed => {
                self.completed.inc();
                self.classes[class.index()].completed.inc();
                if in_deadline {
                    self.goodput_completed.inc();
                }
            }
            Completion::Failed => self.failed.inc(),
            Completion::DeadlineMissed => self.deadline_missed.inc(),
        }
        // Cache accounting only makes sense for requests that actually
        // completed a lookup: deadline drops never touch the store and
        // failures may have died before (or during) it.
        if completion == Completion::Completed {
            if metrics.cache_hit {
                self.cache_hits.inc();
            } else {
                self.cache_misses.inc();
            }
        }
        self.bytes_out.add(metrics.bytes_out);
        self.queue_wait.record_duration(metrics.queue_wait);
        self.service.record_duration(metrics.service_time);
        let latency = metrics.latency();
        self.latency.record_duration(latency);
        self.classes[class.index()].latency.record_duration(latency);
        self.max_latency.set(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A copy of the aggregate at this moment. Each field is exact for
    /// the updates that preceded the snapshot; totals come from the
    /// histograms' exact sums, so nothing is lost to bucketing.
    pub fn snapshot(&self) -> QueryStats {
        let queue_wait = self.queue_wait.snapshot();
        let service = self.service.snapshot();
        let latency = self.latency.snapshot();
        QueryStats {
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            failed: self.failed.get(),
            deadline_missed: self.deadline_missed.get(),
            shed: self.shed.get(),
            shed_expired: self.shed_expired.get(),
            shed_expired_in_queue: self.shed_expired_in_queue.get(),
            shed_hot_shard: self.shed_hot_shard.get(),
            aged_promotions: self.aged_promotions.get(),
            goodput_completed: self.goodput_completed.get(),
            class_submitted: std::array::from_fn(|i| self.classes[i].submitted.get()),
            class_completed: std::array::from_fn(|i| self.classes[i].completed.get()),
            class_rejected: std::array::from_fn(|i| self.classes[i].rejected.get()),
            class_shed: std::array::from_fn(|i| self.classes[i].shed.get()),
            class_latency: std::array::from_fn(|i| self.classes[i].latency.snapshot()),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            bytes_out: self.bytes_out.get(),
            total_queue_wait: Duration::from_nanos(queue_wait.sum),
            total_service: Duration::from_nanos(service.sum),
            total_latency: Duration::from_nanos(latency.sum),
            max_latency: Duration::from_nanos(self.max_latency.peak()),
            latency_hist: latency,
            queue_wait_hist: queue_wait,
            service_hist: service,
            transient_retries: 0,
            quarantined: 0,
            backoff_rejections: 0,
            repairs: 0,
            repaired: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(wait_ms: u64, service_ms: u64, hit: bool, bytes: u64) -> RequestMetrics {
        let submitted = Duration::from_millis(10);
        let started = submitted + Duration::from_millis(wait_ms);
        RequestMetrics {
            submitted_at: submitted,
            started_at: started,
            finished_at: started + Duration::from_millis(service_ms),
            queue_wait: Duration::from_millis(wait_ms),
            service_time: Duration::from_millis(service_ms),
            cache_hit: hit,
            bytes_out: bytes,
        }
    }

    #[test]
    fn ledger_aggregates() {
        let ledger = Ledger::default();
        ledger.record_submitted(QueryClass::Interactive);
        ledger.record_submitted(QueryClass::Interactive);
        ledger.record_submitted(QueryClass::Batch);
        ledger.record_rejected(QueryClass::Interactive);
        ledger.record_finished(&metrics(5, 20, false, 100), Completion::Completed, QueryClass::Interactive, true);
        ledger.record_finished(&metrics(1, 4, true, 50), Completion::Completed, QueryClass::Batch, false);
        ledger.record_finished(&metrics(9, 0, false, 0), Completion::DeadlineMissed, QueryClass::Interactive, false);
        let s = ledger.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.class_submitted, [2, 1]);
        assert_eq!(s.class_completed, [1, 1]);
        assert_eq!(s.class_rejected, [1, 0]);
        assert_eq!(s.goodput_completed, 1);
        assert_eq!(s.class_latency[0].count, 2);
        assert_eq!(s.class_latency[1].count, 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.finished(), 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1); // deadline drop counts neither way
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.bytes_out, 150);
        assert_eq!(s.total_queue_wait, Duration::from_millis(15));
        assert_eq!(s.total_service, Duration::from_millis(24));
        assert_eq!(s.max_latency, Duration::from_millis(25));
        assert_eq!(s.mean_latency(), Duration::from_millis(13));
        // Histogram views agree with the exact aggregates.
        assert_eq!(s.latency_hist.count, 3);
        assert!(s.p99_latency() >= Duration::from_millis(25));
        assert!(s.p50_latency() >= Duration::from_millis(9));
    }

    #[test]
    fn ledger_publishes_into_a_shared_registry() {
        let registry = Arc::new(Registry::new());
        let ledger = Ledger::with_registry(Arc::clone(&registry));
        ledger.record_submitted(QueryClass::Interactive);
        ledger.record_finished(&metrics(1, 2, true, 10), Completion::Completed, QueryClass::Interactive, true);
        ledger.record_shed(QueryClass::Batch, ShedReason::HotShard);
        ledger.set_queue_depth(QueryClass::Batch, 5);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["query.submitted"], 1);
        assert_eq!(snap.counters["query.completed"], 1);
        assert_eq!(snap.counters["query.bytes_out"], 10);
        assert_eq!(snap.counters["query.shed"], 1);
        assert_eq!(snap.counters["query.shed.hot_shard"], 1);
        assert_eq!(snap.counters["query.class.batch.shed"], 1);
        assert_eq!(snap.counters["query.goodput_completed"], 1);
        assert_eq!(snap.gauges["query.class.batch.queue_depth"].current, 5);
        assert_eq!(snap.histograms["query.latency_ns"].count, 1);
        assert_eq!(snap.histograms["query.class.interactive.latency_ns"].count, 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = QueryStats::default();
        assert_eq!(s.finished(), 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.p99_latency(), Duration::ZERO);
    }

    #[test]
    fn mean_latency_is_exact_past_u32_finished_requests() {
        // 2³² + 6 finished requests of 1 ms each: a `u32` divisor wraps
        // to 6 and reports a mean ~715 million times too large.
        let n = u64::from(u32::MAX) + 7;
        let per_request = Duration::from_millis(1);
        let s = QueryStats {
            completed: n,
            total_latency: per_request * u32::MAX + per_request * 7,
            ..Default::default()
        };
        assert_eq!(s.finished(), n);
        assert_eq!(s.mean_latency(), per_request);
    }
}
