//! Graceful-degradation acceptance suite (DESIGN.md §13): what the
//! engine does when offered strictly more than it can serve.
//!
//! * **Priority**: with one worker busy, a later interactive request is
//!   dequeued before an earlier batch request — proven by the order in
//!   which their shards hit the (instrumented) opener.
//! * **Shed-before-decode at 2×+ overload**: with capacity for one
//!   in-flight and one queued request, a burst of eight to a victim
//!   dataset produces typed `Overloaded`/`Shed` outcomes and **zero**
//!   decodes of the victim — overload work costs the store nothing.
//! * **Byte-identity under load**: every request the overloaded engine
//!   *accepts and completes* produces output byte-identical to the same
//!   request on an unloaded engine. Load control changes who gets
//!   served, never what they are served.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ngs_bamx::{write_bamx_file, Baix, BamxCompression, BamxFile};
use ngs_converter::TargetFormat;
use ngs_formats::header::{ReferenceSequence, SamHeader};
use ngs_formats::sam;
use ngs_query::store::SourceOpener;
use ngs_query::{
    Clock, EngineConfig, ManualClock, QueryClass, QueryEngine, QueryError, QueryKind,
    QueryOutcome, QueryRequest, RetryPolicy, ShardStore, ShedReason, SystemClock,
};

fn write_shard(dir: &std::path::Path, name: &str, starts: &[i64]) {
    let header = SamHeader::from_references(vec![ReferenceSequence {
        name: b"chr1".to_vec(),
        length: 100_000,
    }]);
    let records: Vec<_> = starts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let line = format!("{name}{i}\t0\tchr1\t{p}\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII");
            sam::parse_record(line.as_bytes(), 1).unwrap()
        })
        .collect();
    let bamx_path = dir.join(format!("{name}.bamx"));
    write_bamx_file(&bamx_path, &header, &records, BamxCompression::Plain).unwrap();
    let baix = Baix::build(&BamxFile::open(&bamx_path).unwrap()).unwrap();
    baix.save(dir.join(format!("{name}.baix"))).unwrap();
}

#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

fn await_condition(what: &str, cond: impl Fn() -> bool) {
    for _ in 0..10_000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    panic!("timed out waiting for: {what}");
}

fn coverage(dataset: &str, class: QueryClass, deadline: Option<Duration>) -> QueryRequest {
    QueryRequest {
        dataset: dataset.into(),
        region: "chr1:1-5000".into(),
        kind: QueryKind::Coverage { bin_size: 100 },
        deadline,
        class,
    }
}

/// With the single worker plugged, a batch request submitted *first*
/// must still be dequeued *after* an interactive request submitted
/// later — observed by which dataset's shard is opened first.
#[test]
fn interactive_dequeues_before_earlier_batch() {
    let dir = tempfile::tempdir().unwrap();
    for name in ["plug", "bat", "int"] {
        write_shard(dir.path(), name, &[100, 200]);
    }

    let clock = Arc::new(ManualClock::new());
    let gate = Arc::new(Gate::default());
    let order = Arc::new(Mutex::new(Vec::<String>::new()));
    let (g, ord) = (Arc::clone(&gate), Arc::clone(&order));
    let opener: Box<SourceOpener> = Box::new(move |path| {
        if path.extension().is_some_and(|e| e == "bamx") {
            let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
            ord.lock().unwrap().push(stem.clone());
            if stem == "plug" {
                g.wait();
            }
        }
        Ok(Box::new(std::fs::File::open(path)?))
    });
    let store = ShardStore::open_with(dir.path(), 4, clock.clone(), RetryPolicy::default())
        .unwrap()
        .with_opener(opener);
    let engine = QueryEngine::with_store(
        Arc::new(store),
        EngineConfig { workers: 1, queue_capacity: 8, ..EngineConfig::default() },
        clock.clone(),
    )
    .unwrap();

    let plug = engine.submit(coverage("plug", QueryClass::Interactive, None)).unwrap();
    await_condition("worker parked in plug decode", || !order.lock().unwrap().is_empty());
    // Batch first, interactive second: strict priority must invert them.
    let bat = engine.submit(coverage("bat", QueryClass::Batch, None)).unwrap();
    let int = engine.submit(coverage("int", QueryClass::Interactive, None)).unwrap();
    gate.release();
    assert!(plug.wait().outcome.is_ok());
    assert!(bat.wait().outcome.is_ok());
    assert!(int.wait().outcome.is_ok());

    assert_eq!(
        *order.lock().unwrap(),
        vec!["plug".to_string(), "int".into(), "bat".into()],
        "interactive must be served before the earlier-submitted batch request"
    );
    let stats = engine.drain();
    assert_eq!(stats.class_completed, [2, 1]);
}

/// Eight requests against a capacity of two (one in flight, one
/// queued): six are `Overloaded` with the exact depth-derived hint, the
/// queued one expires into an in-queue shed — and the victim dataset is
/// never decoded. Offered 8, served 1, decode cost of the other 7: zero.
#[test]
fn overload_burst_sheds_without_touching_the_store() {
    let dir = tempfile::tempdir().unwrap();
    write_shard(dir.path(), "plug", &[100, 200]);
    write_shard(dir.path(), "victim", &[300, 400]);

    let clock = Arc::new(ManualClock::new());
    let gate = Arc::new(Gate::default());
    let opens = Arc::new(AtomicU32::new(0));
    let (g, op) = (Arc::clone(&gate), Arc::clone(&opens));
    let opener: Box<SourceOpener> = Box::new(move |path| {
        if path.extension().is_some_and(|e| e == "bamx") {
            op.fetch_add(1, Ordering::SeqCst);
            if path.file_stem().is_some_and(|s| s == "plug") {
                g.wait();
            }
        }
        Ok(Box::new(std::fs::File::open(path)?))
    });
    let store = ShardStore::open_with(dir.path(), 4, clock.clone(), RetryPolicy::default())
        .unwrap()
        .with_opener(opener);
    let engine = QueryEngine::with_store(
        Arc::new(store),
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            shed_retry_unit: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        clock.clone(),
    )
    .unwrap();

    let plug = engine.submit(coverage("plug", QueryClass::Interactive, None)).unwrap();
    await_condition("worker parked in plug decode", || opens.load(Ordering::SeqCst) >= 1);

    // One victim fits the queue; its deadline will expire while it waits.
    let deadline = clock.now() + Duration::from_millis(5);
    let queued = engine.submit(coverage("victim", QueryClass::Interactive, Some(deadline))).unwrap();

    // The rest of the burst is rejected at admission, typed and hinted.
    for _ in 0..6 {
        match engine.submit(coverage("victim", QueryClass::Interactive, None)) {
            Err(e @ QueryError::Overloaded { retry_after }) => {
                // Queue depth 1 → unit × (1 + 1).
                assert_eq!(retry_after, Duration::from_millis(2));
                assert!(e.is_retryable());
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    clock.advance(Duration::from_millis(6));
    gate.release();
    assert!(plug.wait().outcome.is_ok());
    assert!(matches!(
        queued.wait().outcome,
        Err(QueryError::Shed { reason: ShedReason::ExpiredInQueue, .. })
    ));

    // Of eight offered requests, only the plug ever reached the store.
    assert_eq!(engine.store().counters().decodes, 1, "victim must never be decoded");
    assert_eq!(opens.load(Ordering::SeqCst), 1);
    let stats = engine.drain();
    assert_eq!(stats.rejected, 6);
    assert_eq!(stats.shed_expired_in_queue, 1);
    assert_eq!(stats.completed, 1);
}

/// Requests accepted by an overloaded engine convert byte-for-byte like
/// the same requests on an idle engine.
#[test]
fn accepted_requests_are_byte_identical_to_unloaded_run() {
    let dir = tempfile::tempdir().unwrap();
    let names = ["d0", "d1", "d2"];
    for (i, name) in names.iter().enumerate() {
        let starts: Vec<i64> = (0..6).map(|k| 100 * (i as i64 + 1) + 37 * k).collect();
        write_shard(dir.path(), name, &starts);
    }
    let out_loaded = tempfile::tempdir().unwrap();
    let out_ref = tempfile::tempdir().unwrap();
    let convert_req = |i: usize, root: &std::path::Path| QueryRequest {
        dataset: names[i % names.len()].into(),
        region: "chr1:1-100000".into(),
        kind: QueryKind::Convert {
            format: TargetFormat::Bed,
            out_dir: root.join(i.to_string()),
        },
        deadline: None,
        class: if i.is_multiple_of(3) { QueryClass::Batch } else { QueryClass::Interactive },
    };

    // Overloaded run: every decode is gated until the whole burst has
    // been submitted, so the tiny queues are guaranteed to overflow.
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let gate = Arc::new(Gate::default());
    let g = Arc::clone(&gate);
    let opener: Box<SourceOpener> = Box::new(move |path| {
        if path.extension().is_some_and(|e| e == "bamx") {
            g.wait();
        }
        Ok(Box::new(std::fs::File::open(path)?))
    });
    let store = ShardStore::open_with(dir.path(), 4, Arc::clone(&clock), RetryPolicy::default())
        .unwrap()
        .with_segments(4)
        .with_opener(opener);
    let engine = QueryEngine::with_store(
        Arc::new(store),
        EngineConfig { workers: 2, queue_capacity: 2, ..EngineConfig::default() },
        Arc::clone(&clock),
    )
    .unwrap();

    const BURST: usize = 32;
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for i in 0..BURST {
        match engine.submit(convert_req(i, out_loaded.path())) {
            Ok(ticket) => accepted.push((i, ticket)),
            Err(QueryError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert!(rejected > 0, "the burst must actually overload the engine");
    gate.release();

    let mut outputs = Vec::new();
    for (i, ticket) in accepted {
        match ticket.wait().outcome {
            Ok(QueryOutcome::Converted { output, .. }) => outputs.push((i, output)),
            other => panic!("accepted request {i} must complete, got {other:?}"),
        }
    }
    engine.drain();

    // Idle reference run over the same shard dir, same request indices.
    let ref_engine = QueryEngine::new(
        dir.path(),
        EngineConfig { workers: 1, queue_capacity: BURST, ..EngineConfig::default() },
    )
    .unwrap();
    for (i, loaded_path) in &outputs {
        let ticket = ref_engine.submit(convert_req(*i, out_ref.path())).unwrap();
        let Ok(QueryOutcome::Converted { output, .. }) = ticket.wait().outcome else {
            panic!("reference request {i} failed");
        };
        let loaded = std::fs::read(loaded_path).unwrap();
        let reference = std::fs::read(output).unwrap();
        assert_eq!(loaded, reference, "request {i}: bytes diverged under load");
    }
    ref_engine.drain();
}
