//! Concurrency battery for the segmented [`ShardStore`] (DESIGN.md §11).
//!
//! Two layers of proof:
//!
//! * A **proptest equivalence oracle**: for arbitrary access sequences,
//!   capacities, and segment counts, the segmented cache behaves
//!   exactly like a reference model of the classic single-lock LRU
//!   applied per segment under a global budget — hit/miss/eviction
//!   counts (global *and* per-segment-sum), final occupancy, and the
//!   record content of every served shard. With one segment the model
//!   *is* the old single-lock LRU, so the old semantics are preserved
//!   verbatim.
//! * **Thread hammers**: 1..=8 threads over shared stores, asserting no
//!   lost decodes (every lookup succeeds with the right bytes), no
//!   duplicate decodes (with capacity ≥ datasets, each shard file is
//!   opened exactly once no matter the interleaving), and that the
//!   per-segment counters always sum to the global totals.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use ngs_bamx::{write_bamx_file, Baix, BamxCompression, BamxFile};
use ngs_formats::header::{ReferenceSequence, SamHeader};
use ngs_formats::sam;
use ngs_query::store::SourceOpener;
use ngs_query::{CachedShard, ShardStore};
use proptest::prelude::*;

/// Writes `NAME.bamx` + `NAME.baix` under `dir` with one 10-bp chr1
/// record per 1-based start in `starts` (mirror of the crate-private
/// `testutil::write_shard`).
fn write_shard(dir: &Path, name: &str, starts: &[i64]) {
    let header = SamHeader::from_references(vec![ReferenceSequence {
        name: b"chr1".to_vec(),
        length: 100_000,
    }]);
    let records: Vec<_> = starts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let line = format!("r{i}\t0\tchr1\t{p}\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII");
            sam::parse_record(line.as_bytes(), 1).unwrap()
        })
        .collect();
    let bamx_path = dir.join(format!("{name}.bamx"));
    write_bamx_file(&bamx_path, &header, &records, BamxCompression::Plain).unwrap();
    let baix = Baix::build(&BamxFile::open(&bamx_path).unwrap()).unwrap();
    baix.save(dir.join(format!("{name}.baix"))).unwrap();
}

/// The 1-based starts dataset `i` was written with: distinct per
/// dataset, so served bytes identify their dataset unambiguously.
fn starts_of(i: usize) -> Vec<i64> {
    (0..=i as i64).map(|k| 100 * (i as i64 + 1) + 10 * k).collect()
}

/// Decodes every record of a served shard back to 1-based starts — the
/// content-identity probe (same decoded bytes ⇒ same starts, and the
/// fixtures make starts unique per dataset).
fn served_starts(shard: &CachedShard) -> Vec<i64> {
    shard
        .bamx
        .read_range(0, shard.bamx.len())
        .unwrap()
        .iter()
        .map(|r| r.pos)
        .collect()
}

const DATASETS: usize = 6;

/// One shared fixture directory for every proptest case (building BAMX
/// shards per case would dominate the suite's runtime).
fn fixture_dir() -> &'static Path {
    static DIR: OnceLock<tempfile::TempDir> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = tempfile::tempdir().unwrap();
        for i in 0..DATASETS {
            write_shard(dir.path(), &format!("d{i}"), &starts_of(i));
        }
        dir
    })
    .path()
}

/// Reference model: the classic single-lock LRU applied per segment
/// under a global budget — the specified semantics of the segmented
/// store for any serialized access sequence.
struct Model {
    /// Per segment: name → last-use stamp.
    segments: Vec<HashMap<String, u64>>,
    ticks: Vec<u64>,
    capacity: usize,
    occupancy: usize,
    hits: Vec<u64>,
    misses: Vec<u64>,
    evictions: Vec<u64>,
}

impl Model {
    fn new(capacity: usize, segments: usize) -> Self {
        Model {
            segments: (0..segments).map(|_| HashMap::new()).collect(),
            ticks: vec![0; segments],
            capacity: capacity.max(1),
            occupancy: 0,
            hits: vec![0; segments],
            misses: vec![0; segments],
            evictions: vec![0; segments],
        }
    }

    /// Serialized lookup; returns the predicted hit flag.
    fn access(&mut self, seg: usize, name: &str) -> bool {
        self.ticks[seg] += 1;
        let tick = self.ticks[seg];
        if let Some(stamp) = self.segments[seg].get_mut(name) {
            *stamp = tick;
            self.hits[seg] += 1;
            return true;
        }
        self.misses[seg] += 1;
        self.ticks[seg] += 1; // admit() stamps with a fresh tick
        let tick = self.ticks[seg];
        self.segments[seg].insert(name.to_string(), tick);
        self.occupancy += 1;
        while self.occupancy > self.capacity && self.segments[seg].len() > 1 {
            let victim = self.segments[seg]
                .iter()
                .min_by_key(|(_, stamp)| **stamp)
                .map(|(k, _)| k.clone())
                .unwrap();
            self.segments[seg].remove(&victim);
            self.occupancy -= 1;
            self.evictions[seg] += 1;
        }
        false
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equivalence oracle: for arbitrary serialized access sequences,
    /// the segmented store matches the reference LRU model — hit flags,
    /// served content, global counters, per-segment counters, and
    /// occupancy. One segment is exactly the old single-lock semantics.
    #[test]
    fn segmented_store_matches_single_lock_lru_model(
        accesses in proptest::collection::vec(0usize..DATASETS, 0..60),
        capacity in 1usize..=4,
        segments in 1usize..=4,
    ) {
        let store = ShardStore::open(fixture_dir(), capacity)
            .unwrap()
            .with_segments(segments);
        let mut model = Model::new(capacity, segments);
        for &i in &accesses {
            let name = format!("d{i}");
            let seg = store.segment_index(&name);
            prop_assert!(seg < segments);
            let expect_hit = model.access(seg, &name);
            let (shard, hit) = store.get(&name).unwrap();
            prop_assert_eq!(hit, expect_hit, "hit flag diverged on {}", name);
            prop_assert_eq!(served_starts(&shard), starts_of(i), "served bytes diverged");
        }
        let totals = store.counters();
        let (mut hits, mut misses, mut evictions) = (0, 0, 0);
        for seg in 0..segments {
            let c = store.segment_counters(seg);
            prop_assert_eq!(c.hits, model.hits[seg], "segment {} hits", seg);
            prop_assert_eq!(c.misses, model.misses[seg], "segment {} misses", seg);
            prop_assert_eq!(c.evictions, model.evictions[seg], "segment {} evictions", seg);
            hits += c.hits;
            misses += c.misses;
            evictions += c.evictions;
        }
        prop_assert_eq!(hits, totals.hits, "per-segment hits must sum to the global total");
        prop_assert_eq!(misses, totals.misses);
        prop_assert_eq!(evictions, totals.evictions);
        prop_assert_eq!(totals.hits + totals.misses, accesses.len() as u64);
        prop_assert_eq!(store.cached(), model.occupancy);
        // Serialized lookups never coalesce; every miss decodes once.
        prop_assert_eq!(totals.coalesced, 0);
        prop_assert_eq!(totals.decodes, totals.misses);
    }
}

/// Deterministic per-thread access plan (no RNG, no clock): thread `t`
/// walks the datasets with a stride coprime to their count.
fn plan(thread: usize, len: usize) -> Vec<usize> {
    (0..len).map(|i| (thread * 7 + i * 5 + i / DATASETS) % DATASETS).collect()
}

#[test]
fn threads_1_to_8_serve_identical_bytes_and_consistent_counters() {
    // Small capacity forces eviction churn *while* threads race; the
    // store must still serve every lookup with the right bytes, keep
    // hits + misses == lookups, and keep per-segment sums == totals.
    for threads in 1..=8usize {
        let store = Arc::new(
            ShardStore::open(fixture_dir(), 2).unwrap().with_segments(4),
        );
        let per_thread = 64usize;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in plan(t, per_thread) {
                        let (shard, _) = store.get(&format!("d{i}")).unwrap();
                        assert_eq!(served_starts(&shard), starts_of(i), "lost or corrupt decode");
                    }
                });
            }
        });
        let totals = store.counters();
        assert_eq!(
            totals.hits + totals.misses,
            (threads * per_thread) as u64,
            "every lookup is exactly one hit or one miss ({threads} threads)"
        );
        let (mut hits, mut misses, mut evictions) = (0, 0, 0);
        for seg in 0..store.segment_count() {
            let c = store.segment_counters(seg);
            hits += c.hits;
            misses += c.misses;
            evictions += c.evictions;
        }
        assert_eq!(hits, totals.hits);
        assert_eq!(misses, totals.misses);
        assert_eq!(evictions, totals.evictions);
        // The global budget holds up to the documented bounded overage.
        assert!(
            store.cached() < 2 + store.segment_count(),
            "occupancy {} exceeds budget + overage",
            store.cached()
        );
    }
}

#[test]
fn eight_thread_hammer_has_no_lost_or_duplicate_decodes() {
    // Capacity ≥ datasets ⇒ nothing is ever evicted, so "each shard
    // file opened exactly once" is the no-duplicate-decode invariant,
    // and it must hold under any 8-thread interleaving thanks to
    // single-flight coalescing of concurrent misses.
    let dir = tempfile::tempdir().unwrap();
    for i in 0..DATASETS {
        write_shard(dir.path(), &format!("d{i}"), &starts_of(i));
    }
    let opens: Arc<Mutex<HashMap<PathBuf, u32>>> = Arc::default();
    let counted = Arc::clone(&opens);
    let opener: Box<SourceOpener> = Box::new(move |path| {
        *counted.lock().unwrap().entry(path.to_path_buf()).or_insert(0) += 1;
        Ok(Box::new(std::fs::File::open(path)?))
    });
    let store = Arc::new(
        ShardStore::open(dir.path(), DATASETS)
            .unwrap()
            .with_segments(4)
            .with_opener(opener),
    );
    let threads = 8usize;
    let per_thread = 200usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in plan(t, per_thread) {
                    // No lost decodes: every lookup must succeed.
                    let (shard, _) = store.get(&format!("d{i}")).unwrap();
                    assert_eq!(served_starts(&shard), starts_of(i));
                }
            });
        }
    });
    let opens = opens.lock().unwrap();
    assert_eq!(opens.len(), DATASETS * 2, "every .bamx and .baix was touched");
    for (path, count) in opens.iter() {
        assert_eq!(*count, 1, "duplicate decode of {}", path.display());
    }
    let totals = store.counters();
    assert_eq!(totals.decodes, DATASETS as u64, "one decode per cold dataset");
    assert_eq!(totals.misses, DATASETS as u64);
    assert_eq!(totals.evictions, 0);
    assert_eq!(
        totals.hits + totals.misses,
        (threads * per_thread) as u64,
        "no lookup lost, none double-counted"
    );
    assert_eq!(store.cached(), DATASETS);
}
