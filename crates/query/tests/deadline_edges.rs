//! Deadline edge cases on a `ManualClock` (DESIGN.md §13).
//!
//! Every test here is exact — the clock only moves when the test moves
//! it, so deadline comparisons, shed decisions, and queue-wait
//! measurements have single correct answers:
//!
//! * a deadline that expires **while queued** sheds at dequeue, before
//!   any decode work (the store's decode counter proves it);
//! * a request dequeued **exactly at** its deadline tick still executes
//!   (deadline-inclusive);
//! * a request already expired at admission is shed there, with the
//!   exact depth-derived `retry_after`;
//! * the queue-wait histogram records the *per-request* submit→dequeue
//!   interval on the injected clock, pinned to its exact log2 bucket —
//!   the regression gate for the old backlog-drain measurement, whose
//!   percentiles were a constant of the plan size.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ngs_bamx::{write_bamx_file, Baix, BamxCompression, BamxFile};
use ngs_formats::header::{ReferenceSequence, SamHeader};
use ngs_formats::sam;
use ngs_obs::Registry;
use ngs_query::store::SourceOpener;
use ngs_query::{
    Clock, EngineConfig, ManualClock, QueryEngine, QueryError, QueryKind, QueryRequest,
    RetryPolicy, ShardStore, ShedReason,
};

fn write_shard(dir: &std::path::Path, name: &str, starts: &[i64]) {
    let header = SamHeader::from_references(vec![ReferenceSequence {
        name: b"chr1".to_vec(),
        length: 100_000,
    }]);
    let records: Vec<_> = starts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let line = format!("{name}{i}\t0\tchr1\t{p}\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII");
            sam::parse_record(line.as_bytes(), 1).unwrap()
        })
        .collect();
    let bamx_path = dir.join(format!("{name}.bamx"));
    write_bamx_file(&bamx_path, &header, &records, BamxCompression::Plain).unwrap();
    let baix = Baix::build(&BamxFile::open(&bamx_path).unwrap()).unwrap();
    baix.save(dir.join(format!("{name}.baix"))).unwrap();
}

/// A latch the test opens once the worker is provably parked inside the
/// gated decode.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

fn await_condition(what: &str, cond: impl Fn() -> bool) {
    for _ in 0..10_000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    panic!("timed out waiting for: {what}");
}

fn coverage(dataset: &str, deadline: Option<Duration>) -> QueryRequest {
    QueryRequest {
        dataset: dataset.into(),
        region: "chr1:1-5000".into(),
        kind: QueryKind::Coverage { bin_size: 100 },
        deadline,
        class: Default::default(),
    }
}

/// Opener that gates decodes of `gated` (by dataset stem) and counts
/// every `.bamx` open.
fn gated_opener(gate: Arc<Gate>, gated: &'static str, opens: Arc<AtomicU32>) -> Box<SourceOpener> {
    Box::new(move |path| {
        if path.extension().is_some_and(|e| e == "bamx") {
            opens.fetch_add(1, Ordering::SeqCst);
            if path.file_stem().is_some_and(|s| s == gated) {
                gate.wait();
            }
        }
        Ok(Box::new(std::fs::File::open(path)?))
    })
}

fn engine_with_gate(
    dir: &std::path::Path,
    clock: &Arc<ManualClock>,
    registry: &Arc<Registry>,
    gate: Arc<Gate>,
    gated: &'static str,
    opens: Arc<AtomicU32>,
    config: EngineConfig,
) -> QueryEngine {
    let store = ShardStore::open_with(dir, 4, clock.clone(), RetryPolicy::default())
        .unwrap()
        .with_segments(config.segments.max(1))
        .with_opener(gated_opener(gate, gated, opens));
    let config = EngineConfig { obs: Some(Arc::clone(registry)), ..config };
    QueryEngine::with_store(Arc::new(store), config, clock.clone()).unwrap()
}

/// The deadline passes while the request waits behind a stuck worker:
/// the request is shed at dequeue with `ExpiredInQueue`, and its
/// dataset is **never decoded** — shed-before-decode, observed through
/// the store's decode counter.
#[test]
fn expire_while_queued_sheds_before_any_decode() {
    let dir = tempfile::tempdir().unwrap();
    write_shard(dir.path(), "plug", &[100, 200]);
    write_shard(dir.path(), "victim", &[300, 400]);

    let clock = Arc::new(ManualClock::new());
    let registry = Arc::new(Registry::new());
    let gate = Arc::new(Gate::default());
    let opens = Arc::new(AtomicU32::new(0));
    let engine = engine_with_gate(
        dir.path(),
        &clock,
        &registry,
        Arc::clone(&gate),
        "plug",
        Arc::clone(&opens),
        EngineConfig { workers: 1, queue_capacity: 4, ..EngineConfig::default() },
    );

    // The worker picks up the plug and parks inside its decode.
    let plug = engine.submit(coverage("plug", None)).unwrap();
    await_condition("worker parked in plug decode", || opens.load(Ordering::SeqCst) >= 1);

    // The victim is admitted with 10 ms of slack ... which then expires
    // while it waits in the queue.
    let deadline = clock.now() + Duration::from_millis(10);
    let victim = engine.submit(coverage("victim", Some(deadline))).unwrap();
    clock.advance(Duration::from_millis(11));
    gate.release();

    let response = victim.wait();
    match response.outcome {
        Err(QueryError::Shed { reason: ShedReason::ExpiredInQueue, retry_after }) => {
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected in-queue shed, got {other:?}"),
    }
    assert!(plug.wait().outcome.is_ok());

    // Exactly one dataset was ever decoded: the plug. The shed victim
    // produced zero store work.
    assert_eq!(engine.store().counters().decodes, 1);
    let stats = engine.drain();
    assert_eq!(stats.shed_expired_in_queue, 1);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.goodput_completed, 1, "the undeadlined plug still counts as goodput");
}

/// Deadline-inclusive semantics: a request whose deadline equals the
/// clock *now* — at admission and at dequeue — executes normally and
/// counts toward goodput.
#[test]
fn dequeue_exactly_at_deadline_tick_executes() {
    let dir = tempfile::tempdir().unwrap();
    write_shard(dir.path(), "d", &[100, 200, 300]);

    let clock = Arc::new(ManualClock::new());
    let store =
        ShardStore::open_with(dir.path(), 4, clock.clone(), RetryPolicy::default()).unwrap();
    let engine = QueryEngine::with_store(
        Arc::new(store),
        EngineConfig { workers: 1, queue_capacity: 4, ..EngineConfig::default() },
        clock.clone(),
    )
    .unwrap();

    // The clock never moves, so the request is admitted, dequeued, and
    // finished all exactly at its deadline tick.
    let deadline = clock.now();
    let ticket = engine.submit(coverage("d", Some(deadline))).unwrap();
    assert!(ticket.wait().outcome.is_ok(), "deadline == now must still execute");
    let stats = engine.drain();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.deadline_missed, 0);
    assert_eq!(stats.goodput_completed, 1, "finished_at == deadline is within deadline");
}

/// A request already expired at admission is shed there — typed, with
/// the exact depth-derived `retry_after`, and without ever reaching the
/// store.
#[test]
fn expired_at_admission_is_shed_with_exact_retry_after() {
    let dir = tempfile::tempdir().unwrap();
    write_shard(dir.path(), "d", &[100]);

    let clock = Arc::new(ManualClock::new());
    let store =
        ShardStore::open_with(dir.path(), 4, clock.clone(), RetryPolicy::default()).unwrap();
    let engine = QueryEngine::with_store(
        Arc::new(store),
        EngineConfig {
            workers: 0,
            queue_capacity: 4,
            shed_retry_unit: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        clock.clone(),
    )
    .unwrap();

    clock.advance(Duration::from_nanos(1));
    let err = engine.submit(coverage("d", Some(Duration::ZERO))).unwrap_err();
    match err {
        QueryError::Shed { reason: ShedReason::Expired, retry_after } => {
            // Empty interactive queue: retry_after = unit × (0 + 1).
            assert_eq!(retry_after, Duration::from_millis(1));
        }
        other => panic!("expected admission shed, got {other:?}"),
    }
    assert!(err.is_retryable());
    assert_eq!(engine.store().counters().decodes, 0);
    let stats = engine.drain();
    assert_eq!(stats.shed_expired, 1);
    assert_eq!(stats.submitted, 0, "a shed request is not admitted traffic");
}

/// Queue-wait regression gate: the histogram records each request's own
/// submit→dequeue interval on the injected clock — an exactly known
/// 1024 ns wait lands in exactly log2 bucket 11 (upper bound 2047 ns).
/// The old measurement (drain time of a submit-everything backlog)
/// pinned every percentile to a plan-size constant; this test fails if
/// that ever comes back.
#[test]
fn queue_wait_histogram_places_exact_bucket() {
    let dir = tempfile::tempdir().unwrap();
    write_shard(dir.path(), "plug", &[100, 200]);
    write_shard(dir.path(), "v", &[300, 400]);

    let clock = Arc::new(ManualClock::new());
    let registry = Arc::new(Registry::new());
    let gate = Arc::new(Gate::default());
    let opens = Arc::new(AtomicU32::new(0));
    let engine = engine_with_gate(
        dir.path(),
        &clock,
        &registry,
        Arc::clone(&gate),
        "plug",
        Arc::clone(&opens),
        EngineConfig { workers: 1, queue_capacity: 4, ..EngineConfig::default() },
    );

    // Plug dequeues at t=0 (zero wait, bucket 0) and parks; the victim
    // waits exactly 1024 ns of manual time before the worker frees up.
    let plug = engine.submit(coverage("plug", None)).unwrap();
    await_condition("worker parked in plug decode", || opens.load(Ordering::SeqCst) >= 1);
    let victim = engine.submit(coverage("v", None)).unwrap();
    clock.advance(Duration::from_nanos(1024));
    gate.release();
    assert!(plug.wait().outcome.is_ok());
    assert!(victim.wait().outcome.is_ok());

    let hist = &registry.snapshot().histograms["query.queue_wait_ns"];
    assert_eq!(hist.count, 2);
    assert_eq!(hist.buckets[0], 1, "plug waited exactly zero ticks");
    assert_eq!(
        hist.buckets[ngs_obs::bucket_index(1024)],
        1,
        "a 1024 ns wait must land in its exact log2 bucket"
    );
    assert_eq!(hist.quantile(1.0), 2047, "log2 upper bound of the 1024 ns bucket");
}
