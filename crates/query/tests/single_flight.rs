//! Single-flight determinism proof (DESIGN.md §11): concurrent misses
//! on one cold shard coalesce into exactly one decode, every waiter
//! receives the *shared* `Arc` payload, and a failed in-flight decode
//! broadcasts its typed error to all waiters without poisoning the key.
//!
//! The decode path is gated behind an injected blocking opener, so the
//! test controls exactly when the leader's open completes — K requesters
//! are provably parked on the in-flight entry (the `coalesced` counter
//! says so) before the decode is allowed to finish.

use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ngs_bamx::{write_bamx_file, Baix, BamxCompression, BamxFile};
use ngs_formats::header::{ReferenceSequence, SamHeader};
use ngs_formats::sam;
use ngs_query::store::SourceOpener;
use ngs_query::{ManualClock, RetryPolicy, ShardStore};

fn write_shard(dir: &Path, name: &str, starts: &[i64]) {
    let header = SamHeader::from_references(vec![ReferenceSequence {
        name: b"chr1".to_vec(),
        length: 100_000,
    }]);
    let records: Vec<_> = starts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let line = format!("r{i}\t0\tchr1\t{p}\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII");
            sam::parse_record(line.as_bytes(), 1).unwrap()
        })
        .collect();
    let bamx_path = dir.join(format!("{name}.bamx"));
    write_bamx_file(&bamx_path, &header, &records, BamxCompression::Plain).unwrap();
    let baix = Baix::build(&BamxFile::open(&bamx_path).unwrap()).unwrap();
    baix.save(dir.join(format!("{name}.baix"))).unwrap();
}

/// A latch the test opens once all waiters are provably parked.
#[derive(Default)]
struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut open = self.open.lock().unwrap();
        while !*open {
            open = self.cv.wait(open).unwrap();
        }
    }

    fn release(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

/// Spins until `cond` holds (bounded, so a regression fails instead of
/// hanging the suite).
fn await_condition(what: &str, cond: impl Fn() -> bool) {
    for _ in 0..10_000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    panic!("timed out waiting for: {what}");
}

const K: usize = 8;

#[test]
fn k_concurrent_cold_requests_coalesce_into_one_decode() {
    let dir = tempfile::tempdir().unwrap();
    write_shard(dir.path(), "d", &[100, 200, 300]);

    let gate = Arc::new(Gate::default());
    let bamx_opens = Arc::new(AtomicU32::new(0));
    let (g, opens) = (Arc::clone(&gate), Arc::clone(&bamx_opens));
    let opener: Box<SourceOpener> = Box::new(move |path| {
        if path.extension().is_some_and(|e| e == "bamx") {
            opens.fetch_add(1, Ordering::SeqCst);
            // Block the decode until the test has verified that every
            // other requester is parked on the in-flight entry.
            g.wait();
        }
        Ok(Box::new(std::fs::File::open(path)?))
    });
    let store = Arc::new(
        ShardStore::open(dir.path(), 4)
            .unwrap()
            .with_segments(4)
            .with_opener(opener),
    );

    let shards = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let store = Arc::clone(&store);
                scope.spawn(move || store.get("d").unwrap())
            })
            .collect();
        // Exactly one requester reached the opener (the leader)...
        await_condition("leader inside the gated open", || {
            bamx_opens.load(Ordering::SeqCst) == 1
        });
        // ...and the other K-1 are parked on its in-flight entry.
        await_condition("K-1 waiters coalesced", || {
            store.counters().coalesced == (K - 1) as u64
        });
        gate.release();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });

    // Exactly one decode no matter how many requesters raced for it.
    let c = store.counters();
    assert_eq!(c.decodes, 1, "single-flight must deduplicate the decode");
    assert_eq!(bamx_opens.load(Ordering::SeqCst), 1);
    assert_eq!(c.misses, 1, "only the leader is a miss");
    assert_eq!(c.hits, (K - 1) as u64, "waiters count as hits");
    assert_eq!(c.coalesced, (K - 1) as u64);

    // Every response shares the same Arc payload — zero-copy fan-out.
    let (leader_shard, _) = &shards[0];
    for (shard, _) in &shards {
        assert!(
            Arc::ptr_eq(&shard.bamx, &leader_shard.bamx),
            "responses must share one decoded BAMX"
        );
        assert!(Arc::ptr_eq(&shard.baix, &leader_shard.baix));
    }
    assert_eq!(leader_shard.bamx.len(), 3);
    // Exactly one of the K lookups reported itself as the decode miss.
    assert_eq!(shards.iter().filter(|(_, hit)| !hit).count(), 1);
}

#[test]
fn failed_inflight_decode_broadcasts_typed_error_without_poisoning() {
    let dir = tempfile::tempdir().unwrap();
    write_shard(dir.path(), "d", &[100, 200]);

    let gate = Arc::new(Gate::default());
    let bamx_opens = Arc::new(AtomicU32::new(0));
    let (g, opens) = (Arc::clone(&gate), Arc::clone(&bamx_opens));
    let opener: Box<SourceOpener> = Box::new(move |path| {
        if path.extension().is_some_and(|e| e == "bamx") {
            let call = opens.fetch_add(1, Ordering::SeqCst);
            if call == 0 {
                // The in-flight decode everyone coalesced on: hold it
                // until the waiters are parked, then fail transiently.
                g.wait();
                return Err(std::io::Error::other("injected transient open failure"));
            }
        }
        Ok(Box::new(std::fs::File::open(path)?))
    });
    let clock = Arc::new(ManualClock::new());
    let policy = RetryPolicy {
        attempts: 1, // no in-call retry: the gated failure is the outcome
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_secs(1),
    };
    let store = Arc::new(
        ShardStore::open_with(dir.path(), 4, clock.clone(), policy)
            .unwrap()
            .with_segments(4)
            .with_opener(opener),
    );

    let errors = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let store = Arc::clone(&store);
                scope.spawn(move || store.get("d").unwrap_err())
            })
            .collect();
        await_condition("leader inside the gated open", || {
            bamx_opens.load(Ordering::SeqCst) == 1
        });
        await_condition("K-1 waiters coalesced", || {
            store.counters().coalesced == (K - 1) as u64
        });
        gate.release();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });

    // All K requesters got the typed, still-transient error; the opener
    // ran once (one decode attempt, shared by everyone).
    assert_eq!(errors.len(), K);
    for e in &errors {
        assert!(e.is_transient(), "waiters must see the transient classification: {e}");
        assert!(e.to_string().contains("injected transient open failure"), "got: {e}");
    }
    assert_eq!(bamx_opens.load(Ordering::SeqCst), 1);
    let c = store.counters();
    assert_eq!(c.decodes, 1);
    assert_eq!((c.hits, c.misses), (0, 0), "a failed open is neither hit nor miss");
    assert!(!store.is_quarantined("d"), "transient failure must not quarantine");

    // The key is not poisoned: the backoff window (normal transient
    // bookkeeping) gates immediately-following lookups...
    let err = store.get("d").unwrap_err();
    assert!(err.to_string().contains("backing off"), "got: {err}");
    assert_eq!(store.counters().backoff_rejections, 1);
    assert_eq!(bamx_opens.load(Ordering::SeqCst), 1, "backoff never touches the disk");
    // ...and once it passes, a fresh lookup decodes successfully — a
    // new in-flight entry, not the stale failed one.
    clock.advance(Duration::from_millis(10));
    let (shard, hit) = store.get("d").unwrap();
    assert!(!hit);
    assert_eq!(shard.bamx.len(), 2);
    assert_eq!(bamx_opens.load(Ordering::SeqCst), 2);
    let c = store.counters();
    assert_eq!(c.decodes, 2);
    assert_eq!((c.hits, c.misses), (0, 1));
}
