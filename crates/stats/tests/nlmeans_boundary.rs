//! Partition-boundary suite for distributed NL-means, mirroring the BAIX
//! boundary tests: every degenerate chunk/halo interaction must stay
//! bit-identical to the sequential pass. The halo relay (see
//! `nlmeans.rs` step 2) is what makes the narrow-chunk cases hold —
//! before it, a chunk narrower than `r + l` starved its neighbour of
//! context and the outputs diverged near partition edges.

use ngs_stats::{nlmeans_distributed, nlmeans_sequential, NlMeansParams};

/// Deterministic coverage-like signal with sharp features near the ends,
/// so boundary mistakes actually change the output.
fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            5.0 + 20.0 * (-(x - 3.0).powi(2) / 10.0).exp()
                + 15.0 * (-(x - (n as f64 - 4.0)).powi(2) / 6.0).exp()
                + (i as f64 * 0.7).sin()
        })
        .collect()
}

fn params(r: usize, l: usize) -> NlMeansParams {
    NlMeansParams { search_radius: r, half_patch: l, sigma: 4.0 }
}

/// Asserts distributed == sequential, bit for bit.
fn assert_identical(data: &[f64], p: &NlMeansParams, ranks: usize) {
    let seq = nlmeans_sequential(data, p);
    let dist = nlmeans_distributed(data, p, ranks);
    assert_eq!(dist, seq, "{ranks} ranks, r={} l={} n={}", p.search_radius, p.half_patch, data.len());
}

#[test]
fn chunk_exactly_halo_wide() {
    // halo = 8+4 = 12; 5 ranks over 60 points → chunks of exactly 12.
    assert_identical(&signal(60), &params(8, 4), 5);
}

#[test]
fn chunk_one_narrower_than_halo() {
    // halo = 12; 5 ranks over 55 points → chunks of 11 — one bin short,
    // the first size where a rank's own edge no longer suffices.
    assert_identical(&signal(55), &params(8, 4), 5);
}

#[test]
fn chunks_much_narrower_than_halo() {
    // halo = 35 spans several chunks: context must relay across ranks.
    let data = signal(120);
    let p = params(20, 15);
    for ranks in [2, 3, 7, 12] {
        assert_identical(&data, &p, ranks);
    }
}

#[test]
fn halo_wider_than_whole_array() {
    // Every point's window covers the entire histogram; each rank needs
    // all other chunks as context.
    assert_identical(&signal(30), &params(40, 10), 6);
}

#[test]
fn single_bin_chunks() {
    // One bin per rank — the extreme relay chain.
    assert_identical(&signal(9), &params(3, 2), 9);
}

#[test]
fn more_ranks_than_bins() {
    // Trailing ranks own empty chunks; they must still forward context
    // through the relay, not break the chain with empty halos.
    let data = signal(7);
    let p = params(4, 2);
    for ranks in [8, 13] {
        assert_identical(&data, &p, ranks);
    }
}

#[test]
fn two_ranks_asymmetric_split() {
    // n odd → left chunk one shorter than right; both directions of the
    // relay see different lengths.
    assert_identical(&signal(31), &params(10, 5), 2);
}

#[test]
fn zero_radius_and_zero_patch() {
    // r = 0 → identity transform; l = 0 → pointwise patches. Degenerate
    // parameters must not trip the halo arithmetic.
    let data = signal(40);
    assert_identical(&data, &params(0, 3), 4);
    assert_identical(&data, &params(5, 0), 4);
    assert_identical(&data, &params(0, 0), 4);
}

#[test]
fn rank_count_sweep_stays_identical() {
    // One mid-sized signal across every rank count from serial to
    // bin-per-rank: no partitioning may perturb the result.
    let data = signal(48);
    let p = params(6, 3);
    let seq = nlmeans_sequential(&data, &p);
    for ranks in 1..=48 {
        assert_eq!(nlmeans_distributed(&data, &p, ranks), seq, "{ranks} ranks");
    }
}
