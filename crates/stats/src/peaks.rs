//! Enriched-region ("peak") selection — the downstream purpose of the
//! paper's statistical module: Han et al.'s pipeline denoises the
//! histogram, chooses a threshold by FDR, then reports the regions whose
//! bins clear it.

use ngs_formats::bed::BedRecord;

use crate::fdr::{fdr_fused, FdrInput};
use crate::histogram::CoverageHistogram;

/// One enriched region in bin space plus summary stats.
#[derive(Debug, Clone, PartialEq)]
pub struct Peak {
    /// Chromosome name.
    pub chrom: Vec<u8>,
    /// 0-based start (bp).
    pub start: i64,
    /// 0-based exclusive end (bp).
    pub end: i64,
    /// Highest bin value inside the peak.
    pub summit_value: f64,
    /// Number of bins merged into this peak.
    pub bins: usize,
}

impl Peak {
    /// The peak as a BED6 record (score = summit, capped at 1000).
    pub fn to_bed(&self) -> BedRecord {
        BedRecord {
            chrom: self.chrom.clone(),
            start: self.start,
            end: self.end,
            name: b"peak".to_vec(),
            score: (self.summit_value.round() as i64).clamp(0, 1000),
            strand: b'.',
        }
    }
}

/// Selects the bins whose `p_i` (Eq. 4) clears `p_t`, i.e. bins where at
/// most `p_t` simulation rounds matched or exceeded the observation.
pub fn select_bins(input: &FdrInput, p_t: f64) -> Vec<bool> {
    (0..input.bins())
        .map(|i| {
            let p_i = input
                .simulations
                .iter()
                .filter(|sim| input.observed[i] <= sim[i])
                .count() as f64;
            p_i <= p_t
        })
        .collect()
}

/// Picks the loosest threshold in `candidates` whose estimated FDR stays
/// at or below `target_fdr`; `None` if none qualifies.
pub fn pick_threshold(input: &FdrInput, candidates: &[f64], target_fdr: f64) -> Option<f64> {
    let mut best: Option<f64> = None;
    for &t in candidates {
        let fdr = fdr_fused(input, t);
        if fdr.is_finite() && fdr <= target_fdr {
            best = Some(best.map_or(t, |b: f64| b.max(t)));
        }
    }
    best
}

/// Merges selected bins of a histogram into peaks, bridging gaps of up to
/// `max_gap` unselected bins (Han et al. merge nearby enriched windows).
pub fn call_peaks(
    histogram: &CoverageHistogram,
    selected: &[bool],
    max_gap: usize,
) -> Vec<Peak> {
    assert_eq!(selected.len(), histogram.len());
    let bin = histogram.bin_size as i64;
    let mut peaks = Vec::new();
    for (chrom, first_bin, n_bins) in &histogram.chroms {
        let mut i = 0usize;
        while i < *n_bins {
            if !selected[first_bin + i] {
                i += 1;
                continue;
            }
            // Extend the run, bridging small gaps.
            let run_start = i;
            let mut run_end = i + 1; // exclusive, in chromosome-local bins
            let mut gap = 0usize;
            let mut j = i + 1;
            while j < *n_bins {
                if selected[first_bin + j] {
                    run_end = j + 1;
                    gap = 0;
                } else {
                    gap += 1;
                    if gap > max_gap {
                        break;
                    }
                }
                j += 1;
            }
            let slice = &histogram.bins[first_bin + run_start..first_bin + run_end];
            let summit = slice.iter().cloned().fold(f64::MIN, f64::max);
            peaks.push(Peak {
                chrom: chrom.clone(),
                start: run_start as i64 * bin,
                end: run_end as i64 * bin,
                summit_value: summit,
                bins: run_end - run_start,
            });
            i = run_end + gap;
        }
    }
    peaks
}

/// Full pipeline step: select bins at `p_t`, merge into peaks, return
/// them as BED text.
pub fn peaks_to_bed(
    histogram: &CoverageHistogram,
    input: &FdrInput,
    p_t: f64,
    max_gap: usize,
) -> Vec<u8> {
    let selected = select_bins(input, p_t);
    let peaks = call_peaks(histogram, &selected, max_gap);
    let mut out = Vec::new();
    for p in &peaks {
        ngs_formats::bed::write_record(&p.to_bed(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{build_fdr_input, NullModel};
    use ngs_formats::header::{ReferenceSequence, SamHeader};

    fn histogram_with_peaks() -> CoverageHistogram {
        let header = SamHeader::from_references(vec![ReferenceSequence {
            name: b"chr1".to_vec(),
            length: 25 * 1000,
        }]);
        let mut h = CoverageHistogram::new(&header, 25);
        for (i, v) in h.bins.iter_mut().enumerate() {
            *v = if (100..110).contains(&i) || (500..520).contains(&i) { 50.0 } else { 2.0 };
        }
        h
    }

    #[test]
    fn peaks_found_at_enriched_bins() {
        let h = histogram_with_peaks();
        let input = build_fdr_input(h.bins.clone(), 20, NullModel::Poisson, 1);
        let selected = select_bins(&input, 0.0);
        let peaks = call_peaks(&h, &selected, 1);
        assert_eq!(peaks.len(), 2, "{peaks:?}");
        assert_eq!(peaks[0].start, 100 * 25);
        assert_eq!(peaks[0].end, 110 * 25);
        assert_eq!(peaks[1].start, 500 * 25);
        assert!((peaks[0].summit_value - 50.0).abs() < 1e-12);
    }

    #[test]
    fn gap_bridging_merges_split_runs() {
        let h = histogram_with_peaks();
        let mut selected = vec![false; h.len()];
        selected[100..105].fill(true);
        selected[107..110].fill(true); // 2-bin gap

        let no_bridge = call_peaks(&h, &selected, 0);
        assert_eq!(no_bridge.len(), 2);
        let bridged = call_peaks(&h, &selected, 2);
        assert_eq!(bridged.len(), 1);
        assert_eq!(bridged[0].start, 100 * 25);
        assert_eq!(bridged[0].end, 110 * 25);
    }

    #[test]
    fn threshold_picking() {
        let h = histogram_with_peaks();
        let input = build_fdr_input(h.bins.clone(), 20, NullModel::Poisson, 2);
        // p_t = 0 selects only bins never reached by simulation: the
        // spikes. Its FDR is tiny, so it must qualify at target 0.1.
        let picked = pick_threshold(&input, &[0.0, 1.0, 2.0], 0.1);
        assert!(picked.is_some());
        let selected = select_bins(&input, picked.unwrap());
        let n_selected = selected.iter().filter(|&&s| s).count();
        assert!((20..=60).contains(&n_selected), "selected {n_selected}");
    }

    #[test]
    fn bed_output_parses() {
        let h = histogram_with_peaks();
        let input = build_fdr_input(h.bins.clone(), 10, NullModel::Poisson, 3);
        let bed = peaks_to_bed(&h, &input, 0.0, 1);
        let mut count = 0;
        for line in bed.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let rec = ngs_formats::bed::parse_record(line).unwrap();
            assert_eq!(rec.chrom, b"chr1");
            assert!(rec.score > 0);
            count += 1;
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_selection_no_peaks() {
        let h = histogram_with_peaks();
        let selected = vec![false; h.len()];
        assert!(call_peaks(&h, &selected, 3).is_empty());
    }
}
