//! # ngs-stats
//!
//! The paper's statistical analysis module, parallelized over the
//! `ngs-cluster` rank runtime:
//!
//! * [`histogram`] — binned coverage histograms ("peaks") built from
//!   alignments or converter BEDGRAPH output, plus MSE/PSNR metrics;
//! * [`nlmeans`] — 1-D non-local means denoising (Section IV-A):
//!   sequential, rayon shared-memory, and the paper's halo-replicated
//!   distributed version, all bit-identical;
//! * [`fdr`] — false discovery rate computation (Section IV-B): the
//!   literal Eq. 4–6 form, the fused summation-permutation form
//!   (Eq. 7–9), Algorithm 2's single-reduction parallel version and the
//!   two-barrier ablation;
//! * [`mod@simulate`] — Poisson / permutation null models generating the
//!   simulation datasets FDR scores against.

pub mod fdr;
pub mod histogram;
pub mod nlmeans;
pub mod peaks;
pub mod simulate;
pub mod simulated;

pub use fdr::{fdr_curve, fdr_direct, fdr_fused, fdr_parallel, fdr_parallel_two_phase, FdrInput};
pub use histogram::{mse, psnr, BinnedCounts, CoverageHistogram};
pub use nlmeans::{nlmeans_distributed, nlmeans_rayon, nlmeans_sequential, NlMeansParams};
pub use peaks::{call_peaks, peaks_to_bed, pick_threshold, select_bins, Peak};
pub use simulate::{build_fdr_input, simulate, NullModel};
pub use simulated::{fdr_simulated, fdr_simulated_two_phase, nlmeans_simulated, SimTiming};
