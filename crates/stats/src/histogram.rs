//! Coverage histograms: the bridge between the converter and the
//! statistical analysis module.
//!
//! "The histogram is calculated by aligning multiple sequence reads to a
//! reference genome and accumulating the frequencies overlapped along the
//! genome segments into binned peaks" (Section IV). The paper's
//! experiments use 25 bp bins over 16 Mbp.

use ngs_formats::bedgraph::{self, BedGraphRecord};
use ngs_formats::error::{Error, Result};
use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;

/// A binned 1-D coverage histogram over one or more chromosomes,
/// concatenated into a single bin axis (the layout the paper's NL-means
/// and FDR steps operate on).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageHistogram {
    /// Bin width in base pairs (the paper uses 25).
    pub bin_size: u32,
    /// Peak value per bin.
    pub bins: Vec<f64>,
    /// Per-chromosome extents: `(name, first_bin, n_bins)`.
    pub chroms: Vec<(Vec<u8>, usize, usize)>,
    /// Name → index into `chroms` (accumulation is per-record hot).
    chrom_index: std::collections::HashMap<Vec<u8>, usize>,
}

impl CoverageHistogram {
    /// An empty histogram shaped by a header's reference dictionary.
    pub fn new(header: &SamHeader, bin_size: u32) -> Self {
        assert!(bin_size > 0);
        let mut chroms = Vec::with_capacity(header.references.len());
        let mut total = 0usize;
        for r in &header.references {
            let n = (r.length as usize).div_ceil(bin_size as usize);
            chroms.push((r.name.clone(), total, n));
            total += n;
        }
        let chrom_index =
            chroms.iter().enumerate().map(|(i, c)| (c.0.clone(), i)).collect();
        CoverageHistogram { bin_size, bins: vec![0.0; total], chroms, chrom_index }
    }

    /// Total number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when the histogram has no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Adds one alignment's reference span into the bins (each read
    /// contributes its overlap length in bases ÷ bin size, so a fully
    /// covered bin gains 1.0 per covering read).
    pub fn add_alignment(&mut self, rec: &AlignmentRecord) -> bool {
        let (Some(start), Some(end)) = (rec.start0(), rec.end0()) else {
            return false;
        };
        let Some(&(_, first_bin, n_bins)) =
            self.chrom_index.get(rec.rname.as_slice()).map(|&i| &self.chroms[i])
        else {
            return false;
        };
        let bs = self.bin_size as i64;
        let lo_bin = (start / bs).clamp(0, n_bins as i64 - 1) as usize;
        let hi_bin = ((end - 1) / bs).clamp(0, n_bins as i64 - 1) as usize;
        for bin in lo_bin..=hi_bin {
            let bin_start = bin as i64 * bs;
            let bin_end = bin_start + bs;
            let overlap = end.min(bin_end) - start.max(bin_start);
            if overlap > 0 {
                self.bins[first_bin + bin] += overlap as f64 / bs as f64;
            }
        }
        true
    }

    /// Builds a histogram from alignments.
    pub fn from_records<'a>(
        header: &SamHeader,
        bin_size: u32,
        records: impl IntoIterator<Item = &'a AlignmentRecord>,
    ) -> Self {
        let mut h = Self::new(header, bin_size);
        for r in records {
            h.add_alignment(r);
        }
        h
    }

    /// Accumulates BEDGRAPH text (as produced by the converter) into the
    /// histogram.
    pub fn add_bedgraph_text(&mut self, text: &[u8]) -> Result<u64> {
        let mut n = 0u64;
        for line in text.split(|&b| b == b'\n') {
            let line =
                if line.last() == Some(&b'\r') { &line[..line.len() - 1] } else { line };
            if line.is_empty() || line.starts_with(b"track") || line.starts_with(b"#") {
                continue;
            }
            let rec = bedgraph::parse_record(line)?;
            self.add_interval(&rec)?;
            n += 1;
        }
        Ok(n)
    }

    /// Accumulates one BEDGRAPH interval.
    pub fn add_interval(&mut self, rec: &BedGraphRecord) -> Result<()> {
        let Some(&(_, first_bin, n_bins)) =
            self.chrom_index.get(rec.chrom.as_slice()).map(|&i| &self.chroms[i])
        else {
            return Err(Error::UnknownReference(
                String::from_utf8_lossy(&rec.chrom).into_owned(),
            ));
        };
        let bs = self.bin_size as i64;
        if rec.end <= rec.start {
            return Ok(());
        }
        let lo_bin = (rec.start / bs).clamp(0, n_bins as i64 - 1) as usize;
        let hi_bin = ((rec.end - 1) / bs).clamp(0, n_bins as i64 - 1) as usize;
        for bin in lo_bin..=hi_bin {
            let bin_start = bin as i64 * bs;
            let bin_end = bin_start + bs;
            let overlap = rec.end.min(bin_end) - rec.start.max(bin_start);
            if overlap > 0 {
                self.bins[first_bin + bin] += rec.value * overlap as f64 / bs as f64;
            }
        }
        Ok(())
    }

    /// Builds a histogram directly from BEDGRAPH text without a header,
    /// inferring each chromosome's extent from the largest interval end
    /// observed (useful for standalone track files).
    pub fn from_bedgraph_auto(text: &[u8], bin_size: u32) -> Result<Self> {
        assert!(bin_size > 0);
        // Pass 1: chromosome extents in first-appearance order.
        let mut order: Vec<Vec<u8>> = Vec::new();
        let mut extents: Vec<i64> = Vec::new();
        let mut records = Vec::new();
        for line in text.split(|&b| b == b'\n') {
            let line =
                if line.last() == Some(&b'\r') { &line[..line.len() - 1] } else { line };
            if line.is_empty() || line.starts_with(b"track") || line.starts_with(b"#") {
                continue;
            }
            let rec = bedgraph::parse_record(line)?;
            match order.iter().position(|c| c == &rec.chrom) {
                Some(i) => extents[i] = extents[i].max(rec.end),
                None => {
                    order.push(rec.chrom.clone());
                    extents.push(rec.end);
                }
            }
            records.push(rec);
        }
        let refs: Vec<crate::histogram::RefExtent> = order
            .into_iter()
            .zip(extents)
            .map(|(name, end)| RefExtent { name, length: end.max(1) as u64 })
            .collect();
        let header = ngs_formats::header::SamHeader::from_references(
            refs.iter()
                .map(|r| ngs_formats::header::ReferenceSequence {
                    name: r.name.clone(),
                    length: r.length,
                })
                .collect(),
        );
        let mut h = Self::new(&header, bin_size);
        for rec in &records {
            h.add_interval(rec)?;
        }
        Ok(h)
    }

    /// Emits the histogram as BEDGRAPH text (one line per non-zero bin).
    pub fn to_bedgraph(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (name, first_bin, n_bins) in &self.chroms {
            for i in 0..*n_bins {
                let v = self.bins[first_bin + i];
                if v != 0.0 {
                    let rec = BedGraphRecord {
                        chrom: name.clone(),
                        start: i as i64 * self.bin_size as i64,
                        end: (i as i64 + 1) * self.bin_size as i64,
                        value: v,
                    };
                    bedgraph::write_record(&rec, &mut out);
                }
            }
        }
        out
    }

    /// Mean bin value.
    pub fn mean(&self) -> f64 {
        if self.bins.is_empty() {
            0.0
        } else {
            self.bins.iter().sum::<f64>() / self.bins.len() as f64
        }
    }
}

/// Integer-exact binned overlap counts — the order-independent coverage
/// accumulator behind parallel reduction (`ngs-pipeline`'s analysis
/// graph).
///
/// [`CoverageHistogram::add_alignment`] accumulates fractional
/// `overlap / bin_size` terms, so the last float bits of a bin depend on
/// summation order — unacceptable when batches are assigned to workers
/// by scheduling. `BinnedCounts` instead accumulates the integer overlap
/// *base pairs* per bin: integer sums commute exactly, so any partition
/// of the records over any number of workers merges to identical counts,
/// and the single division by `bin_size` happens in
/// [`BinnedCounts::into_histogram`]. The result agrees with the
/// sequential float path to ~1e-9 relative error (one rounding per bin
/// instead of one per record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinnedCounts {
    /// Bin width in base pairs.
    bin_size: u32,
    /// Covered base pairs per bin.
    counts: Vec<u64>,
    /// Per-chromosome extents: `(name, first_bin, n_bins)`.
    chroms: Vec<(Vec<u8>, usize, usize)>,
    /// Name → index into `chroms`.
    chrom_index: std::collections::HashMap<Vec<u8>, usize>,
}

impl BinnedCounts {
    /// An empty counter shaped by a header's reference dictionary,
    /// mirroring [`CoverageHistogram::new`].
    pub fn new(header: &SamHeader, bin_size: u32) -> Self {
        assert!(bin_size > 0);
        let mut chroms = Vec::with_capacity(header.references.len());
        let mut total = 0usize;
        for r in &header.references {
            let n = (r.length as usize).div_ceil(bin_size as usize);
            chroms.push((r.name.clone(), total, n));
            total += n;
        }
        let chrom_index = chroms.iter().enumerate().map(|(i, c)| (c.0.clone(), i)).collect();
        BinnedCounts { bin_size, counts: vec![0; total], chroms, chrom_index }
    }

    /// Total number of bins.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the counter has no bins.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Adds one alignment's reference span as integer base pairs per
    /// bin (same span logic as [`CoverageHistogram::add_alignment`]).
    pub fn add_alignment(&mut self, rec: &AlignmentRecord) -> bool {
        let (Some(start), Some(end)) = (rec.start0(), rec.end0()) else {
            return false;
        };
        let Some(&(_, first_bin, n_bins)) =
            self.chrom_index.get(rec.rname.as_slice()).map(|&i| &self.chroms[i])
        else {
            return false;
        };
        let bs = self.bin_size as i64;
        let lo_bin = (start / bs).clamp(0, n_bins as i64 - 1) as usize;
        let hi_bin = ((end - 1) / bs).clamp(0, n_bins as i64 - 1) as usize;
        for bin in lo_bin..=hi_bin {
            let bin_start = bin as i64 * bs;
            let bin_end = bin_start + bs;
            let overlap = end.min(bin_end) - start.max(bin_start);
            if overlap > 0 {
                self.counts[first_bin + bin] += overlap as u64;
            }
        }
        true
    }

    /// Merges another partial counter in. Exact and commutative, so the
    /// merge order of worker partials never matters. Fails when the two
    /// counters were shaped by different headers or bin sizes.
    pub fn merge(&mut self, other: &BinnedCounts) -> Result<()> {
        if self.bin_size != other.bin_size || self.chroms != other.chroms {
            return Err(Error::InvalidRecord(
                "BinnedCounts shape mismatch: partials must share header and bin size".into(),
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        Ok(())
    }

    /// Total covered base pairs across all bins.
    pub fn total_bases(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Converts to the float histogram the NL-means/FDR stages consume
    /// (one `counts / bin_size` rounding per bin).
    pub fn into_histogram(self) -> CoverageHistogram {
        let bs = self.bin_size as f64;
        CoverageHistogram {
            bin_size: self.bin_size,
            bins: self.counts.iter().map(|&c| c as f64 / bs).collect(),
            chroms: self.chroms,
            chrom_index: self.chrom_index,
        }
    }
}

/// A named reference extent inferred from data (see
/// [`CoverageHistogram::from_bedgraph_auto`]).
#[derive(Debug, Clone)]
pub(crate) struct RefExtent {
    pub(crate) name: Vec<u8>,
    pub(crate) length: u64,
}

/// Mean squared error between two series.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>() / a.len() as f64
}

/// Peak signal-to-noise ratio (dB) of `noisy` against `clean`.
pub fn psnr(clean: &[f64], noisy: &[f64]) -> f64 {
    let peak = clean.iter().cloned().fold(f64::MIN, f64::max);
    let err = mse(clean, noisy);
    if err == 0.0 {
        f64::INFINITY
    } else {
        10.0 * ((peak * peak) / err).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_formats::header::ReferenceSequence;
    use ngs_formats::sam;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![
            ReferenceSequence { name: b"chr1".to_vec(), length: 1000 },
            ReferenceSequence { name: b"chr2".to_vec(), length: 500 },
        ])
    }

    #[test]
    fn shape_from_header() {
        let h = CoverageHistogram::new(&header(), 25);
        assert_eq!(h.len(), 40 + 20);
        assert_eq!(h.chroms[0], (b"chr1".to_vec(), 0, 40));
        assert_eq!(h.chroms[1], (b"chr2".to_vec(), 40, 20));
    }

    #[test]
    fn single_read_coverage() {
        let mut h = CoverageHistogram::new(&header(), 25);
        // Read covering exactly bin 2 of chr1: positions 50..75 (0-based).
        let rec = sam::parse_record(
            b"r\t0\tchr1\t51\t60\t25M\t*\t0\t0\t*\t*",
            1,
        )
        .unwrap();
        assert!(h.add_alignment(&rec));
        assert!((h.bins[2] - 1.0).abs() < 1e-12);
        assert_eq!(h.bins.iter().filter(|&&v| v != 0.0).count(), 1);
    }

    #[test]
    fn read_spanning_bins_splits_coverage() {
        let mut h = CoverageHistogram::new(&header(), 25);
        // 0-based 40..90: 10 bases in bin 1, 25 in bin 2, 15 in bin 3.
        let rec = sam::parse_record(b"r\t0\tchr1\t41\t60\t50M\t*\t0\t0\t*\t*", 1).unwrap();
        h.add_alignment(&rec);
        assert!((h.bins[1] - 0.4).abs() < 1e-12);
        assert!((h.bins[2] - 1.0).abs() < 1e-12);
        assert!((h.bins[3] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn second_chromosome_offsets() {
        let mut h = CoverageHistogram::new(&header(), 25);
        let rec = sam::parse_record(b"r\t0\tchr2\t1\t60\t25M\t*\t0\t0\t*\t*", 1).unwrap();
        h.add_alignment(&rec);
        assert!((h.bins[40] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unmapped_and_unknown_ignored() {
        let mut h = CoverageHistogram::new(&header(), 25);
        let un = sam::parse_record(b"r\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*", 1).unwrap();
        assert!(!h.add_alignment(&un));
        let other = sam::parse_record(b"r\t0\tchrX\t1\t60\t25M\t*\t0\t0\t*\t*", 1).unwrap();
        assert!(!h.add_alignment(&other));
        assert!(h.bins.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bedgraph_roundtrip() {
        let hdr = header();
        let mut h = CoverageHistogram::new(&hdr, 25);
        let rec = sam::parse_record(b"r\t0\tchr1\t26\t60\t50M\t*\t0\t0\t*\t*", 1).unwrap();
        h.add_alignment(&rec);
        let text = h.to_bedgraph();
        let mut h2 = CoverageHistogram::new(&hdr, 25);
        h2.add_bedgraph_text(&text).unwrap();
        for (a, b) in h.bins.iter().zip(&h2.bins) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn bedgraph_from_converter_output_accumulates() {
        let mut h = CoverageHistogram::new(&header(), 25);
        let text = b"track type=bedGraph name=\"x\"\nchr1\t0\t25\t1\nchr1\t0\t25\t1\nchr2\t25\t50\t3\n";
        let n = h.add_bedgraph_text(text).unwrap();
        assert_eq!(n, 3);
        assert!((h.bins[0] - 2.0).abs() < 1e-12);
        assert!((h.bins[41] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_chrom_in_bedgraph_errors() {
        let mut h = CoverageHistogram::new(&header(), 25);
        assert!(h.add_bedgraph_text(b"chrQ\t0\t25\t1\n").is_err());
    }

    #[test]
    fn metrics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 5.0];
        assert!((mse(&a, &b) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        assert!(psnr(&a, &b) > 0.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn binned_counts_match_float_histogram() {
        let hdr = header();
        let recs: Vec<_> = [
            b"r1\t0\tchr1\t41\t60\t50M\t*\t0\t0\t*\t*".as_slice(),
            b"r2\t0\tchr1\t51\t60\t25M\t*\t0\t0\t*\t*".as_slice(),
            b"r3\t0\tchr2\t1\t60\t30M\t*\t0\t0\t*\t*".as_slice(),
        ]
        .iter()
        .map(|l| sam::parse_record(l, 1).unwrap())
        .collect();
        let float = CoverageHistogram::from_records(&hdr, 25, &recs);
        let mut counts = BinnedCounts::new(&hdr, 25);
        for r in &recs {
            counts.add_alignment(r);
        }
        let int = counts.into_histogram();
        assert_eq!(float.len(), int.len());
        for (a, b) in float.bins.iter().zip(&int.bins) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn binned_counts_merge_is_exact_for_any_partition() {
        let hdr = header();
        let recs: Vec<_> = (0..40)
            .map(|i| {
                let line = format!("r{i}\t0\tchr1\t{}\t60\t37M\t*\t0\t0\t*\t*", 1 + i * 13);
                sam::parse_record(line.as_bytes(), 1).unwrap()
            })
            .collect();
        let mut whole = BinnedCounts::new(&hdr, 25);
        for r in &recs {
            whole.add_alignment(r);
        }
        // Any split, merged in any order, gives bitwise-equal counts.
        for split in [1, 7, 20, 39] {
            let mut a = BinnedCounts::new(&hdr, 25);
            let mut b = BinnedCounts::new(&hdr, 25);
            for r in &recs[..split] {
                a.add_alignment(r);
            }
            for r in &recs[split..] {
                b.add_alignment(r);
            }
            // Merge b into a and, separately, a into b: same result.
            let mut ab = a.clone();
            ab.merge(&b).unwrap();
            let mut ba = b.clone();
            ba.merge(&a).unwrap();
            assert_eq!(ab, whole);
            assert_eq!(ba, whole);
        }
    }

    #[test]
    fn binned_counts_shape_mismatch_is_error() {
        let a = BinnedCounts::new(&header(), 25);
        let mut b = BinnedCounts::new(&header(), 50);
        assert!(b.merge(&a).is_err());
        let other = SamHeader::from_references(vec![ReferenceSequence {
            name: b"chrZ".to_vec(),
            length: 100,
        }]);
        let mut c = BinnedCounts::new(&other, 25);
        assert!(c.merge(&a).is_err());
    }

    #[test]
    fn binned_counts_skips_unmapped_and_unknown() {
        let mut c = BinnedCounts::new(&header(), 25);
        let un = sam::parse_record(b"r\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*", 1).unwrap();
        assert!(!c.add_alignment(&un));
        let other = sam::parse_record(b"r\t0\tchrX\t1\t60\t25M\t*\t0\t0\t*\t*", 1).unwrap();
        assert!(!c.add_alignment(&other));
        assert_eq!(c.total_bases(), 0);
    }

    #[test]
    fn mean_value() {
        let mut h = CoverageHistogram::new(
            &SamHeader::from_references(vec![ngs_formats::header::ReferenceSequence {
                name: b"c".to_vec(),
                length: 75,
            }]),
            25,
        );
        h.bins = vec![1.0, 2.0, 3.0];
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod auto_tests {
    use super::*;

    #[test]
    fn from_bedgraph_auto_infers_extents() {
        let text = b"track type=bedGraph name=\"x\"\nchr1\t0\t25\t2\nchr1\t975\t1000\t1\nchr2\t0\t50\t3\n";
        let h = CoverageHistogram::from_bedgraph_auto(text, 25).unwrap();
        assert_eq!(h.chroms.len(), 2);
        assert_eq!(h.chroms[0].0, b"chr1");
        assert_eq!(h.chroms[0].2, 40); // 1000 / 25
        assert_eq!(h.chroms[1].2, 2); // 50 / 25
        assert!((h.bins[0] - 2.0).abs() < 1e-12);
        assert!((h.bins[39] - 1.0).abs() < 1e-12);
        assert!((h.bins[40] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn auto_roundtrips_with_to_bedgraph() {
        let text = b"chrA\t0\t25\t5\nchrA\t50\t75\t2.5\n";
        let h = CoverageHistogram::from_bedgraph_auto(text, 25).unwrap();
        let out = h.to_bedgraph();
        let h2 = CoverageHistogram::from_bedgraph_auto(&out, 25).unwrap();
        assert_eq!(h.bins, h2.bins);
    }

    #[test]
    fn empty_text() {
        let h = CoverageHistogram::from_bedgraph_auto(b"", 25).unwrap();
        assert!(h.is_empty());
    }
}
