//! Non-local means denoising of 1-D histogram data (Section IV-A).
//!
//! Each point is replaced by a weighted average of the points in its
//! search range, weighted by patch similarity:
//!
//! ```text
//! NL[v_i]  = Σ_{j∈R} w(i,j) · v_j
//! w(i,j)   = exp(−‖N(v_i) − N(v_j)‖ / 2σ²) / Z(i)
//! Z(i)     = Σ_{j∈R} exp(−‖N(v_i) − N(v_j)‖ / 2σ²)
//! ```
//!
//! with `N(v_i)` the patch of half-size `l` centred at `i` and `R` the
//! window of radius `r`. Complexity Θ(N·(2r+1)·(2l+1)).
//!
//! The parallel version follows the paper exactly: partition the array
//! into one chunk per rank, replicate an `r + l` halo from each
//! neighbour, run NL-means over the enlarged chunk but only *update* the
//! original chunk. Output is bit-identical to the sequential pass.

use ngs_cluster::{run_ranks, Communicator};

/// NL-means parameters (the paper's symbols: `r`, `l`, `sigma`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NlMeansParams {
    /// Search-range radius `r` in bins.
    pub search_radius: usize,
    /// Half patch size `l` in bins.
    pub half_patch: usize,
    /// Filtering parameter σ.
    pub sigma: f64,
}

impl Default for NlMeansParams {
    fn default() -> Self {
        // The paper's fixed settings: l = 15, σ = 10 (r is varied).
        NlMeansParams { search_radius: 20, half_patch: 15, sigma: 10.0 }
    }
}

/// Squared patch distance ‖N(v_a) − N(v_b)‖ with clamped boundaries.
#[inline]
fn patch_distance(data: &[f64], a: usize, b: usize, l: usize) -> f64 {
    let n = data.len() as isize;
    let (a, b) = (a as isize, b as isize);
    let mut d = 0.0;
    for k in -(l as isize)..=(l as isize) {
        let xa = data[(a + k).clamp(0, n - 1) as usize];
        let xb = data[(b + k).clamp(0, n - 1) as usize];
        let diff = xa - xb;
        d += diff * diff;
    }
    d
}

/// Denoises `data[lo..hi]` given the full (or halo-extended) context in
/// `data`, writing results into `out[0..hi-lo]`.
pub(crate) fn denoise_range(data: &[f64], lo: usize, hi: usize, params: &NlMeansParams, out: &mut [f64]) {
    let n = data.len();
    let r = params.search_radius;
    let l = params.half_patch;
    let two_sigma_sq = 2.0 * params.sigma * params.sigma;
    for (slot, i) in (lo..hi).enumerate() {
        let j_lo = i.saturating_sub(r);
        let j_hi = (i + r).min(n - 1);
        let mut num = 0.0;
        let mut z = 0.0;
        for j in j_lo..=j_hi {
            let w = (-patch_distance(data, i, j, l) / two_sigma_sq).exp();
            num += w * data[j];
            z += w;
        }
        // Z(i) ≥ exp(0) = 1 because j = i is always in range.
        out[slot] = num / z;
    }
}

/// Crate-internal re-export used by the simulated execution mode.
#[inline]
pub(crate) fn denoise_range_pub(
    data: &[f64],
    lo: usize,
    hi: usize,
    params: &NlMeansParams,
    out: &mut [f64],
) {
    denoise_range(data, lo, hi, params, out)
}

/// Sequential NL-means over the whole histogram.
pub fn nlmeans_sequential(data: &[f64], params: &NlMeansParams) -> Vec<f64> {
    let mut out = vec![0.0; data.len()];
    if !data.is_empty() {
        denoise_range(data, 0, data.len(), params, &mut out);
    }
    out
}

/// Shared-memory parallel NL-means using rayon; identical output to the
/// sequential pass (reads are on the immutable input).
pub fn nlmeans_rayon(data: &[f64], params: &NlMeansParams) -> Vec<f64> {
    use rayon::prelude::*;
    let chunk = (data.len() / rayon::current_num_threads().max(1)).max(1024);
    let mut out = vec![0.0; data.len()];
    out.par_chunks_mut(chunk).enumerate().for_each(|(ci, slice)| {
        let lo = ci * chunk;
        denoise_range(data, lo, lo + slice.len(), params, slice);
    });
    out
}

/// Distributed parallel NL-means per the paper's three-step strategy:
/// even partitioning, `r + l` halo replication from both neighbours via
/// point-to-point messages, then local processing of the original chunk.
///
/// `data` is only read on rank 0, which scatters chunks; results are
/// gathered back to rank 0 and returned from every rank for convenience.
pub fn nlmeans_distributed(data: &[f64], params: &NlMeansParams, ranks: usize) -> Vec<f64> {
    assert!(ranks > 0);
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let results = run_ranks(ranks, |comm| nlmeans_rank(data, params, comm));
    let mut out = Vec::with_capacity(n);
    for part in results {
        out.extend_from_slice(&part);
    }
    out
}

/// One rank's part of the distributed NL-means. `data` stands in for this
/// rank's partition source (each rank reads only its own chunk plus what
/// neighbours send it).
fn nlmeans_rank(data: &[f64], params: &NlMeansParams, comm: &Communicator) -> Vec<f64> {
    const TAG_LEFT: u64 = 0x11; // halo travelling leftward
    const TAG_RIGHT: u64 = 0x12; // halo travelling rightward
    let n = data.len();
    let size = comm.size();
    let rank = comm.rank();
    let halo = params.search_radius + params.half_patch;

    // Step 1: even partitioning (bins, not bytes).
    let lo = rank * n / size;
    let hi = (rank + 1) * n / size;
    let chunk = &data[lo..hi];

    // Step 2: halo replication. Each rank sends its edge regions to its
    // neighbours — the paper's "replicate a fixed-sized ending region
    // from P_{i-1} and a fixed-sized starting region from P_{i+1}".
    //
    // When a chunk is *narrower* than the halo (many ranks over a short
    // histogram), a rank's own edge is not enough context for its
    // neighbour, so each rank relays: the rightward message to rank i+1
    // is the trailing `halo` of (received-left-context ++ own chunk),
    // and symmetrically leftward. Context accumulates across narrow
    // chunks, so every rank ends up with min(halo, distance-to-edge)
    // bins per side — exactly the window the sequential pass reads —
    // and the output stays bit-identical regardless of chunk size. The
    // relay makes each direction an O(size) chain instead of one
    // pairwise round; halo messages are tiny, so latency, not volume,
    // bounds it.
    let to_f64s = |bytes: Vec<u8>| -> Vec<f64> {
        bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
    };
    let to_bytes = |vals: &[f64]| -> Vec<u8> {
        let mut b = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    };

    // Rightward chain: context flows rank 0 → rank size-1.
    let left_halo: Vec<f64> =
        if rank > 0 { to_f64s(comm.recv(rank - 1, TAG_RIGHT)) } else { Vec::new() };
    if rank + 1 < size {
        let mut ctx = Vec::with_capacity(left_halo.len() + chunk.len());
        ctx.extend_from_slice(&left_halo);
        ctx.extend_from_slice(chunk);
        let start = ctx.len().saturating_sub(halo);
        comm.send(rank + 1, TAG_RIGHT, to_bytes(&ctx[start..]));
    }
    // Leftward chain: context flows rank size-1 → rank 0.
    let right_halo: Vec<f64> =
        if rank + 1 < size { to_f64s(comm.recv(rank + 1, TAG_LEFT)) } else { Vec::new() };
    if rank > 0 {
        let mut ctx = Vec::with_capacity(chunk.len() + right_halo.len());
        ctx.extend_from_slice(chunk);
        ctx.extend_from_slice(&right_halo);
        ctx.truncate(halo);
        comm.send(rank - 1, TAG_LEFT, to_bytes(&ctx));
    }

    // Build the enlarged partition P'_i.
    let mut extended = Vec::with_capacity(left_halo.len() + chunk.len() + right_halo.len());
    extended.extend_from_slice(&left_halo);
    extended.extend_from_slice(chunk);
    extended.extend_from_slice(&right_halo);

    // Step 3: process only the original partition inside P'_i.
    let mut out = vec![0.0; chunk.len()];
    if !chunk.is_empty() {
        denoise_range(&extended, left_halo.len(), left_halo.len() + chunk.len(), params, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_simgen::Rng;

    fn noisy_signal(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = Rng::seed_from_u64(seed);
        let clean: Vec<f64> = (0..n)
            .map(|i| {
                let x = i as f64;
                // Peaky coverage-like signal.
                20.0 * (-((x - n as f64 * 0.3).powi(2)) / 800.0).exp()
                    + 12.0 * (-((x - n as f64 * 0.7).powi(2)) / 200.0).exp()
                    + 5.0
            })
            .collect();
        let noisy: Vec<f64> = clean.iter().map(|&v| v + 2.0 * rng.normal()).collect();
        (clean, noisy)
    }

    fn small_params() -> NlMeansParams {
        NlMeansParams { search_radius: 10, half_patch: 3, sigma: 5.0 }
    }

    #[test]
    fn denoising_reduces_mse() {
        let (clean, noisy) = noisy_signal(600, 1);
        let denoised = nlmeans_sequential(&noisy, &small_params());
        let before = crate::histogram::mse(&clean, &noisy);
        let after = crate::histogram::mse(&clean, &denoised);
        assert!(after < before, "MSE before {before}, after {after}");
    }

    #[test]
    fn constant_signal_is_fixed_point() {
        let data = vec![7.5; 200];
        let out = nlmeans_sequential(&data, &small_params());
        for v in out {
            assert!((v - 7.5).abs() < 1e-9);
        }
    }

    #[test]
    fn rayon_matches_sequential_exactly() {
        let (_, noisy) = noisy_signal(2000, 2);
        let seq = nlmeans_sequential(&noisy, &small_params());
        let par = nlmeans_rayon(&noisy, &small_params());
        assert_eq!(seq, par);
    }

    #[test]
    fn distributed_matches_sequential_exactly() {
        let (_, noisy) = noisy_signal(1500, 3);
        let params = small_params();
        let seq = nlmeans_sequential(&noisy, &params);
        for ranks in [1, 2, 3, 8] {
            let dist = nlmeans_distributed(&noisy, &params, ranks);
            assert_eq!(dist, seq, "{ranks} ranks");
        }
    }

    #[test]
    fn distributed_handles_chunks_smaller_than_halo() {
        // 16 ranks over 100 points with halo 13 → chunk ≈ 6 < halo. The
        // halo relay accumulates context across narrow chunks, so even
        // degenerate partitionings stay bit-identical to sequential.
        let (_, noisy) = noisy_signal(100, 4);
        let params = small_params();
        let seq = nlmeans_sequential(&noisy, &params);
        let dist = nlmeans_distributed(&noisy, &params, 16);
        assert_eq!(dist, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(nlmeans_sequential(&[], &small_params()).is_empty());
        let one = nlmeans_sequential(&[3.0], &small_params());
        assert!((one[0] - 3.0).abs() < 1e-12);
        assert!(nlmeans_distributed(&[], &small_params(), 4).is_empty());
    }

    #[test]
    fn weights_favor_similar_patches() {
        // A signal with two identical bumps and noise elsewhere: the bump
        // keeps its height better than a lone spike would.
        let mut data = vec![0.0; 300];
        for (i, v) in data.iter_mut().enumerate() {
            if (50..60).contains(&i) || (200..210).contains(&i) {
                *v = 10.0;
            }
        }
        let out = nlmeans_sequential(
            &data,
            &NlMeansParams { search_radius: 160, half_patch: 5, sigma: 2.0 },
        );
        // Bump centers stay close to 10.
        assert!(out[55] > 8.0, "bump survives: {}", out[55]);
        assert!(out[205] > 8.0);
        // Flat regions stay near 0.
        assert!(out[150] < 1.0);
    }

    #[test]
    fn complexity_parameters_respected() {
        // Larger r must strictly increase examined neighbours — verify
        // via behaviour: with r=0 the output is the input (self-weight 1).
        let (_, noisy) = noisy_signal(100, 5);
        let out = nlmeans_sequential(
            &noisy,
            &NlMeansParams { search_radius: 0, half_patch: 3, sigma: 5.0 },
        );
        for (a, b) in out.iter().zip(&noisy) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
