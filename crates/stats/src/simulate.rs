//! Simulation-dataset generation for FDR computation.
//!
//! Han et al. compute FDR against datasets "generated from random
//! simulations" of the observed histogram. Two standard null models are
//! provided: per-bin Poisson resampling at the observed mean rate, and
//! random permutation of the observed bins (which preserves the exact
//! value multiset).

use ngs_simgen::Rng;

use crate::fdr::FdrInput;

/// Null-model choice for simulation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NullModel {
    /// Independent Poisson draws at the observed mean coverage.
    Poisson,
    /// A random permutation of the observed bins per round.
    Permutation,
}

/// Generates `rounds` simulation datasets for `observed` under `model`.
pub fn simulate(observed: &[f64], rounds: usize, model: NullModel, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(seed);
    match model {
        NullModel::Poisson => {
            let mean = if observed.is_empty() {
                0.0
            } else {
                observed.iter().sum::<f64>() / observed.len() as f64
            };
            (0..rounds)
                .map(|_| observed.iter().map(|_| rng.poisson(mean) as f64).collect())
                .collect()
        }
        NullModel::Permutation => (0..rounds)
            .map(|_| {
                let mut sim = observed.to_vec();
                // Fisher–Yates.
                for i in (1..sim.len()).rev() {
                    let j = rng.next_below(i as u64 + 1) as usize;
                    sim.swap(i, j);
                }
                sim
            })
            .collect(),
    }
}

/// Builds a complete [`FdrInput`] from an observed histogram.
pub fn build_fdr_input(
    observed: Vec<f64>,
    rounds: usize,
    model: NullModel,
    seed: u64,
) -> FdrInput {
    let simulations = simulate(&observed, rounds, model, seed);
    FdrInput::new(observed, simulations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_sims_have_observed_mean() {
        let observed: Vec<f64> = (0..2000).map(|i| (i % 17) as f64).collect();
        let mean = observed.iter().sum::<f64>() / observed.len() as f64;
        let sims = simulate(&observed, 5, NullModel::Poisson, 1);
        assert_eq!(sims.len(), 5);
        for sim in &sims {
            assert_eq!(sim.len(), observed.len());
            let sim_mean = sim.iter().sum::<f64>() / sim.len() as f64;
            assert!((sim_mean - mean).abs() < mean * 0.1, "{sim_mean} vs {mean}");
        }
    }

    #[test]
    fn permutation_preserves_multiset() {
        let observed: Vec<f64> = (0..500).map(|i| (i * 7 % 23) as f64).collect();
        let sims = simulate(&observed, 3, NullModel::Permutation, 2);
        let mut sorted_obs = observed.clone();
        sorted_obs.sort_by(f64::total_cmp);
        for sim in &sims {
            let mut sorted = sim.clone();
            sorted.sort_by(f64::total_cmp);
            assert_eq!(sorted, sorted_obs);
            assert_ne!(sim, &observed, "permutation must actually shuffle");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let observed = vec![1.0, 2.0, 3.0, 4.0];
        let a = simulate(&observed, 2, NullModel::Poisson, 9);
        let b = simulate(&observed, 2, NullModel::Poisson, 9);
        assert_eq!(a, b);
        let c = simulate(&observed, 2, NullModel::Poisson, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn fdr_input_shape() {
        let input = build_fdr_input(vec![1.0; 100], 7, NullModel::Poisson, 3);
        assert_eq!(input.bins(), 100);
        assert_eq!(input.rounds(), 7);
    }

    #[test]
    fn empty_observed() {
        let sims = simulate(&[], 3, NullModel::Poisson, 1);
        assert!(sims.iter().all(Vec::is_empty));
    }
}
