//! False discovery rate computation (Section IV-B, after Han et al.).
//!
//! Given an observed histogram (`M` bins) and `B` simulation datasets:
//!
//! ```text
//! p_i      = Σ_b  I(r_i ≤ r*_ib)                      (Eq. 4)
//! d_b      = Σ_i  I( Σ_b' I(r*_ib ≤ r*_ib') ≤ p_t )   (Eq. 5)
//! FDR(p_t) = (B⁻¹ Σ_b d_b) / Σ_i I(p_i ≤ p_t)         (Eq. 6)
//! ```
//!
//! Three implementations:
//! * [`fdr_direct`] — the literal two-quantity formulation;
//! * [`fdr_fused`] — the paper's *summation permutation* (Eq. 7–9): both
//!   numerator and denominator accumulate in a single pass over bins;
//! * [`fdr_parallel`] — Algorithm 2: bin-direction partitioning, fused
//!   local sums, one global reduction. A two-phase variant
//!   ([`fdr_parallel_two_phase`]) keeps the numerator and denominator
//!   reductions separate (two barriers) for the ablation the paper's
//!   Figure 12 commentary alludes to.
//!
//! Complexity Θ(M·B²).

use ngs_cluster::run_ranks;

/// The FDR inputs: one observed series and `B` simulated series, all of
/// equal length `M`.
#[derive(Debug, Clone)]
pub struct FdrInput {
    /// Observed reads per bin (`r_i`).
    pub observed: Vec<f64>,
    /// Simulated reads per bin per simulation (`r*_ib`), indexed
    /// `simulations[b][i]`.
    pub simulations: Vec<Vec<f64>>,
}

impl FdrInput {
    /// Validates shape and wraps the inputs.
    pub fn new(observed: Vec<f64>, simulations: Vec<Vec<f64>>) -> Self {
        for (b, s) in simulations.iter().enumerate() {
            assert_eq!(s.len(), observed.len(), "simulation {b} length mismatch");
        }
        FdrInput { observed, simulations }
    }

    /// Number of bins `M`.
    pub fn bins(&self) -> usize {
        self.observed.len()
    }

    /// Number of simulations `B`.
    pub fn rounds(&self) -> usize {
        self.simulations.len()
    }
}

/// The literal Eq. 4–6 evaluation (reference implementation).
pub fn fdr_direct(input: &FdrInput, p_t: f64) -> f64 {
    let m = input.bins();
    let b_count = input.rounds();
    assert!(b_count > 0 && m > 0);

    // Eq. 4: p_i per bin.
    let p: Vec<u64> = (0..m)
        .map(|i| {
            input
                .simulations
                .iter()
                .filter(|sim| input.observed[i] <= sim[i])
                .count() as u64
        })
        .collect();

    // Eq. 5: d_b per simulation round.
    let mut d_total = 0u64;
    for b in 0..b_count {
        let mut d_b = 0u64;
        for i in 0..m {
            let rank_count = input
                .simulations
                .iter()
                .filter(|other| input.simulations[b][i] <= other[i])
                .count() as f64;
            if rank_count <= p_t {
                d_b += 1;
            }
        }
        d_total += d_b;
    }

    // Eq. 6.
    let numerator = d_total as f64 / b_count as f64;
    let denominator = p.iter().filter(|&&pi| pi as f64 <= p_t).count() as f64;
    if denominator == 0.0 {
        f64::INFINITY
    } else {
        numerator / denominator
    }
}

/// Per-bin fused contributions: `(sum◇_i, sum*_i)` of Eq. 7–8.
#[inline]
fn fused_bin_sums(input: &FdrInput, i: usize, p_t: f64) -> (u64, u64) {
    let sims = &input.simulations;
    // sum◇_i (Eq. 7): for every b, rank r*_ib among {r*_ib'}.
    let mut sum_diamond = 0u64;
    for b in sims {
        let rank_count = sims.iter().filter(|other| b[i] <= other[i]).count() as f64;
        if rank_count <= p_t {
            sum_diamond += 1;
        }
    }
    // sum*_i (Eq. 8): indicator on p_i.
    let p_i = sims.iter().filter(|sim| input.observed[i] <= sim[i]).count() as f64;
    let sum_star = u64::from(p_i <= p_t);
    (sum_diamond, sum_star)
}

/// The paper's fused single-pass formulation (Eq. 9), sequential.
pub fn fdr_fused(input: &FdrInput, p_t: f64) -> f64 {
    let b_count = input.rounds();
    assert!(b_count > 0 && input.bins() > 0);
    let mut diamond = 0u64;
    let mut star = 0u64;
    for i in 0..input.bins() {
        let (d, s) = fused_bin_sums(input, i, p_t);
        diamond += d;
        star += s;
    }
    finish(diamond, star, b_count)
}

#[inline]
fn finish(diamond: u64, star: u64, b_count: usize) -> f64 {
    if star == 0 {
        f64::INFINITY
    } else {
        diamond as f64 / (b_count as f64 * star as f64)
    }
}

/// Algorithm 2: bin-direction partitioning; each rank computes fused
/// local sums; a single gather at the master computes both global sums at
/// once (one synchronization), and the result is broadcast back.
pub fn fdr_parallel(input: &FdrInput, p_t: f64, ranks: usize) -> f64 {
    const TAG_SUMS: u64 = 0x21;
    const TAG_RESULT: u64 = 0x22;
    assert!(ranks > 0 && input.rounds() > 0 && input.bins() > 0);
    let m = input.bins();
    let b_count = input.rounds();

    let results = run_ranks(ranks, |comm| {
        let rank = comm.rank();
        let size = comm.size();
        // Line 1: even bin-direction partitioning.
        let lo = rank * m / size;
        let hi = (rank + 1) * m / size;

        // Lines 2–3: local sums, fused in one pass.
        let mut diamond = 0u64;
        let mut star = 0u64;
        for i in lo..hi {
            let (d, s) = fused_bin_sums(input, i, p_t);
            diamond += d;
            star += s;
        }

        // Line 4: global barrier.
        comm.barrier();

        // Lines 5–8: one combined reduction at the master (both sums in a
        // single message — the optimization that removes a second
        // synchronization).
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&diamond.to_le_bytes());
        payload.extend_from_slice(&star.to_le_bytes());
        let gathered = comm.gather(TAG_SUMS, payload);
        if let Some(all) = gathered {
            let mut total_d = 0u64;
            let mut total_s = 0u64;
            for msg in all {
                total_d += u64::from_le_bytes(msg[0..8].try_into().expect("u64"));
                total_s += u64::from_le_bytes(msg[8..16].try_into().expect("u64"));
            }
            let fdr = finish(total_d, total_s, b_count);
            comm.broadcast(TAG_RESULT, fdr.to_le_bytes().to_vec());
            fdr
        } else {
            let bytes = comm.broadcast(TAG_RESULT, Vec::new());
            f64::from_le_bytes(bytes[0..8].try_into().expect("f64"))
        }
    });
    results[0]
}

/// The unfused ablation: numerator and denominator are reduced in two
/// separate steps with an extra global synchronization between them —
/// what Algorithm 2's summation permutation avoids.
pub fn fdr_parallel_two_phase(input: &FdrInput, p_t: f64, ranks: usize) -> f64 {
    assert!(ranks > 0 && input.rounds() > 0 && input.bins() > 0);
    let m = input.bins();
    let b_count = input.rounds();

    let results = run_ranks(ranks, |comm| {
        let rank = comm.rank();
        let size = comm.size();
        let lo = rank * m / size;
        let hi = (rank + 1) * m / size;

        // Phase 1: numerator only.
        let mut diamond = 0u64;
        for i in lo..hi {
            let sims = &input.simulations;
            for b in sims {
                let rank_count =
                    sims.iter().filter(|other| b[i] <= other[i]).count() as f64;
                if rank_count <= p_t {
                    diamond += 1;
                }
            }
        }
        comm.barrier();
        let total_d = comm.all_reduce_sum_u64(0x31, diamond);

        // Phase 2: denominator only (second sweep + second reduction).
        let mut star = 0u64;
        for i in lo..hi {
            let p_i = input
                .simulations
                .iter()
                .filter(|sim| input.observed[i] <= sim[i])
                .count() as f64;
            if p_i <= p_t {
                star += 1;
            }
        }
        comm.barrier();
        let total_s = comm.all_reduce_sum_u64(0x32, star);

        finish(total_d, total_s, b_count)
    });
    results[0]
}

/// Crate-internal re-export used by the simulated execution mode.
#[inline]
pub(crate) fn fused_bin_sums_pub(input: &FdrInput, i: usize, p_t: f64) -> (u64, u64) {
    fused_bin_sums(input, i, p_t)
}

/// Sweeps thresholds, returning `(p_t, FDR(p_t))` pairs — the curve used
/// to pick a region-selection threshold.
pub fn fdr_curve(input: &FdrInput, thresholds: &[f64], ranks: usize) -> Vec<(f64, f64)> {
    thresholds.iter().map(|&t| (t, fdr_parallel(input, t, ranks))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_simgen::Rng;

    fn random_input(m: usize, b: usize, seed: u64) -> FdrInput {
        let mut rng = Rng::seed_from_u64(seed);
        let observed: Vec<f64> = (0..m)
            .map(|i| {
                // A few enriched bins stand out above the noise.
                if i % 37 == 0 {
                    40.0 + rng.poisson(20.0) as f64
                } else {
                    rng.poisson(8.0) as f64
                }
            })
            .collect();
        let mean = observed.iter().sum::<f64>() / m as f64;
        let simulations: Vec<Vec<f64>> = (0..b)
            .map(|_| (0..m).map(|_| rng.poisson(mean) as f64).collect())
            .collect();
        FdrInput::new(observed, simulations)
    }

    #[test]
    fn fused_equals_direct() {
        let input = random_input(300, 12, 1);
        for p_t in [0.0, 1.0, 3.0, 6.0, 12.0] {
            let a = fdr_direct(&input, p_t);
            let b = fdr_fused(&input, p_t);
            if a.is_infinite() {
                assert!(b.is_infinite(), "p_t {p_t}");
            } else {
                assert!((a - b).abs() < 1e-12, "p_t {p_t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn parallel_equals_fused() {
        let input = random_input(257, 10, 2);
        for ranks in [1, 2, 4, 8, 16] {
            for p_t in [1.0, 4.0] {
                let seq = fdr_fused(&input, p_t);
                let par = fdr_parallel(&input, p_t, ranks);
                let two = fdr_parallel_two_phase(&input, p_t, ranks);
                assert_eq!(seq.to_bits(), par.to_bits(), "ranks {ranks}, p_t {p_t}");
                assert_eq!(seq.to_bits(), two.to_bits(), "two-phase ranks {ranks}");
            }
        }
    }

    #[test]
    fn enriched_bins_lower_fdr_at_strict_threshold() {
        let input = random_input(1000, 20, 3);
        // Strict threshold (few simulations above observed) vs loose.
        let strict = fdr_fused(&input, 1.0);
        let loose = fdr_fused(&input, 15.0);
        assert!(strict.is_finite());
        assert!(strict <= loose * 1.5 + 1.0, "strict {strict}, loose {loose}");
    }

    #[test]
    fn no_selected_bins_gives_infinite_fdr() {
        // Observed values far above all simulations, threshold 0: p_i > 0
        // is false... p_i = 0 ≤ 0, so choose the inverse: observed far
        // below sims makes p_i = B > p_t → empty selection.
        let observed = vec![0.0; 50];
        let sims = vec![vec![100.0; 50]; 5];
        let input = FdrInput::new(observed, sims);
        assert!(fdr_fused(&input, 1.0).is_infinite());
    }

    #[test]
    fn all_identical_data() {
        // Every value equal: every indicator fires; FDR = M·B/(B·M) = 1.
        let input = FdrInput::new(vec![5.0; 40], vec![vec![5.0; 40]; 6]);
        let fdr = fdr_fused(&input, 6.0);
        assert!((fdr - 1.0).abs() < 1e-12, "fdr {fdr}");
    }

    #[test]
    fn curve_is_reported_per_threshold() {
        let input = random_input(120, 6, 4);
        let curve = fdr_curve(&input, &[1.0, 2.0, 3.0], 3);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].0, 1.0);
        for (t, v) in &curve {
            let reference = fdr_fused(&input, *t);
            if reference.is_finite() {
                assert!((v - reference).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        FdrInput::new(vec![1.0; 10], vec![vec![1.0; 9]]);
    }
}
