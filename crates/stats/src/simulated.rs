//! Simulated-cluster execution of the statistics kernels (see
//! `ngs-converter`'s `simulate` module for the rationale): each rank's
//! compute loop runs alone and is timed; the parallel makespan is
//! `max(rank durations)` plus the (measured) reduction cost.

use std::time::{Duration, Instant};

use crate::fdr::FdrInput;
use crate::nlmeans::NlMeansParams;

/// Per-run timing of a simulated parallel execution.
#[derive(Debug, Clone)]
pub struct SimTiming {
    /// Per-rank compute durations.
    pub rank_times: Vec<Duration>,
    /// Serial overhead outside rank loops (reductions, stitching).
    pub serial_time: Duration,
}

impl SimTiming {
    /// Simulated parallel makespan.
    pub fn makespan(&self) -> Duration {
        self.rank_times.iter().max().copied().unwrap_or_default() + self.serial_time
    }

    /// Sum of rank work (≈ the 1-rank time, used for speedup checks).
    pub fn total_work(&self) -> Duration {
        self.rank_times.iter().sum::<Duration>() + self.serial_time
    }
}

/// Simulated parallel NL-means: identical output to
/// [`crate::nlmeans::nlmeans_sequential`], with per-rank timing over
/// halo-extended chunks.
pub fn nlmeans_simulated(
    data: &[f64],
    params: &NlMeansParams,
    ranks: usize,
) -> (Vec<f64>, SimTiming) {
    assert!(ranks > 0);
    let n = data.len();
    let halo = params.search_radius + params.half_patch;
    let mut out = Vec::with_capacity(n);
    let mut rank_times = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let lo = rank * n / ranks;
        let hi = (rank + 1) * n / ranks;
        let t = Instant::now();
        // The halo-extended window this rank would hold after exchange.
        let ext_lo = lo.saturating_sub(halo);
        let ext_hi = (hi + halo).min(n);
        let extended = &data[ext_lo..ext_hi];
        let mut part = vec![0.0; hi - lo];
        if hi > lo {
            crate::nlmeans::denoise_range_pub(extended, lo - ext_lo, hi - ext_lo, params, &mut part);
        }
        rank_times.push(t.elapsed());
        out.extend_from_slice(&part);
    }
    (out, SimTiming { rank_times, serial_time: Duration::ZERO })
}

/// Simulated Algorithm 2 (fused single-reduction FDR).
pub fn fdr_simulated(input: &FdrInput, p_t: f64, ranks: usize) -> (f64, SimTiming) {
    assert!(ranks > 0);
    let m = input.bins();
    let b_count = input.rounds();
    let mut rank_times = Vec::with_capacity(ranks);
    let mut partials = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        let lo = rank * m / ranks;
        let hi = (rank + 1) * m / ranks;
        let t = Instant::now();
        let mut diamond = 0u64;
        let mut star = 0u64;
        for i in lo..hi {
            let (d, s) = crate::fdr::fused_bin_sums_pub(input, i, p_t);
            diamond += d;
            star += s;
        }
        rank_times.push(t.elapsed());
        partials.push((diamond, star));
    }
    let t = Instant::now();
    let diamond: u64 = partials.iter().map(|p| p.0).sum();
    let star: u64 = partials.iter().map(|p| p.1).sum();
    let fdr = if star == 0 {
        f64::INFINITY
    } else {
        diamond as f64 / (b_count as f64 * star as f64)
    };
    let serial_time = t.elapsed();
    (fdr, SimTiming { rank_times, serial_time })
}

/// Simulated two-phase (unfused) FDR for the Figure 12 ablation: two
/// sweeps per rank and two reductions.
pub fn fdr_simulated_two_phase(input: &FdrInput, p_t: f64, ranks: usize) -> (f64, SimTiming) {
    assert!(ranks > 0);
    let m = input.bins();
    let b_count = input.rounds();
    let mut rank_times = vec![Duration::ZERO; ranks];
    let mut diamonds = Vec::with_capacity(ranks);
    let mut stars = Vec::with_capacity(ranks);
    // Phase 1 sweep.
    #[allow(clippy::needless_range_loop)] // rank drives both the slice and its timer slot
    for rank in 0..ranks {
        let lo = rank * m / ranks;
        let hi = (rank + 1) * m / ranks;
        let t = Instant::now();
        let mut diamond = 0u64;
        for i in lo..hi {
            for b in &input.simulations {
                let rank_count =
                    input.simulations.iter().filter(|other| b[i] <= other[i]).count() as f64;
                if rank_count <= p_t {
                    diamond += 1;
                }
            }
        }
        rank_times[rank] += t.elapsed();
        diamonds.push(diamond);
    }
    // Phase 2 sweep (after the extra barrier).
    #[allow(clippy::needless_range_loop)]
    for rank in 0..ranks {
        let lo = rank * m / ranks;
        let hi = (rank + 1) * m / ranks;
        let t = Instant::now();
        let mut star = 0u64;
        for i in lo..hi {
            let p_i = input
                .simulations
                .iter()
                .filter(|sim| input.observed[i] <= sim[i])
                .count() as f64;
            if p_i <= p_t {
                star += 1;
            }
        }
        rank_times[rank] += t.elapsed();
        stars.push(star);
    }
    let t = Instant::now();
    let diamond: u64 = diamonds.iter().sum();
    let star: u64 = stars.iter().sum();
    let fdr = if star == 0 {
        f64::INFINITY
    } else {
        diamond as f64 / (b_count as f64 * star as f64)
    };
    let serial_time = t.elapsed();
    (fdr, SimTiming { rank_times, serial_time })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nlmeans::nlmeans_sequential;
    use crate::simulate::{build_fdr_input, NullModel};
    use ngs_simgen::Rng;

    fn params() -> NlMeansParams {
        NlMeansParams { search_radius: 8, half_patch: 3, sigma: 5.0 }
    }

    #[test]
    fn nlmeans_simulated_matches_sequential() {
        let mut rng = Rng::seed_from_u64(1);
        let data: Vec<f64> = (0..800).map(|_| rng.poisson(10.0) as f64).collect();
        let seq = nlmeans_sequential(&data, &params());
        for ranks in [1, 2, 5, 8] {
            let (sim, timing) = nlmeans_simulated(&data, &params(), ranks);
            assert_eq!(sim, seq, "ranks {ranks}");
            assert_eq!(timing.rank_times.len(), ranks);
        }
    }

    #[test]
    fn fdr_simulated_matches_fused() {
        let input = build_fdr_input(
            (0..300).map(|i| (i % 13) as f64).collect(),
            8,
            NullModel::Poisson,
            2,
        );
        let reference = crate::fdr::fdr_fused(&input, 2.0);
        for ranks in [1, 3, 7] {
            let (v, t) = fdr_simulated(&input, 2.0, ranks);
            assert_eq!(v.to_bits(), reference.to_bits());
            assert_eq!(t.rank_times.len(), ranks);
            let (v2, t2) = fdr_simulated_two_phase(&input, 2.0, ranks);
            assert_eq!(v2.to_bits(), reference.to_bits());
            // Two-phase does two sweeps: at equal rank counts its work is
            // at least the fused version's.
            assert!(t2.total_work() >= t.total_work() / 2);
        }
    }

    #[test]
    fn makespan_below_total_work_for_multirank() {
        let input = build_fdr_input(
            (0..2000).map(|i| (i % 9) as f64).collect(),
            10,
            NullModel::Poisson,
            3,
        );
        let (_, t) = fdr_simulated(&input, 3.0, 8);
        assert!(t.makespan() <= t.total_work());
        assert!(t.makespan() >= *t.rank_times.iter().max().unwrap());
    }
}
