//! Alignment sorting: coordinate order (the order BAM indexes and the
//! paper's sorted 117 GB input assume) and queryname order, with a
//! parallel merge-sort over record batches.

use std::cmp::Ordering;

use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;
use rayon::prelude::*;

/// Sort orders understood by the `@HD SO:` header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// `(reference id, position)`, unmapped records last — `SO:coordinate`.
    Coordinate,
    /// Lexicographic read name, mate 1 before mate 2 — `SO:queryname`.
    QueryName,
}

/// The coordinate sort key of a record under a header dictionary.
fn coordinate_key(rec: &AlignmentRecord, header: &SamHeader) -> (i64, i64) {
    let tid = header
        .reference_id(&rec.rname)
        .map(|i| i as i64)
        .unwrap_or(i64::MAX); // unknown/unmapped references last
    (tid, rec.pos)
}

fn queryname_cmp(a: &AlignmentRecord, b: &AlignmentRecord) -> Ordering {
    a.qname.cmp(&b.qname).then_with(|| {
        // First-of-pair before second-of-pair for equal names.
        let fa = a.flag.contains(ngs_formats::Flags::SECOND_IN_PAIR);
        let fb = b.flag.contains(ngs_formats::Flags::SECOND_IN_PAIR);
        fa.cmp(&fb)
    })
}

/// Sorts records in place. Stable, parallel (rayon).
pub fn sort_records(records: &mut [AlignmentRecord], header: &SamHeader, order: SortOrder) {
    match order {
        SortOrder::Coordinate => {
            // Precompute keys to avoid re-deriving tid per comparison.
            let mut keyed: Vec<(i64, i64, usize)> = records
                .par_iter()
                .enumerate()
                .map(|(i, r)| {
                    let (tid, pos) = coordinate_key(r, header);
                    (tid, pos, i)
                })
                .collect();
            keyed.par_sort();
            apply_permutation(records, keyed.into_iter().map(|(_, _, i)| i).collect());
        }
        SortOrder::QueryName => {
            records.par_sort_by(queryname_cmp);
        }
    }
}

/// Reorders `records` according to `perm` (perm[k] = old index of the
/// record that belongs at position k).
fn apply_permutation(records: &mut [AlignmentRecord], perm: Vec<usize>) {
    let mut scratch: Vec<AlignmentRecord> = Vec::with_capacity(records.len());
    for &old in &perm {
        scratch.push(records[old].clone());
    }
    for (slot, rec) in records.iter_mut().zip(scratch) {
        *slot = rec;
    }
}

/// True if `records` are in the given order.
pub fn is_sorted(records: &[AlignmentRecord], header: &SamHeader, order: SortOrder) -> bool {
    match order {
        SortOrder::Coordinate => records
            .windows(2)
            .all(|w| coordinate_key(&w[0], header) <= coordinate_key(&w[1], header)),
        SortOrder::QueryName => {
            records.windows(2).all(|w| queryname_cmp(&w[0], &w[1]) != Ordering::Greater)
        }
    }
}

/// Merges already-sorted runs into one sorted stream (k-way merge) —
/// the building block for merging per-rank converter outputs.
pub fn merge_sorted(
    runs: Vec<Vec<AlignmentRecord>>,
    header: &SamHeader,
    order: SortOrder,
) -> Vec<AlignmentRecord> {
    // Binary-heap k-way merge keyed per order.
    use std::collections::BinaryHeap;

    struct Item {
        key: (i64, i64),
        name_key: Vec<u8>,
        second: bool,
        run: usize,
        idx: usize,
    }
    impl PartialEq for Item {
        fn eq(&self, other: &Self) -> bool {
            self.cmp_key(other) == Ordering::Equal
        }
    }
    impl Eq for Item {}
    impl Item {
        fn cmp_key(&self, other: &Self) -> Ordering {
            self.key
                .cmp(&other.key)
                .then_with(|| self.name_key.cmp(&other.name_key))
                .then_with(|| self.second.cmp(&other.second))
                .then_with(|| self.run.cmp(&other.run))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> Ordering {
            other.cmp_key(self) // reversed: min-heap
        }
    }

    let make_item = |run: usize, idx: usize, rec: &AlignmentRecord| match order {
        SortOrder::Coordinate => Item {
            key: coordinate_key(rec, header),
            name_key: Vec::new(),
            second: false,
            run,
            idx,
        },
        SortOrder::QueryName => Item {
            key: (0, 0),
            name_key: rec.qname.clone(),
            second: rec.flag.contains(ngs_formats::Flags::SECOND_IN_PAIR),
            run,
            idx,
        },
    };

    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (r, run) in runs.iter().enumerate() {
        if let Some(rec) = run.first() {
            heap.push(make_item(r, 0, rec));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(item) = heap.pop() {
        out.push(runs[item.run][item.idx].clone());
        let next = item.idx + 1;
        if next < runs[item.run].len() {
            heap.push(make_item(item.run, next, &runs[item.run][next]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_formats::header::ReferenceSequence;
    use ngs_simgen::{Dataset, DatasetSpec};

    fn header() -> SamHeader {
        SamHeader::from_references(vec![
            ReferenceSequence { name: b"chr1".to_vec(), length: 1_000_000 },
            ReferenceSequence { name: b"chr2".to_vec(), length: 1_000_000 },
        ])
    }

    fn dataset(n: usize) -> Dataset {
        Dataset::generate(&DatasetSpec { n_records: n, ..Default::default() })
    }

    #[test]
    fn coordinate_sort_orders_by_tid_then_pos() {
        let ds = dataset(500);
        let header = ds.header();
        let mut records = ds.records.clone();
        sort_records(&mut records, &header, SortOrder::Coordinate);
        assert!(is_sorted(&records, &header, SortOrder::Coordinate));
        // Content preserved (same multiset).
        assert_eq!(records.len(), ds.records.len());
        let mut a: Vec<_> = records.iter().map(|r| r.qname.clone()).collect();
        let mut b: Vec<_> = ds.records.iter().map(|r| r.qname.clone()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn queryname_sort_pairs_adjacent() {
        let ds = dataset(400);
        let header = ds.header();
        let mut records = ds.records.clone();
        sort_records(&mut records, &header, SortOrder::QueryName);
        assert!(is_sorted(&records, &header, SortOrder::QueryName));
        // Paired reads share names: each name appears in a contiguous run
        // with first-of-pair leading.
        for w in records.windows(2) {
            if w[0].qname == w[1].qname {
                // Within one name, second-of-pair never precedes
                // first-of-pair.
                let a_second = w[0].flag.contains(ngs_formats::Flags::SECOND_IN_PAIR);
                let b_second = w[1].flag.contains(ngs_formats::Flags::SECOND_IN_PAIR);
                assert!(!a_second || b_second, "pair order violated");
            }
        }
    }

    #[test]
    fn unmapped_sort_last_in_coordinate_order() {
        let ds = dataset(300);
        let header = ds.header();
        let mut records = ds.records.clone();
        sort_records(&mut records, &header, SortOrder::Coordinate);
        let first_unmapped = records.iter().position(|r| r.rname == b"*");
        if let Some(i) = first_unmapped {
            assert!(records[i..].iter().all(|r| r.rname == b"*"));
        }
    }

    #[test]
    fn merge_equals_global_sort() {
        let ds = dataset(600);
        let header = ds.header();
        // Split into 4 runs, sort each, merge.
        let mut runs: Vec<Vec<_>> = ds.records.chunks(150).map(<[_]>::to_vec).collect();
        for run in &mut runs {
            sort_records(run, &header, SortOrder::Coordinate);
        }
        let merged = merge_sorted(runs, &header, SortOrder::Coordinate);

        let mut global = ds.records.clone();
        sort_records(&mut global, &header, SortOrder::Coordinate);
        // Keys must agree (ties may order differently; compare keys).
        let keys = |v: &[AlignmentRecord]| -> Vec<(i64, i64)> {
            v.iter().map(|r| coordinate_key(r, &header)).collect()
        };
        assert_eq!(keys(&merged), keys(&global));
        assert!(is_sorted(&merged, &header, SortOrder::Coordinate));
    }

    #[test]
    fn merge_queryname_runs() {
        let ds = dataset(300);
        let header = ds.header();
        let mut runs: Vec<Vec<_>> = ds.records.chunks(100).map(<[_]>::to_vec).collect();
        for run in &mut runs {
            sort_records(run, &header, SortOrder::QueryName);
        }
        let merged = merge_sorted(runs, &header, SortOrder::QueryName);
        assert!(is_sorted(&merged, &header, SortOrder::QueryName));
        assert_eq!(merged.len(), 300);
    }

    #[test]
    fn empty_and_single_inputs() {
        let h = header();
        let mut empty: Vec<AlignmentRecord> = Vec::new();
        sort_records(&mut empty, &h, SortOrder::Coordinate);
        assert!(merge_sorted(vec![], &h, SortOrder::Coordinate).is_empty());
        assert!(is_sorted(&[], &h, SortOrder::QueryName));
    }
}
