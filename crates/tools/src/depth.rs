//! Per-base / per-window depth computation (`samtools depth` analogue)
//! over alignment records, used to sanity-check coverage claims and feed
//! ad-hoc analyses that don't want full histograms.

use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;

/// Depth over one chromosome, at single-base resolution, computed with a
/// difference array (O(reads + length)).
#[derive(Debug, Clone)]
pub struct DepthTrack {
    /// Chromosome name.
    pub chrom: Vec<u8>,
    /// Depth per base (0-based coordinates).
    pub depth: Vec<u32>,
}

impl DepthTrack {
    /// Maximum depth.
    pub fn max(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Mean depth.
    pub fn mean(&self) -> f64 {
        if self.depth.is_empty() {
            0.0
        } else {
            self.depth.iter().map(|&d| d as u64).sum::<u64>() as f64 / self.depth.len() as f64
        }
    }

    /// Fraction of bases with depth ≥ `threshold` ("breadth of coverage").
    pub fn breadth(&self, threshold: u32) -> f64 {
        if self.depth.is_empty() {
            return 0.0;
        }
        self.depth.iter().filter(|&&d| d >= threshold).count() as f64 / self.depth.len() as f64
    }
}

/// Computes per-base depth for every chromosome in the header.
///
/// Each record contributes +1 over its reference span (CIGAR-derived);
/// deletions/skips inside the span are counted as covered, matching the
/// simple `samtools depth -a` approximation the paper's histogram uses.
pub fn depth(header: &SamHeader, records: &[AlignmentRecord]) -> Vec<DepthTrack> {
    // Difference arrays per chromosome.
    let mut diffs: Vec<Vec<i32>> = header
        .references
        .iter()
        .map(|r| vec![0i32; r.length as usize + 1])
        .collect();

    for rec in records {
        let (Some(start), Some(end)) = (rec.start0(), rec.end0()) else {
            continue;
        };
        let Some(tid) = header.reference_id(&rec.rname) else {
            continue;
        };
        let len = header.references[tid].length as i64;
        let s = start.clamp(0, len) as usize;
        let e = end.clamp(0, len) as usize;
        if e > s {
            diffs[tid][s] += 1;
            diffs[tid][e] -= 1;
        }
    }

    header
        .references
        .iter()
        .zip(diffs)
        .map(|(r, diff)| {
            let mut depth = Vec::with_capacity(r.length as usize);
            let mut cur = 0i32;
            for d in &diff[..r.length as usize] {
                cur += d;
                depth.push(cur.max(0) as u32);
            }
            DepthTrack { chrom: r.name.clone(), depth }
        })
        .collect()
}

/// Window-averaged depth (bin size `window`), the compact form for
/// reporting.
pub fn windowed_depth(track: &DepthTrack, window: usize) -> Vec<f64> {
    assert!(window > 0);
    track
        .depth
        .chunks(window)
        .map(|w| w.iter().map(|&d| d as u64).sum::<u64>() as f64 / w.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_formats::header::ReferenceSequence;
    use ngs_formats::sam;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![ReferenceSequence {
            name: b"chr1".to_vec(),
            length: 1000,
        }])
    }

    fn rec(pos: i64, cigar: &str) -> AlignmentRecord {
        sam::parse_record(
            format!("r\t0\tchr1\t{pos}\t60\t{cigar}\t*\t0\t0\t*\t*").as_bytes(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn single_read_depth() {
        let tracks = depth(&header(), &[rec(11, "10M")]);
        let t = &tracks[0];
        assert_eq!(t.depth[9], 0);
        assert!(t.depth[10..20].iter().all(|&d| d == 1));
        assert_eq!(t.depth[20], 0);
        assert_eq!(t.max(), 1);
    }

    #[test]
    fn overlapping_reads_stack() {
        let tracks = depth(&header(), &[rec(1, "20M"), rec(11, "20M"), rec(21, "20M")]);
        let t = &tracks[0];
        assert_eq!(t.depth[5], 1);
        assert_eq!(t.depth[12], 2);
        assert_eq!(t.depth[25], 2);
        assert_eq!(t.max(), 2);
    }

    #[test]
    fn deletion_spans_counted() {
        let tracks = depth(&header(), &[rec(1, "5M10D5M")]);
        let t = &tracks[0];
        // Span = 20 reference bases from 0.
        assert!(t.depth[..20].iter().all(|&d| d == 1));
        assert_eq!(t.depth[20], 0);
    }

    #[test]
    fn read_past_chromosome_end_clamped() {
        let tracks = depth(&header(), &[rec(995, "20M")]);
        let t = &tracks[0];
        assert_eq!(t.depth[994], 1);
        assert_eq!(t.depth[999], 1);
        assert_eq!(t.depth.len(), 1000);
    }

    #[test]
    fn stats_and_windows() {
        let tracks = depth(&header(), &[rec(1, "500M")]);
        let t = &tracks[0];
        assert!((t.mean() - 0.5).abs() < 1e-9);
        assert!((t.breadth(1) - 0.5).abs() < 1e-9);
        let w = windowed_depth(t, 250);
        assert_eq!(w.len(), 4);
        assert!((w[0] - 1.0).abs() < 1e-9);
        assert!((w[3] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn unmapped_and_unknown_ignored() {
        let u = sam::parse_record(b"u\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*", 1).unwrap();
        let x = sam::parse_record(b"x\t0\tchrX\t5\t60\t4M\t*\t0\t0\t*\t*", 1).unwrap();
        let tracks = depth(&header(), &[u, x]);
        assert_eq!(tracks[0].max(), 0);
    }
}
