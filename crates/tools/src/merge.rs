//! Merging converter outputs: the parallel converters emit one file per
//! rank; these helpers stitch part files back into single SAM/BAM files
//! (and merge sorted inputs keeping order).

use std::io::{BufReader, Write};
use std::path::Path;

use ngs_formats::bam::{BamReader, BamWriter};
use ngs_formats::error::{Error, Result};
use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;
use ngs_formats::sam::SamReader;

use crate::sort::{merge_sorted, SortOrder};

/// Concatenates SAM part files (as produced by the SAM converter, where
/// only part 0 carries the header) into one SAM file. Returns records
/// written.
pub fn cat_sam_parts(parts: &[impl AsRef<Path>], output: impl AsRef<Path>) -> Result<u64> {
    if parts.is_empty() {
        return Err(Error::InvalidRecord("no parts to merge".into()));
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(output)?);
    let mut n = 0u64;
    for (i, part) in parts.iter().enumerate() {
        let bytes = std::fs::read(part)?;
        // Sanity: only the first part may contain header lines.
        if i > 0 && bytes.first() == Some(&b'@') {
            return Err(Error::InvalidRecord(format!(
                "part {i} unexpectedly contains a header"
            )));
        }
        n += bytes.iter().filter(|&&b| b == b'\n').count() as u64;
        if i == 0 {
            let header_lines =
                bytes.split_inclusive(|&b| b == b'\n').take_while(|l| l.first() == Some(&b'@'));
            n -= header_lines.count() as u64;
        }
        out.write_all(&bytes)?;
    }
    out.flush()?;
    Ok(n)
}

/// Merges BAM part files (each a standalone BAM with its own header)
/// into one BAM, concatenating records in part order. Headers must have
/// identical reference dictionaries.
pub fn cat_bam_parts(parts: &[impl AsRef<Path>], output: impl AsRef<Path>) -> Result<u64> {
    if parts.is_empty() {
        return Err(Error::InvalidRecord("no parts to merge".into()));
    }
    let first = BamReader::new(BufReader::new(std::fs::File::open(parts[0].as_ref())?))?;
    let header = first.header().clone();
    drop(first);

    let mut writer = BamWriter::new(
        std::io::BufWriter::new(std::fs::File::create(output)?),
        header.clone(),
    )?;
    let mut n = 0u64;
    for part in parts {
        let mut reader = BamReader::new(BufReader::new(std::fs::File::open(part.as_ref())?))?;
        if reader.header().references != header.references {
            return Err(Error::InvalidRecord("BAM parts disagree on references".into()));
        }
        while let Some(rec) = reader.read_record()? {
            writer.write_record(&rec)?;
            n += 1;
        }
    }
    writer.finish()?;
    Ok(n)
}

/// Merges *sorted* SAM inputs into one sorted SAM output (k-way merge on
/// the given order). Inputs are fully read; suited to the laptop-scale
/// shards this workspace produces.
pub fn merge_sorted_sam(
    inputs: &[impl AsRef<Path>],
    order: SortOrder,
    output: impl AsRef<Path>,
) -> Result<u64> {
    if inputs.is_empty() {
        return Err(Error::InvalidRecord("no inputs to merge".into()));
    }
    let mut header: Option<SamHeader> = None;
    let mut runs: Vec<Vec<AlignmentRecord>> = Vec::with_capacity(inputs.len());
    for input in inputs {
        let mut reader =
            SamReader::new(BufReader::new(std::fs::File::open(input.as_ref())?))?;
        if header.is_none() && reader.header().reference_count() > 0 {
            header = Some(reader.header().clone());
        }
        let records: std::result::Result<Vec<_>, _> = reader.records().collect();
        runs.push(records?);
    }
    let header = header.unwrap_or_default();
    let merged = merge_sorted(runs, &header, order);

    let mut writer =
        ngs_formats::sam::SamWriter::new(std::io::BufWriter::new(std::fs::File::create(output)?), &header)?;
    for rec in &merged {
        writer.write_record(rec)?;
    }
    writer.finish()?;
    Ok(merged.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_converter::{ConvertConfig, SamConverter, TargetFormat};
    use ngs_simgen::{Dataset, DatasetSpec};
    use tempfile::tempdir;

    fn dataset(n: usize, sorted: bool) -> Dataset {
        Dataset::generate(&DatasetSpec {
            n_records: n,
            coordinate_sorted: sorted,
            ..Default::default()
        })
    }

    #[test]
    fn sam_parts_roundtrip() {
        let ds = dataset(400, false);
        let dir = tempdir().unwrap();
        let input = dir.path().join("in.sam");
        ds.write_sam(&input).unwrap();
        let report = SamConverter::new(ConvertConfig::with_ranks(4))
            .convert_file(&input, TargetFormat::Sam, dir.path().join("parts"))
            .unwrap();
        let merged = dir.path().join("merged.sam");
        let n = cat_sam_parts(&report.outputs, &merged).unwrap();
        assert_eq!(n, 400);
        assert_eq!(std::fs::read(&merged).unwrap(), std::fs::read(&input).unwrap());
    }

    #[test]
    fn bam_parts_roundtrip() {
        let ds = dataset(300, false);
        let dir = tempdir().unwrap();
        let input = dir.path().join("in.sam");
        ds.write_sam(&input).unwrap();
        let report = SamConverter::new(ConvertConfig::with_ranks(3))
            .convert_file(&input, TargetFormat::Bam, dir.path().join("parts"))
            .unwrap();
        let merged = dir.path().join("merged.bam");
        let n = cat_bam_parts(&report.outputs, &merged).unwrap();
        assert_eq!(n, 300);
        let mut reader =
            BamReader::new(BufReader::new(std::fs::File::open(&merged).unwrap())).unwrap();
        let records: Vec<_> = reader.records().map(|r| r.unwrap()).collect();
        assert_eq!(records, ds.records);
    }

    #[test]
    fn merge_sorted_sam_files() {
        let dir = tempdir().unwrap();
        // Two sorted datasets over the same genome.
        let a = dataset(200, true);
        let spec_b = DatasetSpec { n_records: 150, coordinate_sorted: true, seed: 99, ..Default::default() };
        let b = Dataset::generate(&spec_b);
        let pa = dir.path().join("a.sam");
        let pb = dir.path().join("b.sam");
        a.write_sam(&pa).unwrap();
        b.write_sam(&pb).unwrap();

        let out = dir.path().join("merged.sam");
        let n = merge_sorted_sam(&[&pa, &pb], SortOrder::Coordinate, &out).unwrap();
        assert_eq!(n, 350);
        let mut reader =
            SamReader::new(BufReader::new(std::fs::File::open(&out).unwrap())).unwrap();
        let header = reader.header().clone();
        let records: Vec<_> = reader.records().map(|r| r.unwrap()).collect();
        assert!(crate::sort::is_sorted(&records, &header, SortOrder::Coordinate));
    }

    #[test]
    fn empty_inputs_rejected() {
        let dir = tempdir().unwrap();
        let out = dir.path().join("o");
        assert!(cat_sam_parts(&([] as [&Path; 0]), &out).is_err());
        assert!(cat_bam_parts(&([] as [&Path; 0]), &out).is_err());
        assert!(merge_sorted_sam(&([] as [&Path; 0]), SortOrder::Coordinate, &out).is_err());
    }
}
