//! # ngs-tools
//!
//! samtools-style utilities layered on the `ngs-parallel` stack — the
//! operational glue a downstream adopter needs around the converter:
//!
//! * [`sort`] — coordinate/queryname sorting and k-way merge of sorted
//!   runs (parallel with rayon);
//! * [`merge`] — stitching per-rank converter part files back into
//!   single SAM/BAM files;
//! * [`mod@flagstat`] — `samtools flagstat`-shaped category counts;
//! * [`mod@depth`] — per-base and windowed coverage depth.

pub mod depth;
pub mod flagstat;
pub mod merge;
pub mod sort;

pub use depth::{depth, windowed_depth, DepthTrack};
pub use flagstat::{flagstat, FlagStats};
pub use merge::{cat_bam_parts, cat_sam_parts, merge_sorted_sam};
pub use sort::{is_sorted, merge_sorted, sort_records, SortOrder};
