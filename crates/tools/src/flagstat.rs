//! `flagstat`-style summary statistics over alignment records, computed
//! in parallel over record chunks with rayon.

use std::fmt;

use ngs_formats::flags::Flags;
use ngs_formats::record::AlignmentRecord;
use rayon::prelude::*;

/// Category counts in the style of `samtools flagstat`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlagStats {
    /// Total records.
    pub total: u64,
    /// Secondary alignments.
    pub secondary: u64,
    /// Supplementary alignments.
    pub supplementary: u64,
    /// PCR/optical duplicates.
    pub duplicates: u64,
    /// Mapped records (not UNMAPPED).
    pub mapped: u64,
    /// Paired-in-sequencing records.
    pub paired: u64,
    /// First-of-pair records.
    pub read1: u64,
    /// Second-of-pair records.
    pub read2: u64,
    /// Properly paired records.
    pub properly_paired: u64,
    /// Paired records with both mates mapped.
    pub with_mate_mapped: u64,
    /// Paired records whose mate is unmapped.
    pub singletons: u64,
    /// Records whose mate maps to a different chromosome.
    pub mate_diff_chr: u64,
    /// As above with MAPQ ≥ 5.
    pub mate_diff_chr_mapq5: u64,
    /// QC-failed records.
    pub qc_fail: u64,
}

impl FlagStats {
    /// Accumulates one record.
    pub fn add(&mut self, rec: &AlignmentRecord) {
        self.total += 1;
        let f = rec.flag;
        if f.contains(Flags::SECONDARY) {
            self.secondary += 1;
        }
        if f.contains(Flags::SUPPLEMENTARY) {
            self.supplementary += 1;
        }
        if f.contains(Flags::DUPLICATE) {
            self.duplicates += 1;
        }
        if f.contains(Flags::QC_FAIL) {
            self.qc_fail += 1;
        }
        if !f.is_unmapped() {
            self.mapped += 1;
        }
        if f.is_paired() {
            self.paired += 1;
            if f.contains(Flags::FIRST_IN_PAIR) {
                self.read1 += 1;
            }
            if f.contains(Flags::SECOND_IN_PAIR) {
                self.read2 += 1;
            }
            if f.contains(Flags::PROPER_PAIR) && !f.is_unmapped() {
                self.properly_paired += 1;
            }
            if !f.is_unmapped() && !f.contains(Flags::MATE_UNMAPPED) {
                self.with_mate_mapped += 1;
                if rec.rnext != b"=" && rec.rnext != b"*" && rec.rnext != rec.rname {
                    self.mate_diff_chr += 1;
                    if rec.mapq >= 5 {
                        self.mate_diff_chr_mapq5 += 1;
                    }
                }
            }
            if !f.is_unmapped() && f.contains(Flags::MATE_UNMAPPED) {
                self.singletons += 1;
            }
        }
    }

    /// Merges two partial summaries (for parallel reduction).
    pub fn merge(&self, other: &FlagStats) -> FlagStats {
        FlagStats {
            total: self.total + other.total,
            secondary: self.secondary + other.secondary,
            supplementary: self.supplementary + other.supplementary,
            duplicates: self.duplicates + other.duplicates,
            mapped: self.mapped + other.mapped,
            paired: self.paired + other.paired,
            read1: self.read1 + other.read1,
            read2: self.read2 + other.read2,
            properly_paired: self.properly_paired + other.properly_paired,
            with_mate_mapped: self.with_mate_mapped + other.with_mate_mapped,
            singletons: self.singletons + other.singletons,
            mate_diff_chr: self.mate_diff_chr + other.mate_diff_chr,
            mate_diff_chr_mapq5: self.mate_diff_chr_mapq5 + other.mate_diff_chr_mapq5,
            qc_fail: self.qc_fail + other.qc_fail,
        }
    }

    /// Percentage helper.
    fn pct(part: u64, whole: u64) -> f64 {
        if whole == 0 {
            0.0
        } else {
            part as f64 * 100.0 / whole as f64
        }
    }
}

/// Computes flag statistics over a record slice (parallel).
pub fn flagstat(records: &[AlignmentRecord]) -> FlagStats {
    records
        .par_chunks(8192)
        .map(|chunk| {
            let mut s = FlagStats::default();
            for r in chunk {
                s.add(r);
            }
            s
        })
        .reduce(FlagStats::default, |a, b| a.merge(&b))
}

impl fmt::Display for FlagStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} in total", self.total)?;
        writeln!(f, "{} secondary", self.secondary)?;
        writeln!(f, "{} supplementary", self.supplementary)?;
        writeln!(f, "{} duplicates", self.duplicates)?;
        writeln!(
            f,
            "{} mapped ({:.2}%)",
            self.mapped,
            FlagStats::pct(self.mapped, self.total)
        )?;
        writeln!(f, "{} paired in sequencing", self.paired)?;
        writeln!(f, "{} read1", self.read1)?;
        writeln!(f, "{} read2", self.read2)?;
        writeln!(
            f,
            "{} properly paired ({:.2}%)",
            self.properly_paired,
            FlagStats::pct(self.properly_paired, self.paired)
        )?;
        writeln!(f, "{} with itself and mate mapped", self.with_mate_mapped)?;
        writeln!(
            f,
            "{} singletons ({:.2}%)",
            self.singletons,
            FlagStats::pct(self.singletons, self.paired)
        )?;
        writeln!(f, "{} with mate mapped to a different chr", self.mate_diff_chr)?;
        writeln!(
            f,
            "{} with mate mapped to a different chr (mapQ>=5)",
            self.mate_diff_chr_mapq5
        )?;
        write!(f, "{} QC-failed", self.qc_fail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_formats::sam;
    use ngs_simgen::{Dataset, DatasetSpec};

    fn rec(line: &str) -> AlignmentRecord {
        sam::parse_record(line.as_bytes(), 1).unwrap()
    }

    #[test]
    fn categories_counted() {
        let records = vec![
            rec("a\t99\tchr1\t100\t60\t4M\t=\t200\t104\tACGT\tIIII"), // paired, proper, r1
            rec("a\t147\tchr1\t200\t60\t4M\t=\t100\t-104\tACGT\tIIII"), // paired, proper, r2
            rec("b\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII"),             // unmapped
            rec("c\t1025\tchr1\t5\t60\t4M\t=\t50\t0\tACGT\tIIII"),    // dup + paired (0x401)
            rec("d\t73\tchr1\t9\t60\t4M\t*\t0\t0\tACGT\tIIII"),       // mate unmapped → singleton
            rec("e\t353\tchr1\t9\t60\t4M\tchr2\t7\t0\tACGT\tIIII"),   // secondary + mate diff chr
        ];
        let s = flagstat(&records);
        assert_eq!(s.total, 6);
        assert_eq!(s.mapped, 5);
        assert_eq!(s.secondary, 1);
        assert_eq!(s.duplicates, 1);
        assert_eq!(s.properly_paired, 2);
        assert_eq!(s.singletons, 1);
        assert_eq!(s.mate_diff_chr, 1);
        assert_eq!(s.mate_diff_chr_mapq5, 1);
    }

    #[test]
    fn parallel_equals_serial() {
        let ds = Dataset::generate(&DatasetSpec { n_records: 5000, ..Default::default() });
        let par = flagstat(&ds.records);
        let mut ser = FlagStats::default();
        for r in &ds.records {
            ser.add(r);
        }
        assert_eq!(par, ser);
        assert_eq!(par.total, 5000);
        assert_eq!(par.read1 + par.read2, par.paired);
    }

    #[test]
    fn display_is_samtools_shaped() {
        let ds = Dataset::generate(&DatasetSpec { n_records: 100, ..Default::default() });
        let text = flagstat(&ds.records).to_string();
        assert!(text.contains("in total"));
        assert!(text.contains("properly paired"));
        assert!(text.contains('%'));
    }

    #[test]
    fn empty_input() {
        let s = flagstat(&[]);
        assert_eq!(s, FlagStats::default());
        assert!(s.to_string().contains("0 in total"));
    }
}
