//! Property tests over the tools crate: sorting and merging must be
//! permutation-stable, and flagstat must be invariant under reordering.

use proptest::prelude::*;

use ngs_formats::cigar::{Cigar, CigarOp};
use ngs_formats::flags::Flags;
use ngs_formats::header::{ReferenceSequence, SamHeader};
use ngs_formats::record::AlignmentRecord;
use ngs_tools::{flagstat, is_sorted, merge_sorted, sort_records, SortOrder};

fn header() -> SamHeader {
    SamHeader::from_references(vec![
        ReferenceSequence { name: b"chr1".to_vec(), length: 10_000_000 },
        ReferenceSequence { name: b"chr2".to_vec(), length: 10_000_000 },
    ])
}

prop_compose! {
    fn arb_record()(
        name_num in 0u32..500,
        chrom in 0usize..3, // 2 == unmapped
        pos in 1i64..1_000_000,
        flag_bits in 0u16..0x800,
    ) -> AlignmentRecord {
        let mut rec = AlignmentRecord {
            qname: format!("r{name_num}").into_bytes(),
            flag: Flags(flag_bits),
            rname: b"*".to_vec(),
            pos: 0,
            mapq: 60,
            cigar: Cigar::empty(),
            rnext: b"*".to_vec(),
            pnext: 0,
            tlen: 0,
            seq: b"ACGT".to_vec(),
            qual: vec![30; 4],
            tags: Vec::new(),
        };
        if chrom < 2 {
            rec.flag = Flags(flag_bits & !0x4);
            rec.rname = if chrom == 0 { b"chr1".to_vec() } else { b"chr2".to_vec() };
            rec.pos = pos;
            rec.cigar = Cigar(vec![(4, CigarOp::Match)]);
        } else {
            rec.flag = Flags(flag_bits | 0x4);
        }
        rec
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sort_is_idempotent_and_content_preserving(mut records in proptest::collection::vec(arb_record(), 0..120)) {
        let h = header();
        let original = records.clone();
        for order in [SortOrder::Coordinate, SortOrder::QueryName] {
            sort_records(&mut records, &h, order);
            prop_assert!(is_sorted(&records, &h, order));
            let once = records.clone();
            sort_records(&mut records, &h, order);
            prop_assert_eq!(&records, &once, "idempotent");
            // Same multiset of records.
            let key = |r: &AlignmentRecord| (r.qname.clone(), r.flag.0, r.rname.clone(), r.pos);
            let mut a: Vec<_> = records.iter().map(key).collect();
            let mut b: Vec<_> = original.iter().map(key).collect();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn merge_of_sorted_chunks_is_sorted(records in proptest::collection::vec(arb_record(), 0..150),
                                        chunks in 1usize..6) {
        let h = header();
        let mut runs: Vec<Vec<AlignmentRecord>> = Vec::new();
        let size = records.len().div_ceil(chunks).max(1);
        for chunk in records.chunks(size) {
            let mut run = chunk.to_vec();
            sort_records(&mut run, &h, SortOrder::Coordinate);
            runs.push(run);
        }
        let merged = merge_sorted(runs, &h, SortOrder::Coordinate);
        prop_assert_eq!(merged.len(), records.len());
        prop_assert!(is_sorted(&merged, &h, SortOrder::Coordinate));
    }

    #[test]
    fn flagstat_is_order_invariant(records in proptest::collection::vec(arb_record(), 0..200)) {
        let base = flagstat(&records);
        let mut reversed = records.clone();
        reversed.reverse();
        prop_assert_eq!(flagstat(&reversed), base);
        // Invariants that must always hold.
        prop_assert!(base.mapped <= base.total);
        prop_assert!(base.read1 + base.read2 <= 2 * base.paired);
        prop_assert!(base.properly_paired <= base.paired);
        prop_assert!(base.singletons <= base.paired);
    }
}
