//! The high-level framework facade: one object exposing the paper's
//! whole system — three converter instances, partial conversion, and the
//! parallel statistical analysis steps — behind a small API.

use std::path::{Path, PathBuf};

use ngs_bamx::Region;
use ngs_converter::{
    BamConverter, ConvertConfig, ConvertReport, PreprocessReport, SamConverter, SamxConverter,
    SamxPreprocessReport, TargetFormat,
};
use ngs_formats::error::Result;
use ngs_formats::header::SamHeader;
use ngs_stats::{
    fdr_parallel, nlmeans_distributed, CoverageHistogram, FdrInput, NlMeansParams, NullModel,
};

/// Framework-wide configuration.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Ranks used by every parallel phase.
    pub ranks: usize,
    /// Histogram bin size in bp (paper: 25).
    pub bin_size: u32,
    /// NL-means parameters.
    pub nlmeans: NlMeansParams,
    /// Converter runtime settings.
    pub convert: ConvertConfig,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        let ranks = std::thread::available_parallelism().map(usize::from).unwrap_or(4);
        FrameworkConfig {
            ranks,
            bin_size: 25,
            nlmeans: NlMeansParams::default(),
            convert: ConvertConfig::with_ranks(ranks),
        }
    }
}

impl FrameworkConfig {
    /// Uses `ranks` everywhere.
    pub fn with_ranks(ranks: usize) -> Self {
        FrameworkConfig {
            ranks,
            convert: ConvertConfig::with_ranks(ranks),
            ..Default::default()
        }
    }
}

/// The scalable sequence data analysis framework.
pub struct Framework {
    /// Configuration shared by all operations.
    pub config: FrameworkConfig,
}

impl Framework {
    /// Creates a framework with the given configuration.
    pub fn new(config: FrameworkConfig) -> Self {
        Framework { config }
    }

    /// Creates a framework sized to the machine.
    pub fn auto() -> Self {
        Self::new(FrameworkConfig::default())
    }

    // -- Format conversion ------------------------------------------------

    /// Parallel SAM conversion (converter instance 1).
    pub fn convert_sam(
        &self,
        input: impl AsRef<Path>,
        target: TargetFormat,
        out_dir: impl AsRef<Path>,
    ) -> Result<ConvertReport> {
        SamConverter::new(self.config.convert.clone()).convert_file(input, target, out_dir)
    }

    /// BAM conversion with sequential preprocessing (converter
    /// instance 2). Returns both phase reports.
    pub fn convert_bam(
        &self,
        input: impl AsRef<Path>,
        target: TargetFormat,
        out_dir: impl AsRef<Path>,
    ) -> Result<(PreprocessReport, ConvertReport)> {
        let conv = BamConverter::new(self.config.convert.clone());
        let out_dir = out_dir.as_ref();
        let prep = conv.preprocess(input, out_dir.join("bamx"))?;
        let mut report = conv.convert_bamx(&prep.bamx_path, target, out_dir)?;
        report.preprocess_time = prep.elapsed;
        Ok((prep, report))
    }

    /// Partial BAM conversion over a region string like `chr1:1000-5000`.
    pub fn convert_bam_partial(
        &self,
        input: impl AsRef<Path>,
        region: &str,
        target: TargetFormat,
        out_dir: impl AsRef<Path>,
    ) -> Result<(PreprocessReport, ConvertReport)> {
        let conv = BamConverter::new(self.config.convert.clone());
        let out_dir = out_dir.as_ref();
        let prep = conv.preprocess(input, out_dir.join("bamx"))?;
        let header = ngs_bamx::BamxFile::open(&prep.bamx_path)?.header().clone();
        let region = Region::parse(region, &header)?;
        let mut report = conv.convert_partial(
            &prep.bamx_path,
            &prep.baix_path,
            &region,
            target,
            out_dir,
        )?;
        report.preprocess_time = prep.elapsed;
        Ok((prep, report))
    }

    /// Preprocessing-optimized SAM conversion (converter instance 3).
    pub fn convert_sam_optimized(
        &self,
        input: impl AsRef<Path>,
        target: TargetFormat,
        out_dir: impl AsRef<Path>,
    ) -> Result<(SamxPreprocessReport, ConvertReport)> {
        SamxConverter::new(self.config.convert.clone()).convert_file(input, target, out_dir)
    }

    // -- Interactive querying ---------------------------------------------

    /// Starts a long-lived region-query engine over a directory of
    /// preprocessed BAMX+BAIX shards (as produced by
    /// [`BamConverter::preprocess`](ngs_converter::BamConverter::preprocess)).
    /// The engine runs `ranks` workers and serves concurrent
    /// region→format conversion and coverage-histogram requests with
    /// admission control, deadlines, and cached shard handles — see
    /// `ngs-query`.
    pub fn query_engine(
        &self,
        shard_dir: impl AsRef<Path>,
    ) -> Result<ngs_query::QueryEngine> {
        let config = ngs_query::EngineConfig {
            workers: self.config.ranks,
            convert: ConvertConfig {
                ranks: 1,
                ..self.config.convert.clone()
            },
            ..ngs_query::EngineConfig::default()
        };
        ngs_query::QueryEngine::new(shard_dir, config)
    }

    // -- Streaming pipeline -----------------------------------------------

    /// A bounded streaming pipeline sized like this framework: `ranks`
    /// stage workers over record batches in bounded channels, so peak
    /// memory is proportional to the channel capacity rather than the
    /// input size. Output is byte-identical to the one-shot converter
    /// paths — see `ngs-pipeline` and DESIGN.md §8.
    pub fn pipeline(&self) -> ngs_pipeline::Pipeline {
        ngs_pipeline::Pipeline::new(ngs_pipeline::PipelineConfig::with_workers(self.config.ranks))
    }

    // -- Statistical analysis ---------------------------------------------

    /// Builds the coverage histogram of a SAM file by converting to
    /// BEDGRAPH in parallel and accumulating the parts — the exact
    /// converter → statistics hand-off the paper describes.
    pub fn histogram_from_sam(&self, input: impl AsRef<Path>) -> Result<CoverageHistogram> {
        let input = input.as_ref();
        let tmp = tempfile::tempdir()?;
        let report = self.convert_sam(input, TargetFormat::BedGraph, tmp.path())?;
        let source = ngs_converter::FileSource::open(input)?;
        let (header, _) = ngs_converter::runtime::scan_sam_header(&source)?;
        let mut hist = CoverageHistogram::new(&header, self.config.bin_size);
        for part in &report.outputs {
            let text = std::fs::read(part)?;
            hist.add_bedgraph_text(&text)?;
        }
        Ok(hist)
    }

    /// Parallel NL-means denoising of a histogram.
    pub fn denoise(&self, histogram: &CoverageHistogram) -> Vec<f64> {
        nlmeans_distributed(&histogram.bins, &self.config.nlmeans, self.config.ranks)
    }

    /// Parallel FDR at threshold `p_t` against `rounds` simulated
    /// datasets of the given null model.
    pub fn fdr(
        &self,
        bins: &[f64],
        rounds: usize,
        model: NullModel,
        p_t: f64,
        seed: u64,
    ) -> f64 {
        let input = ngs_stats::build_fdr_input(bins.to_vec(), rounds, model, seed);
        fdr_parallel(&input, p_t, self.config.ranks)
    }

    /// Parallel FDR with a caller-provided input.
    pub fn fdr_with_input(&self, input: &FdrInput, p_t: f64) -> f64 {
        fdr_parallel(input, p_t, self.config.ranks)
    }
}

/// Convenience container tying one input file to its derived artifacts.
#[derive(Debug)]
pub struct AnalysisOutputs {
    /// Converted target files.
    pub converted: Vec<PathBuf>,
    /// The denoised histogram.
    pub denoised: Vec<f64>,
    /// FDR at the requested threshold.
    pub fdr: f64,
}

/// End-to-end demo pipeline: convert → histogram → denoise → FDR.
pub fn analyze_sam(
    framework: &Framework,
    input: impl AsRef<Path>,
    target: TargetFormat,
    out_dir: impl AsRef<Path>,
    fdr_rounds: usize,
    p_t: f64,
) -> Result<AnalysisOutputs> {
    let report = framework.convert_sam(&input, target, &out_dir)?;
    let hist = framework.histogram_from_sam(&input)?;
    let denoised = framework.denoise(&hist);
    let fdr = framework.fdr(&denoised, fdr_rounds, NullModel::Poisson, p_t, 7);
    Ok(AnalysisOutputs { converted: report.outputs, denoised, fdr })
}

/// Re-parses the SAM header of a file (utility for examples).
pub fn sam_header_of(input: impl AsRef<Path>) -> Result<SamHeader> {
    let source = ngs_converter::FileSource::open(input)?;
    let (header, _) = ngs_converter::runtime::scan_sam_header(&source)?;
    Ok(header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_simgen::{Dataset, DatasetSpec};
    use tempfile::tempdir;

    fn make_sam(dir: &Path, n: usize) -> PathBuf {
        let ds = Dataset::generate(&DatasetSpec { n_records: n, ..Default::default() });
        let path = dir.join("input.sam");
        ds.write_sam(&path).unwrap();
        path
    }

    fn make_bam(dir: &Path, n: usize) -> PathBuf {
        let ds = Dataset::generate(&DatasetSpec {
            n_records: n,
            coordinate_sorted: true,
            ..Default::default()
        });
        let path = dir.join("input.bam");
        ds.write_bam(&path).unwrap();
        path
    }

    #[test]
    fn facade_sam_conversion() {
        let dir = tempdir().unwrap();
        let input = make_sam(dir.path(), 300);
        let fw = Framework::new(FrameworkConfig::with_ranks(3));
        let report = fw.convert_sam(&input, TargetFormat::Bed, dir.path().join("out")).unwrap();
        assert_eq!(report.records_in(), 300);
        assert_eq!(report.outputs.len(), 3);
    }

    #[test]
    fn facade_bam_full_and_partial() {
        let dir = tempdir().unwrap();
        let input = make_bam(dir.path(), 400);
        let fw = Framework::new(FrameworkConfig::with_ranks(2));
        let (prep, full) =
            fw.convert_bam(&input, TargetFormat::Sam, dir.path().join("full")).unwrap();
        assert_eq!(prep.records, 400);
        assert_eq!(full.records_in(), 400);

        let (_, partial) = fw
            .convert_bam_partial(&input, "chr1", TargetFormat::Bed, dir.path().join("part"))
            .unwrap();
        assert!(partial.records_in() > 0);
        assert!(partial.records_in() <= 400);
    }

    #[test]
    fn facade_query_engine() {
        let dir = tempdir().unwrap();
        let input = make_bam(dir.path(), 300);
        let fw = Framework::new(FrameworkConfig::with_ranks(2));
        // Preprocess once, then serve queries off the shard directory.
        let conv = ngs_converter::BamConverter::new(fw.config.convert.clone());
        let prep = conv.preprocess(&input, dir.path().join("shards")).unwrap();
        let engine = fw.query_engine(prep.bamx_path.parent().unwrap()).unwrap();
        assert_eq!(engine.store().datasets().unwrap(), vec!["input"]);
        let ticket = engine
            .submit(ngs_query::QueryRequest {
                dataset: "input".into(),
                region: "chr1".into(),
                kind: ngs_query::QueryKind::Coverage { bin_size: 25 },
                deadline: None,
                class: ngs_query::QueryClass::Interactive,
            })
            .unwrap();
        match ticket.wait().outcome.unwrap() {
            ngs_query::QueryOutcome::Coverage { records, .. } => assert!(records > 0),
            other => panic!("expected Coverage, got {other:?}"),
        }
        let stats = engine.drain();
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn facade_streaming_pipeline_matches_batch_conversion() {
        let dir = tempdir().unwrap();
        let input = make_bam(dir.path(), 350);
        let fw = Framework::new(FrameworkConfig::with_ranks(2));
        let conv = ngs_converter::BamConverter::new(ConvertConfig::with_ranks(1));
        let prep = conv.preprocess(&input, dir.path().join("shards")).unwrap();

        let batch =
            conv.convert_bamx(&prep.bamx_path, TargetFormat::Bed, dir.path().join("batch"))
                .unwrap();
        let run = fw
            .pipeline()
            .convert_file(&prep.bamx_path, TargetFormat::Bed, dir.path().join("stream"))
            .unwrap();
        assert_eq!(run.records_in, 350);
        assert!(run.quarantined.is_empty());
        assert_eq!(
            std::fs::read(&run.path).unwrap(),
            std::fs::read(&batch.outputs[0]).unwrap(),
            "facade streaming output must match the batch converter"
        );
    }

    #[test]
    fn facade_histogram_denoise_fdr() {
        let dir = tempdir().unwrap();
        let input = make_sam(dir.path(), 400);
        let mut config = FrameworkConfig::with_ranks(2);
        config.nlmeans = NlMeansParams { search_radius: 5, half_patch: 2, sigma: 5.0 };
        let fw = Framework::new(config);
        let hist = fw.histogram_from_sam(&input).unwrap();
        assert!(!hist.is_empty());
        assert!(hist.bins.iter().sum::<f64>() > 0.0);
        let denoised = fw.denoise(&hist);
        assert_eq!(denoised.len(), hist.len());
        let fdr = fw.fdr(&denoised, 5, NullModel::Poisson, 2.0, 1);
        assert!(fdr >= 0.0);
    }

    #[test]
    fn histogram_matches_direct_accumulation() {
        // Histogram via parallel BEDGRAPH == histogram straight from
        // records: the converter→stats hand-off loses nothing.
        let dir = tempdir().unwrap();
        let ds = Dataset::generate(&DatasetSpec { n_records: 250, ..Default::default() });
        let input = dir.path().join("input.sam");
        ds.write_sam(&input).unwrap();
        let fw = Framework::new(FrameworkConfig::with_ranks(3));
        let via_converter = fw.histogram_from_sam(&input).unwrap();
        let direct =
            CoverageHistogram::from_records(&ds.header(), fw.config.bin_size, &ds.records);
        assert_eq!(via_converter.len(), direct.len());
        for (a, b) in via_converter.bins.iter().zip(&direct.bins) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn analyze_pipeline_runs() {
        let dir = tempdir().unwrap();
        let input = make_sam(dir.path(), 200);
        let mut config = FrameworkConfig::with_ranks(2);
        config.nlmeans = NlMeansParams { search_radius: 3, half_patch: 1, sigma: 5.0 };
        let fw = Framework::new(config);
        let outputs =
            analyze_sam(&fw, &input, TargetFormat::Bed, dir.path().join("out"), 4, 2.0).unwrap();
        assert_eq!(outputs.converted.len(), 2);
        assert!(!outputs.denoised.is_empty());
    }
}
