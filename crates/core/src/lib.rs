//! # ngs-core
//!
//! The top-level facade of the scalable sequence data analysis framework
//! reproduced from *"Removing Sequential Bottlenecks in Analysis of
//! Next-Generation Sequencing Data"* (IPPS 2014): parallel format
//! conversion (SAM, BAM, and preprocessing-optimized SAM instances,
//! full and partial) plus parallel statistical analysis (NL-means
//! denoising and FDR computation) over one [`Framework`] object.
//!
//! ```no_run
//! use ngs_core::{Framework, FrameworkConfig, TargetFormat};
//!
//! let fw = Framework::new(FrameworkConfig::with_ranks(8));
//! let report = fw.convert_sam("reads.sam", TargetFormat::Bed, "out/").unwrap();
//! println!("{} records converted", report.records_out());
//! ```

pub mod framework;

pub use framework::{analyze_sam, sam_header_of, AnalysisOutputs, Framework, FrameworkConfig};

// Re-export the component crates so downstream users need one dependency.
pub use ngs_bamx as bamx;
pub use ngs_bgzf as bgzf;
pub use ngs_cluster as cluster;
pub use ngs_converter as converter;
pub use ngs_fault as fault;
pub use ngs_formats as formats;
pub use ngs_pipeline as pipeline;
pub use ngs_query as query;
pub use ngs_simgen as simgen;
pub use ngs_stats as stats;

pub use ngs_bamx::Region;
pub use ngs_converter::{ConvertConfig, ConvertReport, TargetFormat};
pub use ngs_stats::{CoverageHistogram, NlMeansParams, NullModel};
