//! Streaming-vs-batch equivalence and fault behaviour for `ngs-pipeline`.
//!
//! The contract under test: graph (a) output is **byte-identical** to the
//! one-shot `BamConverter` paths for every registered target format;
//! graph (b) statistics are **bitwise identical** to the batch
//! histogram → NL-means → FDR chain and independent of worker count;
//! structural corruption quarantines a shard while the graph drains
//! cleanly; transient faults are retried to identical output.

use std::path::Path;
use std::sync::Arc;

use ngs_bamx::{Baix, BamxCompression, BamxFile, Region};
use ngs_converter::{BamConverter, ConvertConfig, TargetFormat};
use ngs_fault::{FaultPlan, FaultyFile};
use ngs_formats::record::AlignmentRecord;
use ngs_pipeline::{
    AnalyzeOptions, ManualClock, Pipeline, PipelineConfig, ShardInput, StreamAnalyzer,
    StreamConverter,
};
use ngs_simgen::{Dataset, DatasetSpec};
use ngs_stats::{
    build_fdr_input, fdr_curve, nlmeans_sequential, BinnedCounts, CoverageHistogram, NlMeansParams,
};
use proptest::prelude::*;
use tempfile::tempdir;

fn config(workers: usize, batch_size: usize) -> PipelineConfig {
    PipelineConfig { workers, batch_size, channel_bound: 2, retry_attempts: 3 }
}

fn pipeline(workers: usize, batch_size: usize) -> Pipeline {
    Pipeline::with_clock(config(workers, batch_size), Arc::new(ManualClock::new()))
}

/// Generates a dataset, writes its BAMX + BAIX under `dir`, and returns
/// the two paths.
fn make_shard(dir: &Path, n_records: usize, seed: u64) -> (std::path::PathBuf, std::path::PathBuf) {
    let ds = Dataset::generate(&DatasetSpec {
        n_records,
        n_chroms: 2,
        coordinate_sorted: true,
        seed,
        ..Default::default()
    });
    let bamx = dir.join("input.bamx");
    let baix = dir.join("input.baix");
    ngs_bamx::write_bamx_file(&bamx, &ds.genome.header(), &ds.records, BamxCompression::Plain)
        .unwrap();
    Baix::build(&BamxFile::open(&bamx).unwrap()).unwrap().save(&baix).unwrap();
    (bamx, baix)
}

/// Graph (a), whole file: byte-identical to one-rank
/// `BamConverter::convert_bamx` for every registered target format.
#[test]
fn streaming_full_file_matches_one_shot_for_every_format() {
    let dir = tempdir().unwrap();
    let (bamx, _) = make_shard(dir.path(), 800, 11);
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));

    for format in TargetFormat::ALL {
        let oneshot_dir = dir.path().join(format!("oneshot-{format:?}"));
        let report = conv.convert_bamx(&bamx, format, &oneshot_dir).unwrap();
        assert_eq!(report.outputs.len(), 1);

        let stream_dir = dir.path().join(format!("stream-{format:?}"));
        let run = pipeline(4, 64).convert_file(&bamx, format, &stream_dir).unwrap();

        assert_eq!(
            run.path.file_name(),
            report.outputs[0].file_name(),
            "{format:?}: same part naming"
        );
        assert_eq!(
            std::fs::read(&run.path).unwrap(),
            std::fs::read(&report.outputs[0]).unwrap(),
            "{format:?}: streaming must be byte-identical to one-shot"
        );
        assert_eq!(run.records_in, report.records_in());
        assert_eq!(run.records_out, report.records_out());
        assert!(run.quarantined.is_empty());
        assert_eq!(run.transient_retries, 0);
        assert!(!run.metrics.cancelled);
    }
}

/// The streaming source honors the durability manifest: in a
/// [`ShardRepo`](ngs_bamx::repo::ShardRepo)-managed directory a verified
/// shard streams byte-identically to the one-shot path, while a torn
/// shard is refused with a typed error before any batch is produced.
#[test]
fn streaming_source_honors_the_manifest() {
    use ngs_bamx::repo::ShardRepo;
    use ngs_formats::error::{DecodeErrorKind, Error};

    let dir = tempdir().unwrap();
    let scratch = tempdir().unwrap();
    let (bamx, baix) = make_shard(scratch.path(), 400, 23);
    let repo = ShardRepo::create(dir.path()).unwrap();
    repo.publish_bytes("input.bamx", &std::fs::read(&bamx).unwrap()).unwrap();
    repo.publish_bytes("input.baix", &std::fs::read(&baix).unwrap()).unwrap();
    let managed_bamx = dir.path().join("input.bamx");

    // Verified shard: streams exactly like the unmanaged one-shot path.
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let report = conv.convert_bamx(&bamx, TargetFormat::Sam, dir.path().join("oneshot")).unwrap();
    let run = pipeline(2, 64)
        .convert_file(&managed_bamx, TargetFormat::Sam, dir.path().join("stream"))
        .unwrap();
    assert_eq!(
        std::fs::read(&run.path).unwrap(),
        std::fs::read(&report.outputs[0]).unwrap()
    );

    // Torn shard (truncated behind the manifest's back): refused with a
    // typed Torn error before the graph starts.
    let bytes = std::fs::read(&managed_bamx).unwrap();
    std::fs::write(&managed_bamx, &bytes[..bytes.len() - 7]).unwrap();
    let err = pipeline(2, 64)
        .convert_file(&managed_bamx, TargetFormat::Sam, dir.path().join("torn"))
        .unwrap_err();
    match err {
        Error::Decode(d) => assert_eq!(d.kind, DecodeErrorKind::Torn, "{d}"),
        other => panic!("expected a typed Torn decode error, got: {other}"),
    }
}

/// Graph (a), region subset: byte-identical to one-rank
/// `BamConverter::convert_partial` (same BAIX lookup, same stem).
#[test]
fn streaming_region_matches_one_shot_partial_for_every_format() {
    let dir = tempdir().unwrap();
    let (bamx, baix) = make_shard(dir.path(), 900, 23);
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let probe = BamxFile::open(&bamx).unwrap();

    for region_text in ["chr1:1-4000", "chr2:1-100000"] {
        let region = Region::parse(region_text, probe.header()).unwrap();
        for format in TargetFormat::ALL {
            let oneshot_dir = dir.path().join(format!("oneshot-{region_text}-{format:?}"));
            let report =
                conv.convert_partial(&bamx, &baix, &region, format, &oneshot_dir).unwrap();

            let stream_dir = dir.path().join(format!("stream-{region_text}-{format:?}"));
            let run = pipeline(3, 32)
                .convert_region(&bamx, &baix, &region, format, &stream_dir)
                .unwrap();

            assert_eq!(run.path.file_name(), report.outputs[0].file_name());
            assert_eq!(
                std::fs::read(&run.path).unwrap(),
                std::fs::read(&report.outputs[0]).unwrap(),
                "{region_text} as {format:?}"
            );
            assert_eq!(run.records_in, report.records_in());
        }
    }
}

/// Graph (b): bins, denoised signal, and FDR scores bitwise match the
/// batch chain, for any worker count (the integer reduction makes the
/// result scheduling-independent).
#[test]
fn streaming_analysis_matches_batch_statistics_bitwise() {
    let dir = tempdir().unwrap();
    let (bamx, _) = make_shard(dir.path(), 1_200, 37);
    let options = AnalyzeOptions {
        bin_size: 50,
        nlmeans: Some(NlMeansParams { search_radius: 10, half_patch: 3, sigma: 5.0 }),
        ..Default::default()
    };

    // Sequential integer reference: the same BinnedCounts accumulation
    // the workers use, applied in one pass — the streaming result must be
    // bitwise identical to this for ANY worker count, because the merge
    // is an exact integer reduction.
    let shard = BamxFile::open(&bamx).unwrap();
    let records = shard.read_range(0, shard.len()).unwrap();
    let mut reference = BinnedCounts::new(shard.header(), options.bin_size);
    for rec in &records {
        reference.add_alignment(rec);
    }
    let expected = reference.into_histogram();
    let expected_denoised =
        nlmeans_sequential(&expected.bins, options.nlmeans.as_ref().unwrap());
    let expected_fdr = fdr_curve(
        &build_fdr_input(
            expected_denoised.clone(),
            options.fdr_rounds,
            options.null_model,
            options.seed,
        ),
        &options.fdr_thresholds,
        1,
    );

    // Per-record float accumulation (the batch CoverageHistogram path)
    // agrees to within float-summation noise but not bitwise — the
    // integer path exists precisely to remove that accumulation-order
    // dependence.
    let mut float_hist = CoverageHistogram::new(shard.header(), options.bin_size);
    for rec in &records {
        float_hist.add_alignment(rec);
    }

    for workers in [1, 2, 8] {
        let run = Pipeline::with_clock(config(workers, 97), Arc::new(ManualClock::new()))
            .analyze_file(&bamx, options.clone())
            .unwrap();
        let same_bits = run.histogram.bins.len() == expected.bins.len()
            && run
                .histogram
                .bins
                .iter()
                .zip(&expected.bins)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same_bits, "{workers} workers: bins must be bitwise identical");
        assert_eq!(run.denoised.as_deref(), Some(expected_denoised.as_slice()));
        assert_eq!(run.fdr, expected_fdr);
        assert_eq!(run.records, records.len() as u64);
        assert!(run.quarantined.is_empty());
        for (a, b) in run.histogram.bins.iter().zip(&float_hist.bins) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "float path agreement");
        }
    }
}

/// Opens a BGZF shard through a `FaultyFile` so open succeeds (block
/// headers are pristine) but record reads hit a corrupt payload — a
/// structural `DecodeError` mid-stream.
fn corrupt_bgzf_shard(dir: &Path, seed: u64) -> Arc<BamxFile> {
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 300,
        n_chroms: 2,
        coordinate_sorted: true,
        seed,
        ..Default::default()
    });
    let path = dir.join("bad.bamx");
    ngs_bamx::write_bamx_file(&path, &ds.genome.header(), &ds.records, BamxCompression::Bgzf)
        .unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte inside the first block's deflate payload: the CRC check
    // in `decompress_block` turns this into a typed decode error.
    let target = bytes.len() / 2;
    bytes[target] ^= 0xFF;
    let source = FaultyFile::new(bytes, FaultPlan::new(vec![]));
    Arc::new(BamxFile::open_with(Box::new(source), "bad.bamx").unwrap())
}

fn good_shard(dir: &Path, name: &str, n: usize, seed: u64) -> Arc<BamxFile> {
    let ds = Dataset::generate(&DatasetSpec {
        n_records: n,
        n_chroms: 2,
        coordinate_sorted: true,
        seed,
        ..Default::default()
    });
    let path = dir.join(name);
    ngs_bamx::write_bamx_file(&path, &ds.genome.header(), &ds.records, BamxCompression::Plain)
        .unwrap();
    Arc::new(BamxFile::open(&path).unwrap())
}

/// A structurally corrupt shard is quarantined: the run succeeds, reports
/// the quarantine, and still converts every healthy shard.
#[test]
fn corrupt_shard_is_quarantined_and_graph_drains() {
    let dir = tempdir().unwrap();
    let good = good_shard(dir.path(), "good.bamx", 400, 5);
    let bad = corrupt_bgzf_shard(dir.path(), 5);
    let good_records = good.len();

    let converter = StreamConverter::with_clock(config(2, 32), Arc::new(ManualClock::new()));
    let run = converter
        .convert(
            vec![
                ShardInput { name: "good".into(), bamx: Arc::clone(&good), indices: None },
                ShardInput { name: "bad".into(), bamx: bad, indices: None },
            ],
            TargetFormat::Sam,
            dir.path(),
            "mixed",
            0,
            true,
        )
        .unwrap();

    assert_eq!(run.quarantined.len(), 1, "exactly the corrupt shard");
    assert_eq!(run.quarantined[0].shard, "bad");
    assert_eq!(run.records_in, good_records, "good shard fully converted");
    assert!(!run.metrics.cancelled, "quarantine is not a cancellation");
    assert!(run.path.exists());

    // Same fault model on graph (b).
    let bad = corrupt_bgzf_shard(dir.path(), 5);
    let analyzer = StreamAnalyzer::with_clock(config(2, 32), Arc::new(ManualClock::new()));
    let run = analyzer
        .analyze(
            vec![
                ShardInput { name: "good".into(), bamx: good, indices: None },
                ShardInput { name: "bad".into(), bamx: bad, indices: None },
            ],
            AnalyzeOptions::default(),
        )
        .unwrap();
    assert_eq!(run.quarantined.len(), 1);
    assert_eq!(run.records, good_records);
}

/// A `ReadAt` source that serves pristine bytes until `arm()` is called
/// (so `BamxFile::open` succeeds), then fails the next `remaining` read
/// calls with a transient I/O error — flaky-mount behaviour scoped to
/// the streaming phase.
struct FlakyShard {
    bytes: Vec<u8>,
    armed: std::sync::atomic::AtomicBool,
    remaining: std::sync::atomic::AtomicU32,
}

impl FlakyShard {
    fn new(bytes: Vec<u8>, failures: u32) -> Self {
        FlakyShard {
            bytes,
            armed: std::sync::atomic::AtomicBool::new(false),
            remaining: std::sync::atomic::AtomicU32::new(failures),
        }
    }

    fn arm(&self) {
        self.armed.store(true, std::sync::atomic::Ordering::SeqCst);
    }
}

impl ngs_bgzf::ReadAt for FlakyShard {
    fn len(&self) -> std::io::Result<u64> {
        Ok(self.bytes.len() as u64)
    }

    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        use std::sync::atomic::Ordering;
        if self.armed.load(Ordering::SeqCst) {
            let took = self
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok();
            if took {
                return Err(std::io::Error::other("injected flaky read"));
            }
        }
        let start = (offset as usize).min(self.bytes.len());
        let n = buf.len().min(self.bytes.len() - start);
        buf[..n].copy_from_slice(&self.bytes[start..start + n]);
        Ok(n)
    }
}

/// Transient I/O faults within the retry budget are absorbed inside the
/// source and the output stays byte-identical to a pristine run.
#[test]
fn transient_faults_are_retried_to_identical_output() {
    let dir = tempdir().unwrap();
    let (bamx_path, _) = make_shard(dir.path(), 500, 7);
    let clean_dir = dir.path().join("clean");
    let clean = pipeline(2, 64)
        .convert_file(&bamx_path, TargetFormat::Sam, &clean_dir)
        .unwrap();

    let bytes = std::fs::read(&bamx_path).unwrap();
    let flaky = Arc::new(FlakyShard::new(bytes, 2));
    let shard = Arc::new(
        BamxFile::open_with(Box::new(Arc::clone(&flaky)), "flaky.bamx").unwrap(),
    );
    flaky.arm();

    let converter = StreamConverter::with_clock(config(2, 64), Arc::new(ManualClock::new()));
    let run = converter
        .convert(
            vec![ShardInput { name: "flaky".into(), bamx: shard, indices: None }],
            TargetFormat::Sam,
            &dir.path().join("faulty"),
            "input",
            0,
            true,
        )
        .unwrap();

    assert!(run.transient_retries > 0, "the injected faults must be hit");
    assert!(run.quarantined.is_empty(), "transient ≠ structural");
    assert_eq!(
        std::fs::read(&run.path).unwrap(),
        std::fs::read(&clean.path).unwrap(),
        "retries must not change a single output byte"
    );
}

/// A transient fault burst beyond the retry budget fails the whole run
/// with a transient error (callers may retry the run), still draining
/// every thread.
#[test]
fn exhausted_transient_budget_fails_cleanly() {
    let dir = tempdir().unwrap();
    let (bamx_path, _) = make_shard(dir.path(), 300, 9);
    let bytes = std::fs::read(&bamx_path).unwrap();
    let flaky = Arc::new(FlakyShard::new(bytes, u32::MAX));
    let shard = Arc::new(
        BamxFile::open_with(Box::new(Arc::clone(&flaky)), "dead.bamx").unwrap(),
    );
    flaky.arm();

    let converter = StreamConverter::with_clock(config(2, 64), Arc::new(ManualClock::new()));
    let err = converter
        .convert(
            vec![ShardInput { name: "dead".into(), bamx: shard, indices: None }],
            TargetFormat::Bed,
            dir.path(),
            "dead",
            0,
            true,
        )
        .unwrap_err();
    assert!(err.is_transient(), "budget exhaustion keeps the transient class: {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for any record count, batch size, and worker count, the
    /// streaming path is byte-identical to one-shot conversion for
    /// **every** registered target format.
    #[test]
    fn prop_streaming_matches_one_shot_all_formats(
        n_records in 1usize..400,
        batch_size in 1usize..200,
        workers in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let dir = tempdir().unwrap();
        let (bamx, _) = make_shard(dir.path(), n_records, seed);
        let conv = BamConverter::new(ConvertConfig::with_ranks(1));
        for format in TargetFormat::ALL {
            let oneshot_dir = dir.path().join(format!("o-{format:?}"));
            let report = conv.convert_bamx(&bamx, format, &oneshot_dir).unwrap();
            let stream_dir = dir.path().join(format!("s-{format:?}"));
            let run = pipeline(workers, batch_size)
                .convert_file(&bamx, format, &stream_dir)
                .unwrap();
            prop_assert_eq!(
                std::fs::read(&run.path).unwrap(),
                std::fs::read(&report.outputs[0]).unwrap(),
                "{:?} n={} batch={} workers={}", format, n_records, batch_size, workers
            );
        }
    }

    /// Property: a source stage fed arbitrary fault plans never panics —
    /// every outcome is `Ok` or a typed error, and the graph always
    /// drains (the call returns).
    #[test]
    fn prop_source_never_panics_under_fault_plans(seed in 0u64..600) {
        let dir = tempdir().unwrap();
        let ds = Dataset::generate(&DatasetSpec {
            n_records: 120,
            n_chroms: 2,
            coordinate_sorted: true,
            seed,
            ..Default::default()
        });
        let path = dir.path().join("f.bamx");
        let compression =
            if seed % 2 == 0 { BamxCompression::Plain } else { BamxCompression::Bgzf };
        ngs_bamx::write_bamx_file(&path, &ds.genome.header(), &ds.records, compression).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let plan = FaultPlan::random(seed, bytes.len() as u64);
        let Ok(shard) = BamxFile::open_with(
            Box::new(FaultyFile::new(bytes, plan)),
            "fault.bamx",
        ) else {
            // Rejecting at open is an equally valid typed outcome.
            return Ok(());
        };
        let shard = Arc::new(shard);

        let converter = StreamConverter::with_clock(config(2, 16), Arc::new(ManualClock::new()));
        let _ = converter.convert(
            vec![ShardInput { name: "fault".into(), bamx: Arc::clone(&shard), indices: None }],
            TargetFormat::Sam,
            dir.path(),
            "fault",
            0,
            true,
        );
        let analyzer = StreamAnalyzer::with_clock(config(2, 16), Arc::new(ManualClock::new()));
        let _ = analyzer.analyze(
            vec![ShardInput { name: "fault".into(), bamx: shard, indices: None }],
            AnalyzeOptions::default(),
        );
    }
}

/// Zero-record shards and empty index lists stream to valid (prologue-
/// only) output, matching one-shot behaviour.
#[test]
fn empty_inputs_stream_to_prologue_only_output() {
    let dir = tempdir().unwrap();
    let ds = Dataset::generate(&DatasetSpec { n_records: 0, ..Default::default() });
    let bamx = dir.path().join("empty.bamx");
    ngs_bamx::write_bamx_file(&bamx, &ds.genome.header(), &[], BamxCompression::Plain).unwrap();

    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let report = conv.convert_bamx(&bamx, TargetFormat::Sam, dir.path().join("o")).unwrap();
    let run = pipeline(2, 64)
        .convert_file(&bamx, TargetFormat::Sam, dir.path().join("s"))
        .unwrap();
    assert_eq!(
        std::fs::read(&run.path).unwrap(),
        std::fs::read(&report.outputs[0]).unwrap()
    );
    assert_eq!(run.records_in, 0);
}

/// The keyed regroup stage (DESIGN.md §10), registered in the
/// equivalence suite: for any worker count and spill budget, the
/// ordered sink's merged `(key, arrival-seq)` stream equals an
/// in-memory stable sort of the same keyed items, and forced spills
/// publish through a clean crash-safe manifest.
#[test]
fn regroup_stage_matches_stable_sort_for_any_budget() {
    use ngs_bamx::repo::ShardRepo;
    use ngs_pipeline::{
        stage_fn, Batch, Graph, Keyed, RegroupConfig, RegroupSink, Regrouper, SpillCodec,
        SourceCtx, U64Codec,
    };

    let items: Vec<u64> =
        (0..2_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48).collect();
    let key_of = |v: u64| (v % 13).to_be_bytes().to_vec();
    let mut expected: Vec<(Vec<u8>, u64, u64)> = items
        .iter()
        .enumerate()
        .map(|(i, &v)| (key_of(v), i as u64, v))
        .collect();
    expected.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    for budget in [0u64, 512] {
        let dir = tempdir().unwrap();
        for workers in [1usize, 4] {
            let feed = items.clone();
            let graph = Graph::source(
                config(workers, 64),
                Arc::new(ManualClock::new()),
                "regroup-source",
                move |ctx: &mut SourceCtx<u64>| {
                    for chunk in feed.chunks(64) {
                        ctx.emit(chunk.to_vec())?;
                    }
                    Ok(())
                },
            )
            .stage("regroup-key", workers, move |_| {
                stage_fn(move |b: Batch<u64>| {
                    Ok(Batch {
                        seq: b.seq,
                        items: b
                            .items
                            .into_iter()
                            .map(|v| Keyed { key: key_of(v), item: v })
                            .collect(),
                    })
                })
            });
            let regrouper = Regrouper::new(
                RegroupConfig {
                    spill_budget: budget,
                    spill_dir: (budget > 0).then(|| dir.path().join(format!("w{workers}"))),
                    ..Default::default()
                },
                Arc::new(U64Codec) as Arc<dyn SpillCodec<u64>>,
            )
            .unwrap();
            let (mut merged, _) =
                graph.run("regroup", true, RegroupSink::new(regrouper)).unwrap();

            let mut got = Vec::with_capacity(items.len());
            while let Some((key, seq, item)) = merged.next_entry().unwrap() {
                got.push((key, seq, item));
            }
            assert_eq!(got, expected, "workers={workers} budget={budget}");
            if budget > 0 {
                assert!(merged.stats().spill_runs > 1, "tiny budget must force spilling");
                let spill = dir.path().join(format!("w{workers}"));
                assert!(ShardRepo::is_managed(&spill));
                assert!(ShardRepo::open(&spill).unwrap().verify().unwrap().is_clean());
            } else {
                assert_eq!(merged.stats().spill_runs, 0);
            }
        }
    }
}

/// Cost model sanity on real records: a record's gauge cost covers its
/// heap payload, so the working-set proxy cannot undercount.
#[test]
fn record_cost_covers_heap_payload() {
    use ngs_pipeline::Cost;
    let ds = Dataset::generate(&DatasetSpec { n_records: 10, ..Default::default() });
    for rec in &ds.records {
        let c = rec.cost_bytes();
        assert!(c as usize >= std::mem::size_of::<AlignmentRecord>() + rec.seq.len());
    }
}
