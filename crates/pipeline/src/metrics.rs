//! Per-stage pipeline metrics and the in-flight memory gauge.
//!
//! Every duration is measured on the graph's injected [`Clock`], so a
//! test running under a `ManualClock` sees exact (usually zero)
//! durations and stays deterministic, while production graphs report
//! real throughput, queue depth, and stall time per stage.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::clock::Clock;

/// Lock-free accumulator one stage's workers share while running.
#[derive(Debug, Default)]
pub(crate) struct StageRecorder {
    pub(crate) batches_in: AtomicU64,
    pub(crate) batches_out: AtomicU64,
    pub(crate) items_in: AtomicU64,
    pub(crate) items_out: AtomicU64,
    /// Nanoseconds spent inside stage code (decode/convert/write).
    pub(crate) busy_nanos: AtomicU64,
    /// Nanoseconds blocked waiting for input (upstream starvation).
    pub(crate) recv_wait_nanos: AtomicU64,
    /// Nanoseconds blocked sending output (downstream backpressure).
    pub(crate) send_wait_nanos: AtomicU64,
    /// Deepest input-queue occupancy observed, in batches.
    pub(crate) max_queue_depth: AtomicUsize,
}

impl StageRecorder {
    pub(crate) fn add_nanos(slot: &AtomicU64, d: Duration) {
        slot.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    pub(crate) fn observe_depth(&self, depth: usize) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str, workers: usize) -> StageMetrics {
        StageMetrics {
            name: name.to_string(),
            workers,
            batches_in: self.batches_in.load(Ordering::Relaxed),
            batches_out: self.batches_out.load(Ordering::Relaxed),
            items_in: self.items_in.load(Ordering::Relaxed),
            items_out: self.items_out.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            recv_wait: Duration::from_nanos(self.recv_wait_nanos.load(Ordering::Relaxed)),
            send_wait: Duration::from_nanos(self.send_wait_nanos.load(Ordering::Relaxed)),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one stage's counters after a graph finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMetrics {
    /// Stage name as given to the builder.
    pub name: String,
    /// Worker threads the stage ran (1 for source and sink).
    pub workers: usize,
    /// Batches received from upstream (0 for the source).
    pub batches_in: u64,
    /// Batches emitted downstream (0 for the sink).
    pub batches_out: u64,
    /// Items received from upstream.
    pub items_in: u64,
    /// Items emitted downstream.
    pub items_out: u64,
    /// Time spent inside stage code, summed over workers.
    pub busy: Duration,
    /// Time blocked waiting for input (upstream starvation).
    pub recv_wait: Duration,
    /// Time blocked on a full output channel (downstream backpressure).
    pub send_wait: Duration,
    /// Deepest input-queue occupancy observed, in batches.
    pub max_queue_depth: usize,
}

/// Whole-graph metrics returned by `Graph::run`.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Per-stage snapshots in topological order (source first).
    pub stages: Vec<StageMetrics>,
    /// Peak bytes buffered in flight across all channels — the proxy for
    /// the pipeline's peak working set (see [`MemoryGauge`]).
    pub peak_buffered_bytes: u64,
    /// Wall time of the run on the graph's clock.
    pub elapsed: Duration,
    /// True when the graph was cancelled (by error or by token).
    pub cancelled: bool,
}

impl PipelineMetrics {
    /// Items the sink absorbed per second of elapsed time (0 when the
    /// clock did not advance, e.g. under a `ManualClock`).
    pub fn sink_items_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        match self.stages.last() {
            Some(s) if secs > 0.0 => s.items_in as f64 / secs,
            _ => 0.0,
        }
    }

    /// Publishes this run into a shared `ngs-obs` registry: per-stage
    /// `pipeline.<stage>.*` counters (items/batches in and out, busy and
    /// wait nanoseconds) plus the whole-graph
    /// `pipeline.peak_buffered_bytes` gauge and `pipeline.runs` counter.
    /// Repeated runs accumulate — the registry is the long-lived view,
    /// the `PipelineMetrics` value the per-run one.
    pub fn publish(&self, registry: &ngs_obs::Registry) {
        registry.counter("pipeline.runs").inc();
        if self.cancelled {
            registry.counter("pipeline.cancelled").inc();
        }
        registry.gauge("pipeline.peak_buffered_bytes").set(self.peak_buffered_bytes);
        registry
            .histogram("pipeline.run_elapsed_ns")
            .record_duration(self.elapsed);
        for s in &self.stages {
            let base = format!("pipeline.{}", s.name);
            registry.counter(&format!("{base}.batches_in")).add(s.batches_in);
            registry.counter(&format!("{base}.batches_out")).add(s.batches_out);
            registry.counter(&format!("{base}.items_in")).add(s.items_in);
            registry.counter(&format!("{base}.items_out")).add(s.items_out);
            registry.histogram(&format!("{base}.busy_ns")).record_duration(s.busy);
            registry
                .histogram(&format!("{base}.recv_wait_ns"))
                .record_duration(s.recv_wait);
            registry
                .histogram(&format!("{base}.send_wait_ns"))
                .record_duration(s.send_wait);
            registry
                .gauge(&format!("{base}.max_queue_depth"))
                .set(s.max_queue_depth as u64);
        }
    }
}

/// Tracks bytes resident in channel buffers: charged when a batch is
/// created, released when the next stage has consumed it. The peak is
/// the streaming analogue of the batch path's peak RSS — bounded by
/// `channel_bound × batch cost × stages` instead of the input size.
#[derive(Debug, Default)]
pub struct MemoryGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl MemoryGauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds in-flight bytes and updates the peak.
    pub fn charge(&self, bytes: u64) {
        let now = self.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Removes in-flight bytes.
    pub fn release(&self, bytes: u64) {
        self.current.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Highest in-flight byte count observed so far.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Bytes currently in flight (charged but not yet released).
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }
}

/// Measures one closure on the clock and accumulates into `slot`.
pub(crate) fn timed<T>(clock: &Arc<dyn Clock>, slot: &AtomicU64, f: impl FnOnce() -> T) -> T {
    let t0 = clock.now();
    let out = f();
    StageRecorder::add_nanos(slot, clock.now().saturating_sub(t0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn gauge_tracks_peak() {
        let g = MemoryGauge::new();
        g.charge(100);
        g.charge(50);
        assert_eq!(g.peak(), 150);
        g.release(100);
        g.charge(20);
        assert_eq!(g.peak(), 150, "peak is sticky");
    }

    #[test]
    fn timed_accumulates_on_manual_clock() {
        let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
        let slot = AtomicU64::new(0);
        timed(&clock, &slot, || ());
        assert_eq!(slot.load(Ordering::Relaxed), 0, "manual clock → exact zero");
    }

    #[test]
    fn publish_maps_stages_into_registry_names() {
        let r = StageRecorder::default();
        r.items_in.store(7, Ordering::Relaxed);
        r.busy_nanos.store(1_000, Ordering::Relaxed);
        let metrics = PipelineMetrics {
            stages: vec![r.snapshot("decode", 2)],
            peak_buffered_bytes: 4096,
            elapsed: Duration::from_millis(3),
            cancelled: false,
        };
        let registry = ngs_obs::Registry::new();
        metrics.publish(&registry);
        metrics.publish(&registry); // runs accumulate
        let snap = registry.snapshot();
        assert_eq!(snap.counters["pipeline.runs"], 2);
        assert_eq!(snap.counters["pipeline.decode.items_in"], 14);
        assert_eq!(snap.gauges["pipeline.peak_buffered_bytes"].peak, 4096);
        assert_eq!(snap.histograms["pipeline.decode.busy_ns"].sum, 2_000);
        assert!(!snap.counters.contains_key("pipeline.cancelled"));
    }

    #[test]
    fn recorder_snapshot_names_stage() {
        let r = StageRecorder::default();
        r.items_in.store(7, Ordering::Relaxed);
        r.observe_depth(3);
        r.observe_depth(1);
        let m = r.snapshot("decode", 2);
        assert_eq!(m.name, "decode");
        assert_eq!(m.workers, 2);
        assert_eq!(m.items_in, 7);
        assert_eq!(m.max_queue_depth, 3);
    }
}
