//! Cooperative cancellation for pipeline graphs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Every stage of a graph polls the token
/// between batches; setting it makes the whole graph wind down at the
/// next batch boundary (no thread is ever killed mid-write).
///
/// Cancellation is *cooperative and edge-safe*: a blocked producer is
/// released not by the token but by its consumers dropping their channel
/// ends, so the runner always drains queues after cancelling (see
/// `Graph::run`).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_between_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        a.cancel(); // idempotent
        assert!(b.is_cancelled());
    }
}
