//! Injected time sources shared by the long-lived subsystems.
//!
//! The canonical [`Clock`] / [`ManualClock`] / [`SystemClock`] live in
//! `ngs_obs::clock` (the observability crate sits below every
//! instrumented subsystem); this module re-exports them so existing
//! `ngs_pipeline::clock` paths — and `ngs_query::clock`, which
//! re-exports this module in turn — keep working on the one shared time
//! axis. Don't fork a second one.

pub use ngs_obs::clock::{Clock, ManualClock, SystemClock};
