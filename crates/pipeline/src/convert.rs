//! Graph (a): shard-decode → convert → format-emit.
//!
//! Streams `RecordConverter` output without ever materializing the full
//! record vector: the source decodes bounded record batches from BAMX
//! shards, a worker pool converts each batch to target-format bytes, and
//! an ordered sink writes them in global record order — so the part file
//! is **byte-identical** to the one-shot
//! `BamConverter::convert_partial` / `convert_index_list` output for the
//! same records (same name formula, same prologue, same bytes; enforced
//! by `tests/streaming_identity.rs` and the query-engine suite).
//!
//! Fault model (DESIGN.md §7): transient I/O errors are retried inside
//! the source up to the configured budget; a structural `DecodeError`
//! quarantines the offending shard — the source stops reading it,
//! records the quarantine, and continues with the remaining shards while
//! the graph drains cleanly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ngs_bamx::BamxFile;
use ngs_converter::runtime::RankOutput;
use ngs_converter::target::builtin;
use ngs_converter::TargetFormat;
use ngs_formats::error::{Error, Result};
use ngs_formats::record::AlignmentRecord;

use crate::clock::{Clock, SystemClock};
use crate::engine::{stage_fn, Batch, Graph, PipelineConfig, Sink, SourceCtx, Stage};
use crate::metrics::PipelineMetrics;

/// One BAMX shard feeding a streaming graph.
pub struct ShardInput {
    /// Shard name used in quarantine reports.
    pub name: String,
    /// Open shard handle (cached handles from `ngs-query` plug in here).
    pub bamx: Arc<BamxFile>,
    /// Sorted record indices to stream (`None` = every record) — the
    /// same work unit as `convert_index_list`.
    pub indices: Option<Vec<u64>>,
}

/// A shard the source abandoned after a structural decode error.
#[derive(Debug, Clone)]
pub struct ShardQuarantine {
    /// The shard's [`ShardInput::name`].
    pub shard: String,
    /// The decode error that condemned it.
    pub error: String,
}

/// Result of one streaming conversion run.
#[derive(Debug)]
pub struct ConvertRun {
    /// The part file produced (`{stem}.part{rank:04}.{ext}`).
    pub path: PathBuf,
    /// Records decoded from the shards.
    pub records_in: u64,
    /// Target objects emitted (some formats skip records).
    pub records_out: u64,
    /// Output bytes written.
    pub bytes_out: u64,
    /// Per-stage metrics and the peak-working-set proxy.
    pub metrics: PipelineMetrics,
    /// Shards abandoned on structural corruption (output is partial when
    /// non-empty).
    pub quarantined: Vec<ShardQuarantine>,
    /// Transient read faults absorbed by in-source retries.
    pub transient_retries: u64,
}

/// The streaming counterpart of `BamConverter`: drives graph (a) over
/// one or more shards.
pub struct StreamConverter {
    /// Engine sizing (workers, batch size, channel bound, retries).
    pub config: PipelineConfig,
    /// Output write-buffer size (matches `ConvertConfig::write_buffer`).
    pub write_buffer: usize,
    clock: Arc<dyn Clock>,
}

impl StreamConverter {
    /// A converter on the system clock.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// A converter on an injected clock (deterministic tests).
    pub fn with_clock(config: PipelineConfig, clock: Arc<dyn Clock>) -> Self {
        StreamConverter { config, write_buffer: 1 << 20, clock }
    }

    /// Streams `shards` into `out_dir/{stem}.part{rank:04}.{ext}`.
    ///
    /// `rank` and `write_prologue` mirror `convert_index_list`, so a
    /// single-shard run with `rank = 0, write_prologue = true` is
    /// byte-identical to the one-shot path. All shards must share the
    /// first shard's reference dictionary.
    pub fn convert(
        &self,
        shards: Vec<ShardInput>,
        target: TargetFormat,
        out_dir: &Path,
        stem: &str,
        rank: usize,
        write_prologue: bool,
    ) -> Result<ConvertRun> {
        let header = validate_shards(&shards)?;
        std::fs::create_dir_all(out_dir)?;

        let quarantined = Arc::new(Mutex::new(Vec::new()));
        let retries = Arc::new(AtomicU64::new(0));
        let records_out = Arc::new(AtomicU64::new(0));
        let source = record_source(
            shards,
            self.config.batch_size.max(1),
            Arc::clone(&quarantined),
            Arc::clone(&retries),
        );
        let graph = Graph::source(
            self.config.clone(),
            Arc::clone(&self.clock),
            "shard-decode",
            source,
        );

        let ((path, out_count, bytes_out), metrics) = match target {
            TargetFormat::Bam => {
                let path = out_dir.join(format!("{stem}.part{rank:04}.bam"));
                let file = std::io::BufWriter::with_capacity(
                    self.write_buffer,
                    std::fs::File::create(&path)?,
                );
                let sink = BamSink {
                    writer: ngs_formats::bam::BamWriter::new(file, header)?,
                    path,
                    records_out: 0,
                };
                // BAM re-encoding is stateful and sequential; the
                // parallel stage is a pass-through so decode and encode
                // still overlap.
                graph
                    .stage("convert", 1, |_| stage_fn(Ok))
                    .run("format-emit", true, sink)?
            }
            other => {
                // Converters are `Send + Sync` with `&self` conversion,
                // so one instance serves every worker.
                let converter: Arc<dyn ngs_converter::RecordConverter> =
                    Arc::from(builtin(other).ok_or_else(|| {
                        Error::InvalidRecord(format!("no line converter for {other:?}"))
                    })?);
                let mut out = RankOutput::create(
                    out_dir,
                    stem,
                    rank,
                    converter.extension(),
                    self.write_buffer,
                )?;
                if write_prologue {
                    let mut prologue = Vec::new();
                    converter.prologue(&header, &mut prologue);
                    out.write_all(&prologue)?;
                }
                let counter = Arc::clone(&records_out);
                graph
                    .stage("convert", self.config.workers.max(1), move |_| {
                        Box::new(ConvertStage {
                            converter: Arc::clone(&converter),
                            out_count: Arc::clone(&counter),
                        }) as Box<dyn Stage<AlignmentRecord, u8>>
                    })
                    .run("format-emit", true, LineSink { out })?
            }
        };

        let records_in = metrics.stages.first().map(|s| s.items_out).unwrap_or(0);
        let quarantined = quarantined.lock().map(|q| q.clone()).unwrap_or_default();
        Ok(ConvertRun {
            path,
            records_in,
            records_out: out_count + records_out.load(Ordering::Relaxed),
            bytes_out,
            metrics,
            quarantined,
            transient_retries: retries.load(Ordering::Relaxed),
        })
    }
}

/// Checks every shard against the first shard's reference dictionary and
/// returns that header.
pub fn validate_shards(shards: &[ShardInput]) -> Result<ngs_formats::header::SamHeader> {
    let first = shards.first().ok_or_else(|| {
        Error::InvalidRecord("streaming conversion needs at least one shard".into())
    })?;
    let header = first.bamx.header().clone();
    for s in &shards[1..] {
        let refs = &s.bamx.header().references;
        let same = refs.len() == header.references.len()
            && refs
                .iter()
                .zip(&header.references)
                .all(|(a, b)| a.name == b.name && a.length == b.length);
        if !same {
            return Err(Error::InvalidRecord(format!(
                "shard {:?} has a different reference dictionary than {:?}",
                s.name, first.name
            )));
        }
    }
    Ok(header)
}

/// Builds the shared record source for the pipeline graphs (including
/// downstream crates like `ngs-collate`): decodes bounded batches per
/// shard (coalescing index runs exactly like `convert_index_list`),
/// retries transient I/O in place, and quarantines structurally corrupt
/// shards without failing the run.
pub fn record_source(
    shards: Vec<ShardInput>,
    batch_size: usize,
    quarantined: Arc<Mutex<Vec<ShardQuarantine>>>,
    retries: Arc<AtomicU64>,
) -> impl FnOnce(&mut SourceCtx<AlignmentRecord>) -> Result<()> {
    move |ctx| {
        for shard in shards {
            match stream_shard(&shard, batch_size, &retries, ctx) {
                Ok(()) => {}
                // Transient budget exhausted or graph cancelled: the
                // run itself fails (cleanly drained by the engine).
                Err(e) if e.is_transient() => return Err(e),
                Err(e) if ctx.is_cancelled() => return Err(e),
                // Structural corruption: quarantine this shard, keep
                // streaming the others.
                Err(e) => {
                    if let Ok(mut q) = quarantined.lock() {
                        q.push(ShardQuarantine {
                            shard: shard.name.clone(),
                            error: e.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Streams one shard's records into the graph in `batch_size` chunks.
fn stream_shard(
    shard: &ShardInput,
    batch_size: usize,
    retries: &AtomicU64,
    ctx: &mut SourceCtx<AlignmentRecord>,
) -> Result<()> {
    let attempts = ctx.retry_attempts().max(1);
    let read = |lo: u64, hi: u64| -> Result<Vec<AlignmentRecord>> {
        let mut attempt = 0u32;
        loop {
            match shard.bamx.read_range(lo, hi) {
                Ok(records) => return Ok(records),
                Err(e) if e.is_transient() && attempt + 1 < attempts => {
                    attempt += 1;
                    retries.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
    };
    match &shard.indices {
        None => {
            let n = shard.bamx.len();
            let mut cur = 0u64;
            while cur < n {
                let hi = (cur + batch_size as u64).min(n);
                ctx.emit(read(cur, hi)?)?;
                cur = hi;
            }
        }
        Some(indices) => {
            // Coalesce consecutive runs of indices into range reads,
            // exactly as `convert_index_list` does, then split runs into
            // bounded batches.
            let mut i = 0usize;
            while i < indices.len() {
                let run_start = indices[i];
                let mut j = i + 1;
                while j < indices.len() && indices[j] == indices[j - 1] + 1 {
                    j += 1;
                }
                let run_end = indices[j - 1] + 1;
                let mut cur = run_start;
                while cur < run_end {
                    let hi = (cur + batch_size as u64).min(run_end);
                    ctx.emit(read(cur, hi)?)?;
                    cur = hi;
                }
                i = j;
            }
        }
    }
    Ok(())
}

/// Worker-local conversion of record batches to target-format bytes.
struct ConvertStage {
    converter: Arc<dyn ngs_converter::RecordConverter>,
    out_count: Arc<AtomicU64>,
}

impl Stage<AlignmentRecord, u8> for ConvertStage {
    fn process(&mut self, batch: Batch<AlignmentRecord>, out: &mut Vec<Batch<u8>>) -> Result<()> {
        let mut buf = Vec::with_capacity(batch.items.len() * 64);
        let mut emitted = 0u64;
        for rec in &batch.items {
            if self.converter.convert(rec, &mut buf) {
                emitted += 1;
            }
        }
        self.out_count.fetch_add(emitted, Ordering::Relaxed);
        out.push(Batch { seq: batch.seq, items: buf });
        Ok(())
    }
}

/// Ordered byte sink over the converter's per-rank output writer.
struct LineSink {
    out: RankOutput,
}

impl Sink<u8> for LineSink {
    type Output = (PathBuf, u64, u64);

    fn absorb(&mut self, batch: Batch<u8>) -> Result<()> {
        if batch.items.is_empty() {
            return Ok(());
        }
        self.out.write_all(&batch.items)
    }

    fn finish(self) -> Result<(PathBuf, u64, u64)> {
        let (path, bytes) = self.out.finish()?;
        // records_out is tallied by the convert stage for line formats.
        Ok((path, 0, bytes))
    }
}

/// Ordered BAM re-encoding sink.
struct BamSink {
    writer: ngs_formats::bam::BamWriter<std::io::BufWriter<std::fs::File>>,
    path: PathBuf,
    records_out: u64,
}

impl Sink<AlignmentRecord> for BamSink {
    type Output = (PathBuf, u64, u64);

    fn absorb(&mut self, batch: Batch<AlignmentRecord>) -> Result<()> {
        for rec in &batch.items {
            self.writer.write_record(rec)?;
            self.records_out += 1;
        }
        Ok(())
    }

    fn finish(self) -> Result<(PathBuf, u64, u64)> {
        self.writer.finish()?;
        let bytes = std::fs::metadata(&self.path)?.len();
        Ok((self.path, self.records_out, bytes))
    }
}
