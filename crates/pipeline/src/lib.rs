//! # ngs-pipeline
//!
//! A staged streaming dataflow engine for the paper's two workloads,
//! removing the remaining *memory* bottleneck: the batch paths
//! (`ngs-converter`, `ngs-stats`) materialize whole record vectors,
//! while these graphs stream bounded record batches through typed
//! stages connected by bounded channels — peak working set proportional
//! to `channel_bound × batch cost`, not input size, at the same (or
//! better) throughput.
//!
//! * [`engine`] — the generic graph: [`Graph::source`] →
//!   [`Graph::stage`]× → [`Graph::run`]; backpressure, shared worker
//!   pools, sequence-ordered sinks, cooperative cancellation, per-stage
//!   metrics on an injected [`Clock`].
//! * [`convert`] — graph (a): shard-decode → convert → format-emit,
//!   byte-identical to the one-shot `convert_partial` /
//!   `convert_index_list` paths (Section III of the paper).
//! * [`analysis`] — graph (b): shard-decode → integer coverage
//!   accumulation → fused NL-means + Algorithm 2 FDR sink
//!   (Section IV).
//! * [`clock`] — the canonical `Clock` trait; `ngs-query` re-exports it
//!   so all long-lived subsystems share one time source.
//!
//! DESIGN.md §8 documents the stage graph, batch sizing, backpressure,
//! cancellation, and failure semantics.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod analysis;
pub mod cancel;
pub mod clock;
pub mod convert;
pub mod engine;
pub mod metrics;
pub mod regroup;

use std::path::Path;
use std::sync::Arc;

use ngs_bamx::repo::ShardRepo;
use ngs_bamx::{Baix, BamxFile, Region};
use ngs_converter::TargetFormat;
use ngs_formats::error::Result;

pub use analysis::{AnalyzeOptions, AnalyzeRun, StreamAnalyzer};
pub use cancel::CancelToken;
pub use clock::{Clock, ManualClock, SystemClock};
pub use convert::{record_source, ConvertRun, ShardInput, ShardQuarantine, StreamConverter};
pub use engine::{stage_fn, Batch, Cost, Graph, PipelineConfig, Sink, SourceCtx, Stage};
pub use metrics::{MemoryGauge, PipelineMetrics, StageMetrics};
pub use regroup::{
    Key, Keyed, RegroupConfig, RegroupSink, RegroupStats, Regrouped, Regrouper, SpillCodec,
    U64Codec,
};

/// High-level facade over both graphs, mirroring the one-shot
/// `BamConverter` entry points file-for-file (same stems, same part
/// naming, byte-identical output).
pub struct Pipeline {
    /// Engine sizing.
    pub config: PipelineConfig,
    clock: Arc<dyn Clock>,
}

impl Pipeline {
    /// A pipeline on the system clock.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// A pipeline on an injected clock (deterministic tests).
    pub fn with_clock(config: PipelineConfig, clock: Arc<dyn Clock>) -> Self {
        Pipeline { config, clock }
    }

    /// Streams a whole BAMX file to `target`; output byte-identical to
    /// rank 0 of a one-rank `BamConverter::convert_bamx` run.
    pub fn convert_file(
        &self,
        bamx_path: impl AsRef<Path>,
        target: TargetFormat,
        out_dir: impl AsRef<Path>,
    ) -> Result<ConvertRun> {
        let bamx_path = bamx_path.as_ref();
        let stem = file_stem(bamx_path);
        let bamx = Arc::new(open_verified(bamx_path)?);
        let shard = ShardInput { name: stem.clone(), bamx, indices: None };
        self.converter().convert(vec![shard], target, out_dir.as_ref(), &stem, 0, true)
    }

    /// Streams the records of one region (located via the BAIX index) to
    /// `target`; output byte-identical to a one-rank
    /// `BamConverter::convert_partial` run (same stem formula).
    pub fn convert_region(
        &self,
        bamx_path: impl AsRef<Path>,
        baix_path: impl AsRef<Path>,
        region: &Region,
        target: TargetFormat,
        out_dir: impl AsRef<Path>,
    ) -> Result<ConvertRun> {
        let bamx_path = bamx_path.as_ref();
        let bamx = Arc::new(open_verified(bamx_path)?);
        let ref_id = region.resolve(bamx.header())?;
        let baix = Baix::load(baix_path.as_ref())?;
        let indices = baix.shard_indices(baix.locate(ref_id, region));
        let stem = format!(
            "{}.{}",
            file_stem(bamx_path),
            region.to_string().replace([':', '-'], "_")
        );
        let shard = ShardInput { name: stem.clone(), bamx, indices: Some(indices) };
        self.converter().convert(vec![shard], target, out_dir.as_ref(), &stem, 0, true)
    }

    /// Streams a whole BAMX file through the coverage → NL-means → FDR
    /// graph.
    pub fn analyze_file(
        &self,
        bamx_path: impl AsRef<Path>,
        options: AnalyzeOptions,
    ) -> Result<AnalyzeRun> {
        let bamx_path = bamx_path.as_ref();
        let bamx = Arc::new(open_verified(bamx_path)?);
        let shard = ShardInput { name: file_stem(bamx_path), bamx, indices: None };
        StreamAnalyzer::with_clock(self.config.clone(), Arc::clone(&self.clock))
            .analyze(vec![shard], options)
    }

    fn converter(&self) -> StreamConverter {
        StreamConverter::with_clock(self.config.clone(), Arc::clone(&self.clock))
    }
}

fn file_stem(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "input".into())
}

/// Opens a BAMX shard for streaming, honoring the durability manifest:
/// when the shard's directory is [`ShardRepo`]-managed, the artifact
/// must verify (length + CRC32 + layout fingerprint) before a single
/// byte enters the graph — a torn or scribbled shard fails here with a
/// typed error instead of feeding the pipeline corrupt batches.
/// Unmanaged directories open directly, as before.
fn open_verified(bamx_path: &Path) -> Result<BamxFile> {
    if let (Some(dir), Some(name)) = (bamx_path.parent(), bamx_path.file_name()) {
        if ShardRepo::is_managed(dir) {
            ShardRepo::open(dir)?.verify_artifact(&name.to_string_lossy())?;
        }
    }
    BamxFile::open(bamx_path)
}
