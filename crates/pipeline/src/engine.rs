//! The staged streaming dataflow engine.
//!
//! A graph is a chain of typed stages connected by **bounded** crossbeam
//! channels carrying record [`Batch`]es:
//!
//! ```text
//! source ──▶ [stage × workers] ──▶ … ──▶ sink (caller thread)
//! ```
//!
//! * **Backpressure** — every channel is bounded by
//!   [`PipelineConfig::channel_bound`]; a producer facing a full channel
//!   blocks (the time shows up as `send_wait` in that stage's metrics),
//!   so the peak working set is proportional to
//!   `channel_bound × batch cost`, not to the input size.
//! * **Shared worker pool** — a stage may run several workers; they
//!   share one MPMC input channel, so a slow batch never idles the rest
//!   of the pool.
//! * **Ordering** — the source stamps batches with a dense sequence
//!   number; an *ordered* sink reorders by it (bounded by the in-flight
//!   window), which is what lets parallel converters produce output
//!   byte-identical to the sequential path.
//! * **Cancellation** — cooperative via [`CancelToken`]: stages poll the
//!   token between batches, the runner drains queues so no producer
//!   stays blocked, and every thread is joined before `run` returns —
//!   the graph always drains cleanly, on success, failure, or cancel.
//! * **Failure semantics** — the first stage error wins: it is recorded,
//!   the token is cancelled, and `run` returns the error after the
//!   drain. Sources own fault policy (retry transient reads, quarantine
//!   structurally corrupt shards) — see `convert::StreamConverter`.
//! * **Metrics** — per-stage throughput, queue depth, and stall time on
//!   the injected [`Clock`]; under a `ManualClock` every duration is
//!   exactly zero, keeping tests deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use ngs_formats::error::{Error, Result};

use crate::cancel::CancelToken;
use crate::clock::Clock;
use crate::metrics::{timed, MemoryGauge, PipelineMetrics, StageRecorder};

/// How often blocked stages re-check the cancellation token.
const POLL: Duration = Duration::from_millis(20);

/// Sentinel message distinguishing "the graph was cancelled under me"
/// from real stage failures (the former is never recorded as the run's
/// error).
const CANCEL_MSG: &str = "pipeline cancelled";

fn cancel_error() -> Error {
    Error::Io(std::io::Error::other(CANCEL_MSG))
}

fn is_cancel_error(e: &Error) -> bool {
    matches!(e, Error::Io(io) if io.to_string() == CANCEL_MSG)
}

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Workers for parallel transform stages (sources and sinks are
    /// single-threaded by construction).
    pub workers: usize,
    /// Records per batch flowing between stages.
    pub batch_size: usize,
    /// Bound of every inter-stage channel, in batches — the backpressure
    /// window.
    pub channel_bound: usize,
    /// In-source retry budget for transient I/O faults.
    pub retry_attempts: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            workers: std::thread::available_parallelism().map(usize::from).unwrap_or(4),
            batch_size: 1024,
            channel_bound: 4,
            retry_attempts: 3,
        }
    }
}

impl PipelineConfig {
    /// A config with `workers` transform workers and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        PipelineConfig { workers, ..Default::default() }
    }
}

/// Approximate resident size of a payload item, for the
/// [`MemoryGauge`] working-set proxy.
pub trait Cost {
    /// Approximate bytes this item keeps resident while buffered.
    fn cost_bytes(&self) -> u64;

    /// Cost of a slice of items (overridable for cheap bulk cases).
    fn slice_cost(items: &[Self]) -> u64
    where
        Self: Sized,
    {
        items.iter().map(Cost::cost_bytes).sum()
    }
}

impl Cost for u8 {
    fn cost_bytes(&self) -> u64 {
        1
    }

    fn slice_cost(items: &[Self]) -> u64 {
        items.len() as u64
    }
}

impl Cost for u64 {
    fn cost_bytes(&self) -> u64 {
        8
    }
}

impl Cost for f64 {
    fn cost_bytes(&self) -> u64 {
        8
    }
}

impl Cost for ngs_formats::record::AlignmentRecord {
    fn cost_bytes(&self) -> u64 {
        (std::mem::size_of::<Self>() + self.heap_size()) as u64
    }
}

/// A numbered batch of items flowing through a graph. Sequence numbers
/// are dense (0, 1, 2, …) in source-emission order; 1:1 stages preserve
/// them so ordered sinks can restore global order.
#[derive(Debug, Clone)]
pub struct Batch<T> {
    /// Dense source-assigned sequence number.
    pub seq: u64,
    /// Payload items.
    pub items: Vec<T>,
}

impl<T: Cost> Batch<T> {
    /// Gauge cost of the payload.
    pub fn cost(&self) -> u64 {
        T::slice_cost(&self.items)
    }
}

/// A transform stage: consumes input batches, pushes zero or more output
/// batches per call. One instance exists per worker, so implementations
/// may keep worker-local state (e.g. a partial histogram) and flush it
/// from [`Stage::finish`] once the input channel closes.
///
/// Stages feeding an *ordered* sink must be 1:1 — exactly one output
/// batch per input batch, carrying the input's `seq`.
pub trait Stage<I: Send, O: Send>: Send {
    /// Processes one batch, pushing outputs onto `out`.
    fn process(&mut self, batch: Batch<I>, out: &mut Vec<Batch<O>>) -> Result<()>;

    /// Flushes worker-local state after the upstream channel closed.
    fn finish(&mut self, _out: &mut Vec<Batch<O>>) -> Result<()> {
        Ok(())
    }
}

/// Adapts a 1:1 closure into a boxed [`Stage`].
pub fn stage_fn<I, O, F>(f: F) -> Box<dyn Stage<I, O>>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(Batch<I>) -> Result<Batch<O>> + Send + 'static,
{
    struct FnStage<F>(F);
    impl<I: Send, O: Send, F: FnMut(Batch<I>) -> Result<Batch<O>> + Send> Stage<I, O>
        for FnStage<F>
    {
        fn process(&mut self, batch: Batch<I>, out: &mut Vec<Batch<O>>) -> Result<()> {
            out.push((self.0)(batch)?);
            Ok(())
        }
    }
    Box::new(FnStage(f))
}

/// The terminal stage, driven on the caller's thread by [`Graph::run`].
pub trait Sink<T: Send> {
    /// What the sink yields once the graph has drained.
    type Output;

    /// Absorbs one batch (in global order when the run is ordered).
    fn absorb(&mut self, batch: Batch<T>) -> Result<()>;

    /// Finalizes (flush + close) and yields the output.
    fn finish(self) -> Result<Self::Output>;
}

/// Handles shared by every thread of one graph.
struct Core {
    config: PipelineConfig,
    clock: Arc<dyn Clock>,
    cancel: CancelToken,
    gauge: Arc<MemoryGauge>,
    fail: Arc<Mutex<Option<Error>>>,
    handles: Vec<JoinHandle<()>>,
    stages: Vec<(String, usize, Arc<StageRecorder>)>,
}

impl Core {
    /// Records the run's first real failure and cancels the graph.
    fn fail(fail: &Mutex<Option<Error>>, cancel: &CancelToken, e: Error) {
        if !is_cancel_error(&e) {
            if let Ok(mut slot) = fail.lock() {
                slot.get_or_insert(e);
            }
        }
        cancel.cancel();
    }
}

/// The source side of a graph under construction: chain transform stages
/// with [`Graph::stage`], then terminate with [`Graph::run`].
pub struct Graph<T: Cost + Send + 'static> {
    core: Core,
    rx: Receiver<Batch<T>>,
}

/// What the source closure writes into; assigns sequence numbers and
/// applies backpressure.
pub struct SourceCtx<T: Cost + Send> {
    tx: Sender<Batch<T>>,
    next_seq: u64,
    cancel: CancelToken,
    rec: Arc<StageRecorder>,
    gauge: Arc<MemoryGauge>,
    clock: Arc<dyn Clock>,
    retry_budget: u32,
}

impl<T: Cost + Send> SourceCtx<T> {
    /// Emits one batch downstream, blocking while the channel is full
    /// (the block is the backpressure and is metered as `send_wait`).
    /// Returns an error once the graph has been cancelled — sources
    /// should propagate it with `?` to wind down promptly.
    pub fn emit(&mut self, items: Vec<T>) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        if self.cancel.is_cancelled() {
            return Err(cancel_error());
        }
        let batch = Batch { seq: self.next_seq, items };
        self.next_seq += 1;
        let cost = batch.cost();
        self.rec.batches_out.fetch_add(1, Ordering::Relaxed);
        self.rec.items_out.fetch_add(batch.items.len() as u64, Ordering::Relaxed);
        self.gauge.charge(cost);
        let t0 = self.clock.now();
        let sent = self.tx.send(batch).is_ok();
        StageRecorder::add_nanos(
            &self.rec.send_wait_nanos,
            self.clock.now().saturating_sub(t0),
        );
        if sent {
            Ok(())
        } else {
            self.gauge.release(cost);
            Err(cancel_error())
        }
    }

    /// True once the graph has been cancelled; long scans should check
    /// this between reads.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Number of transient-retry attempts the graph budget allows
    /// ([`PipelineConfig::retry_attempts`], threaded through at build
    /// time so sources need no config handle).
    pub fn retry_attempts(&self) -> u32 {
        self.retry_budget
    }
}

/// The run-facing half of `SourceCtx` construction.
struct SourceSeed<T: Cost + Send> {
    tx: Sender<Batch<T>>,
    cancel: CancelToken,
    rec: Arc<StageRecorder>,
    gauge: Arc<MemoryGauge>,
    clock: Arc<dyn Clock>,
    retry_budget: u32,
}

impl<T: Cost + Send + 'static> Graph<T> {
    /// Starts a graph: spawns the source thread, which fills the first
    /// bounded channel through its [`SourceCtx`].
    pub fn source<F>(
        config: PipelineConfig,
        clock: Arc<dyn Clock>,
        name: &str,
        source: F,
    ) -> Graph<T>
    where
        F: FnOnce(&mut SourceCtx<T>) -> Result<()> + Send + 'static,
    {
        let cancel = CancelToken::new();
        let gauge = Arc::new(MemoryGauge::new());
        let fail = Arc::new(Mutex::new(None));
        let (tx, rx) = bounded(config.channel_bound.max(1));
        let rec = Arc::new(StageRecorder::default());
        let mut core = Core {
            config,
            clock: Arc::clone(&clock),
            cancel: cancel.clone(),
            gauge: Arc::clone(&gauge),
            fail: Arc::clone(&fail),
            handles: Vec::new(),
            stages: vec![(name.to_string(), 1, Arc::clone(&rec))],
        };
        let seed = SourceSeed {
            tx,
            cancel: cancel.clone(),
            rec,
            gauge,
            clock,
            retry_budget: core.config.retry_attempts,
        };
        let spawned = std::thread::Builder::new()
            .name(format!("ngs-pipe-{name}"))
            .spawn(move || {
                let mut ctx = SourceCtx {
                    tx: seed.tx,
                    next_seq: 0,
                    cancel: seed.cancel.clone(),
                    rec: seed.rec,
                    gauge: seed.gauge,
                    clock: seed.clock,
                    retry_budget: seed.retry_budget,
                };
                if let Err(e) = source(&mut ctx) {
                    Core::fail(&fail, &seed.cancel, e);
                }
                // Dropping ctx closes the channel: downstream drains.
            });
        match spawned {
            Ok(h) => core.handles.push(h),
            Err(e) => Core::fail(&core.fail, &core.cancel, Error::Io(e)),
        }
        Graph { core, rx }
    }

    /// Appends a transform stage with `workers` parallel workers sharing
    /// one bounded input channel. `factory` builds one [`Stage`]
    /// instance per worker (worker-local state).
    pub fn stage<O, F>(mut self, name: &str, workers: usize, mut factory: F) -> Graph<O>
    where
        O: Cost + Send + 'static,
        F: FnMut(usize) -> Box<dyn Stage<T, O>>,
    {
        let workers = workers.max(1);
        let (tx, rx_next) = bounded(self.core.config.channel_bound.max(1));
        let rec = Arc::new(StageRecorder::default());
        self.core.stages.push((name.to_string(), workers, Arc::clone(&rec)));
        for w in 0..workers {
            let stage = factory(w);
            let rx = self.rx.clone();
            let tx = tx.clone();
            let rec = Arc::clone(&rec);
            let cancel = self.core.cancel.clone();
            let gauge = Arc::clone(&self.core.gauge);
            let clock = Arc::clone(&self.core.clock);
            let fail = Arc::clone(&self.core.fail);
            let spawned = std::thread::Builder::new()
                .name(format!("ngs-pipe-{name}-{w}"))
                .spawn(move || {
                    stage_worker(stage, rx, tx, rec, cancel, gauge, clock, fail)
                });
            match spawned {
                Ok(h) => self.core.handles.push(h),
                Err(e) => Core::fail(&self.core.fail, &self.core.cancel, Error::Io(e)),
            }
        }
        Graph { core: self.core, rx: rx_next }
    }

    /// The graph's cancellation token (for external graceful stops).
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel.clone()
    }

    /// Drives `sink` on the calling thread until the graph drains, then
    /// joins every stage thread and returns the sink's output plus the
    /// run metrics. `ordered` restores global batch order by sequence
    /// number (requires 1:1 upstream stages).
    ///
    /// Always drains cleanly: on a stage/sink error or a cancel, queued
    /// batches are received and discarded so no producer stays blocked,
    /// all threads are joined, and the first recorded error (if any) is
    /// returned.
    pub fn run<S>(self, name: &str, ordered: bool, mut sink: S) -> Result<(S::Output, PipelineMetrics)>
    where
        S: Sink<T>,
    {
        let Core { clock, cancel, gauge, fail, handles, mut stages, .. } = self.core;
        let t_start = clock.now();
        let rec = Arc::new(StageRecorder::default());
        stages.push((name.to_string(), 1, Arc::clone(&rec)));

        let mut pending: BTreeMap<u64, Batch<T>> = BTreeMap::new();
        let mut next_seq = 0u64;
        let absorb = |sink: &mut S, batch: Batch<T>| -> Result<()> {
            let cost = batch.cost();
            let r = timed(&clock, &rec.busy_nanos, || sink.absorb(batch));
            gauge.release(cost);
            r
        };

        loop {
            if cancel.is_cancelled() {
                break;
            }
            rec.observe_depth(self.rx.len());
            let t0 = clock.now();
            let recv = self.rx.recv_timeout(POLL);
            StageRecorder::add_nanos(&rec.recv_wait_nanos, clock.now().saturating_sub(t0));
            match recv {
                Ok(batch) => {
                    rec.batches_in.fetch_add(1, Ordering::Relaxed);
                    rec.items_in.fetch_add(batch.items.len() as u64, Ordering::Relaxed);
                    let result = if ordered {
                        pending.insert(batch.seq, batch);
                        let mut r = Ok(());
                        while let Some(b) = pending.remove(&next_seq) {
                            next_seq += 1;
                            r = absorb(&mut sink, b);
                            if r.is_err() {
                                break;
                            }
                        }
                        r
                    } else {
                        absorb(&mut sink, batch)
                    };
                    if let Err(e) = result {
                        Core::fail(&fail, &cancel, e);
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Flush any reordered remainder (no-op unless upstream violated
        // the 1:1 contract or the run was cut short).
        if !cancel.is_cancelled() {
            for (_, b) in std::mem::take(&mut pending) {
                if let Err(e) = absorb(&mut sink, b) {
                    Core::fail(&fail, &cancel, e);
                    break;
                }
            }
        }

        // Drain-and-discard so no upstream producer stays blocked on a
        // full channel; producers observe the cancel within POLL.
        if cancel.is_cancelled() {
            for (_, b) in std::mem::take(&mut pending) {
                gauge.release(b.cost());
            }
            loop {
                match self.rx.recv_timeout(POLL) {
                    Ok(b) => gauge.release(b.cost()),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }

        for h in handles {
            if h.join().is_err() {
                Core::fail(
                    &fail,
                    &cancel,
                    Error::Io(std::io::Error::other("pipeline stage panicked")),
                );
            }
        }

        let cancelled = cancel.is_cancelled();
        let first_error = fail.lock().ok().and_then(|mut s| s.take());
        if let Some(e) = first_error {
            return Err(e);
        }
        let output = sink.finish()?;
        let metrics = PipelineMetrics {
            stages: stages.iter().map(|(n, w, r)| r.snapshot(n, *w)).collect(),
            peak_buffered_bytes: gauge.peak(),
            elapsed: clock.now().saturating_sub(t_start),
            cancelled,
        };
        Ok((output, metrics))
    }
}

/// One transform worker: shared-receiver loop with cancellation polling,
/// gauge accounting, and metered waits.
#[allow(clippy::too_many_arguments)]
fn stage_worker<I: Cost + Send, O: Cost + Send>(
    mut stage: Box<dyn Stage<I, O>>,
    rx: Receiver<Batch<I>>,
    tx: Sender<Batch<O>>,
    rec: Arc<StageRecorder>,
    cancel: CancelToken,
    gauge: Arc<MemoryGauge>,
    clock: Arc<dyn Clock>,
    fail: Arc<Mutex<Option<Error>>>,
) {
    let mut out_buf: Vec<Batch<O>> = Vec::new();
    let send_out = |batch: Batch<O>| -> bool {
        rec.batches_out.fetch_add(1, Ordering::Relaxed);
        rec.items_out.fetch_add(batch.items.len() as u64, Ordering::Relaxed);
        let cost = batch.cost();
        gauge.charge(cost);
        let t0 = clock.now();
        let ok = tx.send(batch).is_ok();
        StageRecorder::add_nanos(&rec.send_wait_nanos, clock.now().saturating_sub(t0));
        if !ok {
            gauge.release(cost);
        }
        ok
    };
    loop {
        if cancel.is_cancelled() {
            return;
        }
        rec.observe_depth(rx.len());
        let t0 = clock.now();
        let recv = rx.recv_timeout(POLL);
        StageRecorder::add_nanos(&rec.recv_wait_nanos, clock.now().saturating_sub(t0));
        match recv {
            Ok(batch) => {
                rec.batches_in.fetch_add(1, Ordering::Relaxed);
                rec.items_in.fetch_add(batch.items.len() as u64, Ordering::Relaxed);
                let in_cost = batch.cost();
                out_buf.clear();
                let r = timed(&clock, &rec.busy_nanos, || stage.process(batch, &mut out_buf));
                gauge.release(in_cost);
                match r {
                    Ok(()) => {
                        for b in out_buf.drain(..) {
                            if !send_out(b) {
                                return;
                            }
                        }
                    }
                    Err(e) => {
                        Core::fail(&fail, &cancel, e);
                        return;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                out_buf.clear();
                let r = timed(&clock, &rec.busy_nanos, || stage.finish(&mut out_buf));
                match r {
                    Ok(()) => {
                        for b in out_buf.drain(..) {
                            if !send_out(b) {
                                return;
                            }
                        }
                    }
                    Err(e) => Core::fail(&fail, &cancel, e),
                }
                return;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn clock() -> Arc<dyn Clock> {
        Arc::new(ManualClock::new())
    }

    fn config(workers: usize) -> PipelineConfig {
        PipelineConfig { workers, batch_size: 8, channel_bound: 2, retry_attempts: 3 }
    }

    /// Collects items in arrival order.
    struct Collect {
        got: Vec<u64>,
    }

    impl Sink<u64> for Collect {
        type Output = Vec<u64>;

        fn absorb(&mut self, batch: Batch<u64>) -> Result<()> {
            self.got.extend(batch.items);
            Ok(())
        }

        fn finish(self) -> Result<Vec<u64>> {
            Ok(self.got)
        }
    }

    fn number_source(n: u64, batch: usize) -> impl FnOnce(&mut SourceCtx<u64>) -> Result<()> {
        move |ctx| {
            let mut next = 0;
            while next < n {
                let hi = (next + batch as u64).min(n);
                ctx.emit((next..hi).collect())?;
                next = hi;
            }
            Ok(())
        }
    }

    #[test]
    fn ordered_run_preserves_global_order() {
        let (out, metrics) = Graph::source(config(4), clock(), "numbers", number_source(1000, 16))
            .stage("double", 4, |_| stage_fn(|b: Batch<u64>| {
                Ok(Batch { seq: b.seq, items: b.items.iter().map(|x| x * 2).collect() })
            }))
            .run("collect", true, Collect { got: Vec::new() })
            .unwrap();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        assert!(!metrics.cancelled);
        assert_eq!(metrics.stages.len(), 3);
        assert_eq!(metrics.stages[0].items_out, 1000);
        assert_eq!(metrics.stages[1].items_in, 1000);
        assert_eq!(metrics.stages[2].items_in, 1000);
        // ManualClock: every duration is exactly zero — deterministic.
        for s in &metrics.stages {
            assert_eq!(s.busy, Duration::ZERO);
            assert_eq!(s.recv_wait, Duration::ZERO);
            assert_eq!(s.send_wait, Duration::ZERO);
        }
        assert_eq!(metrics.elapsed, Duration::ZERO);
    }

    #[test]
    fn unordered_run_sees_every_item() {
        let (mut out, _) = Graph::source(config(3), clock(), "numbers", number_source(500, 7))
            .stage("id", 3, |_| stage_fn(|b: Batch<u64>| Ok(b)))
            .run("collect", false, Collect { got: Vec::new() })
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn peak_working_set_is_bounded_by_window_not_input() {
        // 64k items of 8 bytes each = 512 KiB total; the in-flight
        // window is ≤ (2 channels × bound 2 + workers + reorder) batches
        // of 64 items → far below the input size.
        let n: u64 = 65_536;
        let (_, metrics) = Graph::source(config(2), clock(), "numbers", number_source(n, 64))
            .stage("id", 2, |_| stage_fn(|b: Batch<u64>| Ok(b)))
            .run("collect", true, Collect { got: Vec::new() })
            .unwrap();
        let total = n * 8;
        assert!(metrics.peak_buffered_bytes > 0);
        assert!(
            metrics.peak_buffered_bytes < total / 4,
            "peak {} should be far below total {}",
            metrics.peak_buffered_bytes,
            total
        );
    }

    #[test]
    fn stage_error_cancels_and_drains() {
        let err = Graph::source(config(2), clock(), "numbers", number_source(10_000, 8))
            .stage("explode", 2, |_| {
                stage_fn(|b: Batch<u64>| {
                    if b.seq == 5 {
                        Err(Error::InvalidRecord("boom".into()))
                    } else {
                        Ok(b)
                    }
                })
            })
            .run("collect", true, Collect { got: Vec::new() })
            .unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
    }

    #[test]
    fn sink_error_cancels_and_drains() {
        struct FailingSink {
            n: u64,
        }
        impl Sink<u64> for FailingSink {
            type Output = ();
            fn absorb(&mut self, _batch: Batch<u64>) -> Result<()> {
                self.n += 1;
                if self.n == 3 {
                    Err(Error::InvalidRecord("sink full".into()))
                } else {
                    Ok(())
                }
            }
            fn finish(self) -> Result<()> {
                Ok(())
            }
        }
        let err = Graph::source(config(1), clock(), "numbers", number_source(100_000, 8))
            .stage("id", 1, |_| stage_fn(|b: Batch<u64>| Ok(b)))
            .run("failing", true, FailingSink { n: 0 })
            .unwrap_err();
        assert!(err.to_string().contains("sink full"), "{err}");
    }

    #[test]
    fn external_cancel_stops_early_and_reports() {
        // The source emits forever; cancelling from outside must wind
        // the graph down and report `cancelled` without an error.
        let graph = Graph::source(config(1), clock(), "infinite", |ctx| {
            let mut i = 0u64;
            loop {
                ctx.emit(vec![i])?;
                i += 1;
            }
        });
        let token = graph.cancel_token();
        struct CancelAfter {
            token: CancelToken,
            seen: u64,
        }
        impl Sink<u64> for CancelAfter {
            type Output = u64;
            fn absorb(&mut self, batch: Batch<u64>) -> Result<()> {
                self.seen += batch.items.len() as u64;
                if self.seen >= 10 {
                    self.token.cancel();
                }
                Ok(())
            }
            fn finish(self) -> Result<u64> {
                Ok(self.seen)
            }
        }
        let (seen, metrics) = graph
            .run("cancel-after", false, CancelAfter { token, seen: 0 })
            .unwrap();
        assert!(seen >= 10);
        assert!(metrics.cancelled);
    }

    #[test]
    fn accumulating_stage_flushes_on_finish() {
        /// Sums items per worker, emitting one total at end-of-stream.
        struct SumStage {
            total: u64,
        }
        impl Stage<u64, u64> for SumStage {
            fn process(&mut self, batch: Batch<u64>, _out: &mut Vec<Batch<u64>>) -> Result<()> {
                self.total += batch.items.iter().sum::<u64>();
                Ok(())
            }
            fn finish(&mut self, out: &mut Vec<Batch<u64>>) -> Result<()> {
                out.push(Batch { seq: 0, items: vec![self.total] });
                Ok(())
            }
        }
        let (partials, _) = Graph::source(config(3), clock(), "numbers", number_source(1000, 10))
            .stage("sum", 3, |_| Box::new(SumStage { total: 0 }) as Box<dyn Stage<u64, u64>>)
            .run("collect", false, Collect { got: Vec::new() })
            .unwrap();
        assert_eq!(partials.iter().sum::<u64>(), (0..1000).sum::<u64>());
        assert!(partials.len() <= 3, "one partial per worker");
    }

    #[test]
    fn queue_depth_respects_channel_bound() {
        let (_, metrics) = Graph::source(config(2), clock(), "numbers", number_source(5000, 4))
            .stage("id", 2, |_| stage_fn(|b: Batch<u64>| Ok(b)))
            .run("collect", true, Collect { got: Vec::new() })
            .unwrap();
        for s in &metrics.stages {
            assert!(s.max_queue_depth <= 2, "{}: depth {}", s.name, s.max_queue_depth);
        }
    }
}
