//! Keyed regroup (shuffle) with spill-to-repo external merge.
//!
//! The platform piece behind `ngs-collate` (DESIGN.md §10): items enter
//! tagged with a **pure byte-string key**, buffer under a
//! [`MemoryGauge`]-audited budget, and leave as one stream in total
//! `(key, seq)` order, where `seq` is the dense arrival number the
//! regrouper stamps on every item. Because an *ordered* sink absorbs
//! batches in global source order, `seq` — and therefore the output —
//! is identical for any worker count, batch size, or spill budget.
//!
//! When the buffered cost exceeds the budget, the buffer is sorted and
//! written out as one *run* through the crash-safe [`ShardRepo`]
//! publication path (stage → seal → record, deterministic
//! `{stem}.run{n:06}.spill` naming), so a crash mid-spill leaves a
//! stray temp — never a torn, manifest-listed run. [`Regrouper::finish`]
//! verifies every run against the manifest and k-way merges the runs
//! with the in-memory remainder through a binary heap, decoding one
//! look-ahead entry per run — the merge working set is the remainder
//! (≤ budget) plus a constant per-run overhead (read buffer + one
//! entry), all charged on the same gauge.
//!
//! Spill-run entry framing (little-endian):
//!
//! ```text
//! u32 key_len | key bytes | u64 seq | u32 payload_len | payload
//! ```
//!
//! where the payload is produced by the caller's [`SpillCodec`].

use std::collections::BinaryHeap;
use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::Arc;

use ngs_bamx::repo::{RepoFs, ShardRepo, StdFs, FINGERPRINT_NONE};
use ngs_formats::error::{DecodeErrorKind, Error, Result};

use crate::engine::{Batch, Cost, Sink};
use crate::metrics::MemoryGauge;

/// A regroup key: compared bytewise, so key functions must encode order
/// into the bytes (big-endian integers, hash prefixes, …).
pub type Key = Vec<u8>;

/// Fixed per-entry bookkeeping cost charged to the gauge on top of the
/// key and payload (covers the seq, lengths, and `Vec` headers).
const ENTRY_OVERHEAD: u64 = 48;

/// An item tagged with its regroup key by an upstream (parallel) stage.
#[derive(Debug, Clone)]
pub struct Keyed<T> {
    /// The pure-function key this item regroups under.
    pub key: Key,
    /// The payload.
    pub item: T,
}

impl<T: Cost> Cost for Keyed<T> {
    fn cost_bytes(&self) -> u64 {
        self.key.len() as u64 + self.item.cost_bytes() + ENTRY_OVERHEAD
    }
}

/// Encodes items into spill-run payload bytes and back. Implementations
/// must round-trip exactly (`decode(encode(x)) == x`) — byte-identity of
/// regrouped output rests on it.
pub trait SpillCodec<T>: Send + Sync {
    /// Appends the payload encoding of `item` to `out`.
    fn encode(&self, item: &T, out: &mut Vec<u8>) -> Result<()>;

    /// Decodes one payload produced by [`SpillCodec::encode`].
    /// `context` names the run for error reports.
    fn decode(&self, bytes: &[u8], context: &str) -> Result<T>;
}

/// Codec for plain `u64` payloads (pipeline-level tests and counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct U64Codec;

impl SpillCodec<u64> for U64Codec {
    fn encode(&self, item: &u64, out: &mut Vec<u8>) -> Result<()> {
        out.extend_from_slice(&item.to_le_bytes());
        Ok(())
    }

    fn decode(&self, bytes: &[u8], context: &str) -> Result<u64> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| {
            Error::decode(
                DecodeErrorKind::Truncated,
                0,
                context.to_string(),
                format!("u64 payload must be 8 bytes, got {}", bytes.len()),
            )
        })?;
        Ok(u64::from_le_bytes(arr))
    }
}

/// Sizing and placement knobs for one [`Regrouper`].
#[derive(Clone)]
pub struct RegroupConfig {
    /// Buffered-cost budget in gauge bytes; exceeding it triggers a
    /// spill. `0` means unbounded (never spill).
    pub spill_budget: u64,
    /// Directory for spill runs (becomes a [`ShardRepo`]). Required when
    /// `spill_budget > 0`; ignored otherwise.
    pub spill_dir: Option<PathBuf>,
    /// Deterministic run-name stem: runs publish as
    /// `{stem}.run{n:06}.spill`. Must satisfy
    /// `ngs_bamx::repo::valid_artifact_name`.
    pub run_stem: String,
    /// Read-buffer bytes per run during the merge (the constant per-run
    /// overhead charged to the gauge).
    pub merge_read_buffer: usize,
    /// Filesystem seam for spill publication (fault injection); `None`
    /// uses the real filesystem.
    pub spill_fs: Option<Arc<dyn RepoFs>>,
}

impl Default for RegroupConfig {
    fn default() -> Self {
        RegroupConfig {
            spill_budget: 0,
            spill_dir: None,
            run_stem: "regroup".into(),
            merge_read_buffer: 64 * 1024,
            spill_fs: None,
        }
    }
}

impl std::fmt::Debug for RegroupConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegroupConfig")
            .field("spill_budget", &self.spill_budget)
            .field("spill_dir", &self.spill_dir)
            .field("run_stem", &self.run_stem)
            .field("merge_read_buffer", &self.merge_read_buffer)
            .field("spill_fs", &self.spill_fs.is_some())
            .finish()
    }
}

/// Counters one regroup accumulates across buffering, spilling, and the
/// merge.
#[derive(Debug, Clone, Default)]
pub struct RegroupStats {
    /// Items pushed in.
    pub items: u64,
    /// Spill runs published.
    pub spill_runs: u64,
    /// Items written to spill runs.
    pub spilled_items: u64,
    /// Encoded bytes written to spill runs.
    pub spilled_bytes: u64,
    /// Published size of each run, in publication order (histogram feed).
    pub run_bytes: Vec<u64>,
    /// Sources merged at finish (runs + in-memory remainder).
    pub merge_fan_in: u64,
    /// Peak gauge bytes the regrouper held (buffer + merge overhead).
    pub peak_buffered_bytes: u64,
}

struct Entry<T> {
    key: Key,
    seq: u64,
    item: T,
    cost: u64,
}

/// Accumulates keyed items under a budget, spilling sorted runs through
/// the crash-safe repo path; [`Regrouper::finish`] yields the merged
/// [`Regrouped`] stream. See the module docs for the determinism
/// argument.
pub struct Regrouper<T> {
    config: RegroupConfig,
    codec: Arc<dyn SpillCodec<T>>,
    gauge: Arc<MemoryGauge>,
    buf: Vec<Entry<T>>,
    buffered_cost: u64,
    next_seq: u64,
    repo: Option<ShardRepo>,
    stats: RegroupStats,
}

impl<T: Cost> Regrouper<T> {
    /// A regrouper charging its working set to a fresh private gauge.
    pub fn new(config: RegroupConfig, codec: Arc<dyn SpillCodec<T>>) -> Result<Self> {
        Self::with_gauge(config, codec, Arc::new(MemoryGauge::new()))
    }

    /// A regrouper charging its working set to `gauge` (shared
    /// accounting with a surrounding engine).
    pub fn with_gauge(
        config: RegroupConfig,
        codec: Arc<dyn SpillCodec<T>>,
        gauge: Arc<MemoryGauge>,
    ) -> Result<Self> {
        if config.spill_budget > 0 && config.spill_dir.is_none() {
            return Err(Error::InvalidRecord(
                "regroup: spill_budget > 0 requires a spill_dir".into(),
            ));
        }
        Ok(Regrouper {
            config,
            codec,
            gauge,
            buf: Vec::new(),
            buffered_cost: 0,
            next_seq: 0,
            repo: None,
            stats: RegroupStats::default(),
        })
    }

    /// The gauge this regrouper charges.
    pub fn gauge(&self) -> &Arc<MemoryGauge> {
        &self.gauge
    }

    /// Buffers one keyed item, spilling a sorted run first if the budget
    /// is already full.
    pub fn push(&mut self, key: Key, item: T) -> Result<()> {
        let cost = key.len() as u64 + item.cost_bytes() + ENTRY_OVERHEAD;
        if self.config.spill_budget > 0
            && !self.buf.is_empty()
            && self.buffered_cost + cost > self.config.spill_budget
        {
            self.spill_run()?;
        }
        self.gauge.charge(cost);
        self.buffered_cost += cost;
        self.buf.push(Entry { key, seq: self.next_seq, item, cost });
        self.next_seq += 1;
        self.stats.items += 1;
        Ok(())
    }

    /// Opens (or creates) the spill repository, clearing stray temps left
    /// by a previous crashed process so reruns start clean.
    fn repo(&mut self) -> Result<&ShardRepo> {
        if self.repo.is_none() {
            let dir = self.config.spill_dir.clone().ok_or_else(|| {
                Error::InvalidRecord("regroup: spill without a spill_dir".into())
            })?;
            let fs: Arc<dyn RepoFs> =
                self.config.spill_fs.clone().unwrap_or_else(|| Arc::new(StdFs));
            let repo = ShardRepo::create_with(dir, fs)?;
            repo.clean_stray_temps()?;
            self.repo = Some(repo);
        }
        self.repo.as_ref().ok_or_else(|| {
            Error::InvalidRecord("regroup: spill repository unavailable".into())
        })
    }

    fn run_name(&self, idx: u64) -> String {
        format!("{}.run{idx:06}.spill", self.config.run_stem)
    }

    /// Sorts the buffer by `(key, seq)` and publishes it as one run:
    /// artifact bytes rename into place strictly before the manifest
    /// records them, so no observable run is ever torn.
    fn spill_run(&mut self) -> Result<()> {
        let mut entries = std::mem::take(&mut self.buf);
        entries.sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        let name = self.run_name(self.stats.spill_runs);
        let codec = Arc::clone(&self.codec);
        let repo = self.repo()?;
        let mut staged = repo.stage(&name)?;
        let mut frame = Vec::new();
        let mut payload = Vec::new();
        for e in &entries {
            payload.clear();
            codec.encode(&e.item, &mut payload)?;
            frame.clear();
            frame.extend_from_slice(&(e.key.len() as u32).to_le_bytes());
            frame.extend_from_slice(&e.key);
            frame.extend_from_slice(&e.seq.to_le_bytes());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            staged.write_all(&frame)?;
            staged.write_all(&payload)?;
        }
        let len = staged.len();
        let entry = staged.seal(FINGERPRINT_NONE)?;
        repo.record(vec![entry])?;
        self.stats.spill_runs += 1;
        self.stats.spilled_items += entries.len() as u64;
        self.stats.spilled_bytes += len;
        self.stats.run_bytes.push(len);
        self.gauge.release(self.buffered_cost);
        self.buffered_cost = 0;
        Ok(())
    }

    /// Seals the regroup: sorts the in-memory remainder, verifies every
    /// spilled run against the manifest, and returns the merged stream.
    pub fn finish(mut self) -> Result<Regrouped<T>> {
        self.buf
            .sort_by(|a, b| a.key.cmp(&b.key).then(a.seq.cmp(&b.seq)));
        let mut readers = Vec::new();
        if self.stats.spill_runs > 0 {
            let read_buffer = self.config.merge_read_buffer.max(4096);
            let names: Vec<String> =
                (0..self.stats.spill_runs).map(|i| self.run_name(i)).collect();
            let repo = self.repo()?;
            for name in names {
                repo.verify_artifact(&name)?;
                let file = std::fs::File::open(repo.dir().join(&name))?;
                readers.push(RunReader {
                    context: name,
                    reader: BufReader::with_capacity(read_buffer, file),
                    pending: None,
                    charged: read_buffer as u64,
                });
            }
            // Constant per-run merge overhead, on the same gauge.
            for r in &readers {
                self.gauge.charge(r.charged);
            }
        }
        self.stats.merge_fan_in =
            readers.len() as u64 + u64::from(!self.buf.is_empty());

        let mut merged = Regrouped {
            codec: self.codec,
            gauge: self.gauge,
            mem: self.buf.into_iter(),
            mem_pending: None,
            mem_charged: self.buffered_cost,
            readers,
            heap: BinaryHeap::new(),
            stats: self.stats,
        };
        merged.prime()?;
        merged.stats.peak_buffered_bytes = merged.gauge.peak();
        Ok(merged)
    }
}

/// One spilled run being merged: a buffered reader plus one decoded
/// look-ahead entry.
struct RunReader<T> {
    context: String,
    reader: BufReader<std::fs::File>,
    pending: Option<Entry<T>>,
    /// Gauge bytes currently charged for this reader (buffer + pending).
    charged: u64,
}

impl<T: Cost> RunReader<T> {
    /// Decodes the next entry, or `None` at a clean end-of-run. A run
    /// ending mid-entry is a torn artifact (should be impossible once
    /// `verify_artifact` passed — defense in depth).
    fn refill(&mut self, codec: &dyn SpillCodec<T>) -> Result<Option<&Entry<T>>> {
        if self.pending.is_some() {
            return Ok(self.pending.as_ref());
        }
        let mut len4 = [0u8; 4];
        match self.reader.read_exact(&mut len4) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(Error::Io(e)),
        }
        let torn = |detail: String| {
            Error::decode(DecodeErrorKind::Torn, 0, self.context.clone(), detail)
        };
        let key_len = u32::from_le_bytes(len4) as usize;
        let mut key = vec![0u8; key_len];
        self.reader
            .read_exact(&mut key)
            .map_err(|e| torn(format!("run ends inside a key: {e}")))?;
        let mut seq8 = [0u8; 8];
        self.reader
            .read_exact(&mut seq8)
            .map_err(|e| torn(format!("run ends inside a seq: {e}")))?;
        let mut plen4 = [0u8; 4];
        self.reader
            .read_exact(&mut plen4)
            .map_err(|e| torn(format!("run ends inside a length: {e}")))?;
        let payload_len = u32::from_le_bytes(plen4) as usize;
        let mut payload = vec![0u8; payload_len];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| torn(format!("run ends inside a payload: {e}")))?;
        let item = codec.decode(&payload, &self.context)?;
        let cost = key.len() as u64 + item.cost_bytes() + ENTRY_OVERHEAD;
        self.pending = Some(Entry { key, seq: u64::from_le_bytes(seq8), item, cost });
        Ok(self.pending.as_ref())
    }
}

/// Min-heap handle: orders sources by their pending `(key, seq)`.
struct HeapSlot {
    key: Key,
    seq: u64,
    src: usize,
}

impl PartialEq for HeapSlot {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for HeapSlot {}
impl PartialOrd for HeapSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the smallest.
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Index of the in-memory remainder in the heap's source space.
const MEM_SRC: usize = usize::MAX;

/// The merged output stream of a [`Regrouper`]: total `(key, seq)`
/// order across the in-memory remainder and every spilled run. Gauge
/// charges drain as entries are yielded; dropping the stream early
/// releases the rest.
pub struct Regrouped<T> {
    codec: Arc<dyn SpillCodec<T>>,
    gauge: Arc<MemoryGauge>,
    mem: std::vec::IntoIter<Entry<T>>,
    mem_pending: Option<Entry<T>>,
    mem_charged: u64,
    readers: Vec<RunReader<T>>,
    heap: BinaryHeap<HeapSlot>,
    stats: RegroupStats,
}

impl<T: Cost> Regrouped<T> {
    /// Loads the first entry of every source into the heap.
    fn prime(&mut self) -> Result<()> {
        self.mem_pending = self.mem.next();
        if let Some(e) = &self.mem_pending {
            self.heap.push(HeapSlot { key: e.key.clone(), seq: e.seq, src: MEM_SRC });
        }
        for i in 0..self.readers.len() {
            if let Some(e) = self.readers[i].refill(self.codec.as_ref())? {
                self.heap.push(HeapSlot { key: e.key.clone(), seq: e.seq, src: i });
            }
            if let Some(e) = &self.readers[i].pending {
                self.gauge.charge(e.cost);
                self.readers[i].charged += e.cost;
            }
        }
        Ok(())
    }

    /// Accumulated regroup statistics (spills, merge fan-in, gauge peak).
    pub fn stats(&self) -> &RegroupStats {
        &self.stats
    }

    /// Yields the next `(key, seq, item)` in total order.
    pub fn next_entry(&mut self) -> Result<Option<(Key, u64, T)>> {
        let Some(slot) = self.heap.pop() else {
            return Ok(None);
        };
        let entry = if slot.src == MEM_SRC {
            let e = self.mem_pending.take().ok_or_else(|| {
                Error::InvalidRecord("regroup merge: empty memory source".into())
            })?;
            self.gauge.release(e.cost);
            self.mem_charged = self.mem_charged.saturating_sub(e.cost);
            self.mem_pending = self.mem.next();
            if let Some(n) = &self.mem_pending {
                self.heap.push(HeapSlot { key: n.key.clone(), seq: n.seq, src: MEM_SRC });
            }
            e
        } else {
            let reader = &mut self.readers[slot.src];
            let e = reader.pending.take().ok_or_else(|| {
                Error::InvalidRecord("regroup merge: empty run source".into())
            })?;
            self.gauge.release(e.cost);
            reader.charged = reader.charged.saturating_sub(e.cost);
            reader.refill(self.codec.as_ref())?;
            if let Some(n) = &reader.pending {
                self.gauge.charge(n.cost);
                reader.charged += n.cost;
                self.heap.push(HeapSlot { key: n.key.clone(), seq: n.seq, src: slot.src });
            }
            e
        };
        self.stats.peak_buffered_bytes = self.stats.peak_buffered_bytes.max(self.gauge.peak());
        Ok(Some((entry.key, entry.seq, entry.item)))
    }

    /// Collects the next full key group into `into` (cleared first),
    /// returning its key, or `None` once the stream is drained. Items
    /// arrive in `seq` (arrival) order within the group.
    pub fn next_group(&mut self, into: &mut Vec<T>) -> Result<Option<Key>> {
        into.clear();
        let Some((key, _, item)) = self.next_entry()? else {
            return Ok(None);
        };
        into.push(item);
        while let Some(slot) = self.heap.peek() {
            if slot.key != key {
                break;
            }
            match self.next_entry()? {
                Some((_, _, item)) => into.push(item),
                None => break,
            }
        }
        Ok(Some(key))
    }
}

impl<T> Drop for Regrouped<T> {
    fn drop(&mut self) {
        // Entries never yielded (early drop) plus per-reader buffers.
        let mut held = self.mem_charged;
        for r in &self.readers {
            held += r.charged;
        }
        self.gauge.release(held);
    }
}

/// Terminal pipeline stage feeding a [`Regrouper`]: absorb batches of
/// [`Keyed`] items in **ordered** global sequence (mandatory — the
/// arrival `seq` is part of the output order), finish into the merged
/// stream.
pub struct RegroupSink<T: Cost + Send> {
    regrouper: Regrouper<T>,
}

impl<T: Cost + Send> RegroupSink<T> {
    /// Wraps a configured regrouper as a graph sink.
    pub fn new(regrouper: Regrouper<T>) -> Self {
        RegroupSink { regrouper }
    }
}

impl<T: Cost + Send> Sink<Keyed<T>> for RegroupSink<T> {
    type Output = Regrouped<T>;

    fn absorb(&mut self, batch: Batch<Keyed<T>>) -> Result<()> {
        for keyed in batch.items {
            self.regrouper.push(keyed.key, keyed.item)?;
        }
        Ok(())
    }

    fn finish(self) -> Result<Self::Output> {
        self.regrouper.finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn key_of(x: u64) -> Key {
        x.to_be_bytes().to_vec()
    }

    fn drain(mut r: Regrouped<u64>) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some((_, _, item)) = r.next_entry().unwrap() {
            out.push(item);
        }
        out
    }

    #[test]
    fn in_memory_regroup_sorts_by_key_then_seq() {
        let mut rg =
            Regrouper::new(RegroupConfig::default(), Arc::new(U64Codec)).unwrap();
        for x in [5u64, 3, 9, 3, 1] {
            rg.push(key_of(x), x).unwrap();
        }
        let out = drain(rg.finish().unwrap());
        assert_eq!(out, vec![1, 3, 3, 5, 9]);
    }

    #[test]
    fn spilled_regroup_matches_in_memory_and_stays_under_budget() {
        let dir = tempdir().unwrap();
        let budget = 400u64;
        let config = RegroupConfig {
            spill_budget: budget,
            spill_dir: Some(dir.path().join("spill")),
            merge_read_buffer: 4096,
            ..Default::default()
        };
        let mut rg = Regrouper::new(config, Arc::new(U64Codec)).unwrap();
        let items: Vec<u64> = (0..500).map(|i| (i * 7919) % 257).collect();
        for &x in &items {
            rg.push(key_of(x), x).unwrap();
        }
        let merged = rg.finish().unwrap();
        assert!(merged.stats().spill_runs > 1, "budget must force spills");
        let fan_in = merged.stats().merge_fan_in;
        let out = drain(merged);

        let mut expect: Vec<(Key, u64, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (key_of(x), i as u64, x))
            .collect();
        expect.sort();
        assert_eq!(out, expect.into_iter().map(|(_, _, x)| x).collect::<Vec<_>>());
        assert!(fan_in >= 2);
    }

    #[test]
    fn gauge_peak_bounded_by_budget_plus_merge_overhead() {
        let dir = tempdir().unwrap();
        let budget = 512u64;
        let read_buffer = 4096usize;
        let config = RegroupConfig {
            spill_budget: budget,
            spill_dir: Some(dir.path().join("spill")),
            merge_read_buffer: read_buffer,
            ..Default::default()
        };
        let mut rg = Regrouper::new(config, Arc::new(U64Codec)).unwrap();
        for x in 0..2000u64 {
            rg.push(key_of(x % 97), x).unwrap();
        }
        let merged = rg.finish().unwrap();
        let runs = merged.stats().spill_runs;
        let max_entry = 8 + 8 + ENTRY_OVERHEAD;
        let bound = budget + max_entry + runs * (read_buffer as u64 + max_entry);
        let out = drain_stats(merged);
        assert!(
            out.peak_buffered_bytes <= bound,
            "peak {} exceeds budget {} + overhead (bound {})",
            out.peak_buffered_bytes,
            budget,
            bound
        );
    }

    fn drain_stats(mut r: Regrouped<u64>) -> RegroupStats {
        while r.next_entry().unwrap().is_some() {}
        r.stats().clone()
    }

    #[test]
    fn spill_runs_publish_through_manifest() {
        let dir = tempdir().unwrap();
        let spill = dir.path().join("spill");
        let config = RegroupConfig {
            spill_budget: 256,
            spill_dir: Some(spill.clone()),
            ..Default::default()
        };
        let mut rg = Regrouper::new(config, Arc::new(U64Codec)).unwrap();
        for x in 0..200u64 {
            rg.push(key_of(x), x).unwrap();
        }
        let merged = rg.finish().unwrap();
        assert!(merged.stats().spill_runs > 0);
        let repo = ShardRepo::open(&spill).unwrap();
        let report = repo.verify().unwrap();
        assert!(report.is_clean(), "spill repo must verify clean: {report:?}");
        drop(merged);
    }

    #[test]
    fn group_iteration_returns_full_groups_in_arrival_order() {
        let mut rg =
            Regrouper::new(RegroupConfig::default(), Arc::new(U64Codec)).unwrap();
        // Key = value % 3; arrival order must be preserved in-group.
        for x in [0u64, 1, 2, 3, 4, 5, 6] {
            rg.push(vec![(x % 3) as u8], x).unwrap();
        }
        let mut merged = rg.finish().unwrap();
        let mut group = Vec::new();
        let mut groups = Vec::new();
        while merged.next_group(&mut group).unwrap().is_some() {
            groups.push(group.clone());
        }
        assert_eq!(groups, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    fn budget_without_dir_is_rejected() {
        let config = RegroupConfig { spill_budget: 1, ..Default::default() };
        assert!(Regrouper::<u64>::new(config, Arc::new(U64Codec)).is_err());
    }

    #[test]
    fn early_drop_releases_all_gauge_charges() {
        let gauge = Arc::new(MemoryGauge::new());
        let mut rg = Regrouper::with_gauge(
            RegroupConfig::default(),
            Arc::new(U64Codec),
            Arc::clone(&gauge),
        )
        .unwrap();
        for x in 0..100u64 {
            rg.push(key_of(x), x).unwrap();
        }
        let mut merged = rg.finish().unwrap();
        let _ = merged.next_entry().unwrap();
        assert!(gauge.current() > 0);
        drop(merged);
        assert_eq!(gauge.current(), 0, "early drop must release every charge");
    }
}
