//! Graph (b): shard-decode → coverage-accumulate → fused NL-means/FDR
//! sink.
//!
//! The statistics pipeline of the paper's Section IV as a streaming
//! graph: the shared shard source feeds a worker pool that accumulates
//! **integer** per-bin base-pair counts ([`BinnedCounts`]) worker-locally
//! and flushes one partial per worker at end-of-stream. The sink merges
//! the partials — an exact, commutative integer reduction, so the result
//! is independent of worker scheduling — then runs NL-means denoising
//! (Section IV-A) and the fused single-reduction FDR of Algorithm 2
//! (Eq. 7–9) over the final histogram. Coverage never exists as floats
//! until the single ÷bin_size conversion at the end, which is what makes
//! the streaming histogram bit-identical to the sequential one.
//!
//! Fault model matches graph (a): transient reads retried in the source,
//! structurally corrupt shards quarantined, graph always drained.

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use ngs_formats::error::{Error, Result};
use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;
use ngs_stats::simulate::NullModel;
use ngs_stats::{build_fdr_input, fdr_curve, nlmeans_sequential, BinnedCounts, CoverageHistogram, NlMeansParams};

use crate::clock::{Clock, SystemClock};
use crate::convert::{record_source, ShardInput, ShardQuarantine};
use crate::engine::{Batch, Cost, Graph, PipelineConfig, Sink, Stage};
use crate::metrics::PipelineMetrics;

impl Cost for BinnedCounts {
    fn cost_bytes(&self) -> u64 {
        // One u64 per bin dominates; chrom metadata is negligible.
        (self.len() * std::mem::size_of::<u64>()) as u64
    }
}

/// Knobs for the streaming analysis graph. Defaults mirror
/// `FrameworkConfig` (bin size 25) and the repro experiments.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Histogram bin size in base pairs.
    pub bin_size: u32,
    /// NL-means parameters; `None` skips denoising.
    pub nlmeans: Option<NlMeansParams>,
    /// Simulation rounds behind the FDR scores.
    pub fdr_rounds: usize,
    /// Peak-calling thresholds to score.
    pub fdr_thresholds: Vec<f64>,
    /// Null model generating the simulations.
    pub null_model: NullModel,
    /// Simulation RNG seed (deterministic runs).
    pub seed: u64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            bin_size: 25,
            nlmeans: None,
            fdr_rounds: 8,
            fdr_thresholds: vec![1.0, 2.0, 4.0],
            null_model: NullModel::Poisson,
            seed: 20140519,
        }
    }
}

/// Result of one streaming analysis run.
#[derive(Debug)]
pub struct AnalyzeRun {
    /// Final merged coverage histogram.
    pub histogram: CoverageHistogram,
    /// Denoised bins when [`AnalyzeOptions::nlmeans`] was set.
    pub denoised: Option<Vec<f64>>,
    /// `(threshold, FDR)` pairs from the fused Algorithm 2 reduction.
    pub fdr: Vec<(f64, f64)>,
    /// Records decoded from the shards.
    pub records: u64,
    /// Total covered base pairs (exact integer count).
    pub total_bases: u64,
    /// Per-stage metrics and the peak-working-set proxy.
    pub metrics: PipelineMetrics,
    /// Shards abandoned on structural corruption.
    pub quarantined: Vec<ShardQuarantine>,
    /// Transient read faults absorbed by in-source retries.
    pub transient_retries: u64,
}

/// Drives graph (b) over one or more shards.
pub struct StreamAnalyzer {
    /// Engine sizing (workers, batch size, channel bound, retries).
    pub config: PipelineConfig,
    clock: Arc<dyn Clock>,
}

impl StreamAnalyzer {
    /// An analyzer on the system clock.
    pub fn new(config: PipelineConfig) -> Self {
        Self::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// An analyzer on an injected clock (deterministic tests).
    pub fn with_clock(config: PipelineConfig, clock: Arc<dyn Clock>) -> Self {
        StreamAnalyzer { config, clock }
    }

    /// Streams `shards` through coverage accumulation and the fused
    /// statistics sink.
    pub fn analyze(&self, shards: Vec<ShardInput>, options: AnalyzeOptions) -> Result<AnalyzeRun> {
        let header = shards
            .first()
            .map(|s| s.bamx.header().clone())
            .ok_or_else(|| Error::InvalidRecord("streaming analysis needs at least one shard".into()))?;

        let quarantined = Arc::new(Mutex::new(Vec::new()));
        let retries = Arc::new(AtomicU64::new(0));
        let source = record_source(
            shards,
            self.config.batch_size.max(1),
            Arc::clone(&quarantined),
            Arc::clone(&retries),
        );

        let bin_size = options.bin_size;
        let stage_header = header.clone();
        let (out, metrics) = Graph::source(
            self.config.clone(),
            Arc::clone(&self.clock),
            "shard-decode",
            source,
        )
        .stage("coverage", self.config.workers.max(1), move |_| {
            Box::new(CoverageStage { counts: Some(BinnedCounts::new(&stage_header, bin_size)) })
                as Box<dyn Stage<AlignmentRecord, BinnedCounts>>
        })
        // Partials arrive in arbitrary worker order; the integer merge is
        // commutative so the run is unordered.
        .run("reduce", false, ReduceSink { merged: BinnedCounts::new(&header, bin_size), options })?;

        let records = metrics.stages.first().map(|s| s.items_out).unwrap_or(0);
        let quarantined = quarantined.lock().map(|q| q.clone()).unwrap_or_default();
        let (histogram, denoised, fdr, total_bases) = out;
        Ok(AnalyzeRun {
            histogram,
            denoised,
            fdr,
            records,
            total_bases,
            metrics,
            quarantined,
            transient_retries: retries.load(Ordering::Relaxed),
        })
    }
}

/// Worker-local integer coverage accumulation; flushes one partial per
/// worker once the input channel closes.
struct CoverageStage {
    counts: Option<BinnedCounts>,
}

impl Stage<AlignmentRecord, BinnedCounts> for CoverageStage {
    fn process(
        &mut self,
        batch: Batch<AlignmentRecord>,
        _out: &mut Vec<Batch<BinnedCounts>>,
    ) -> Result<()> {
        if let Some(counts) = self.counts.as_mut() {
            for rec in &batch.items {
                counts.add_alignment(rec);
            }
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Vec<Batch<BinnedCounts>>) -> Result<()> {
        if let Some(counts) = self.counts.take() {
            out.push(Batch { seq: 0, items: vec![counts] });
        }
        Ok(())
    }
}

/// Merges worker partials exactly, then runs NL-means and the fused
/// Algorithm 2 FDR reduction over the final histogram.
struct ReduceSink {
    merged: BinnedCounts,
    options: AnalyzeOptions,
}

impl Sink<BinnedCounts> for ReduceSink {
    type Output = (CoverageHistogram, Option<Vec<f64>>, Vec<(f64, f64)>, u64);

    fn absorb(&mut self, batch: Batch<BinnedCounts>) -> Result<()> {
        for partial in &batch.items {
            self.merged.merge(partial)?;
        }
        Ok(())
    }

    fn finish(self) -> Result<Self::Output> {
        let total_bases = self.merged.total_bases();
        let histogram = self.merged.into_histogram();
        let denoised = self
            .options
            .nlmeans
            .as_ref()
            .map(|p| nlmeans_sequential(&histogram.bins, p));
        let scores = denoised.clone().unwrap_or_else(|| histogram.bins.clone());
        let input = build_fdr_input(
            scores,
            self.options.fdr_rounds,
            self.options.null_model,
            self.options.seed,
        );
        let fdr = fdr_curve(&input, &self.options.fdr_thresholds, 1);
        Ok((histogram, denoised, fdr, total_bases))
    }
}

/// Builds the reference header both builders need; exposed so callers
/// (CLI, bench) can shape expected histograms without opening shards
/// twice.
pub fn analysis_header(shards: &[ShardInput]) -> Option<SamHeader> {
    shards.first().map(|s| s.bamx.header().clone())
}
