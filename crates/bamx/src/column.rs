//! Column primitives for the BAMX v2 layout (DESIGN.md §14): LEB128
//! varints, zigzag signed mapping, the per-field column catalogue, and
//! the projection sets that let converters decode only the streams they
//! read.
//!
//! Everything here is a pure byte codec — no I/O, no clock — and every
//! decode is total: malformed bytes return `None`/typed errors upstream,
//! never a panic (the module keeps the decode-path lint gate).

#![deny(clippy::unwrap_used, clippy::expect_used)]

/// Maps a signed value onto an unsigned one with small absolute values
/// staying small (`0 → 0, -1 → 1, 1 → 2, …`) — the standard zigzag
/// transform, so deltas around zero stay one varint byte.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends `v` as an LEB128 varint (1–10 bytes).
#[inline]
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one LEB128 varint from `buf[*off..]`, advancing `off`.
///
/// Returns `None` on truncation or a non-canonical >10-byte encoding —
/// the caller wraps that in a typed [`DecodeError`](ngs_formats::error::
/// Error::Decode) carrying the stream context.
#[inline]
pub fn get_varint(buf: &[u8], off: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*off)?;
        *off += 1;
        if shift == 63 && b > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// The eight column streams of a v2 block, in on-disk order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ColumnKind {
    /// `flag u16 LE + mapq u8` per record (3 bytes, raw).
    Flags = 0,
    /// `ref_id`/`pos0` as per-block delta + zigzag varints (raw).
    Pos = 1,
    /// `next_ref_id`/`next_pos0`/`tlen` as zigzag varints (raw).
    Mate = 2,
    /// `varint len + bytes` per record, DEFLATE-compressed stream.
    Qname = 3,
    /// `varint n_ops + varint ops` per record (raw).
    Cigar = 4,
    /// `varint base count + 4-bit packed bases`, DEFLATE-compressed.
    Seq = 5,
    /// `varint len + raw qualities`, DEFLATE-compressed.
    Qual = 6,
    /// `varint len + BAM tag bytes` per record (raw).
    Tags = 7,
}

/// Number of column streams per block.
pub const N_COLUMNS: usize = 8;

impl ColumnKind {
    /// All columns in on-disk order.
    pub const ALL: [ColumnKind; N_COLUMNS] = [
        ColumnKind::Flags,
        ColumnKind::Pos,
        ColumnKind::Mate,
        ColumnKind::Qname,
        ColumnKind::Cigar,
        ColumnKind::Seq,
        ColumnKind::Qual,
        ColumnKind::Tags,
    ];

    /// Column slot in the on-disk stream order.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the stream is DEFLATE-compressed on disk (the codec
    /// table of DESIGN.md §14: text-like payloads compress, varint
    /// streams are already compact).
    #[inline]
    pub fn deflated(self) -> bool {
        matches!(self, ColumnKind::Qname | ColumnKind::Seq | ColumnKind::Qual)
    }

    /// Stable name for observability and errors.
    pub fn name(self) -> &'static str {
        match self {
            ColumnKind::Flags => "flags",
            ColumnKind::Pos => "pos",
            ColumnKind::Mate => "mate",
            ColumnKind::Qname => "qname",
            ColumnKind::Cigar => "cigar",
            ColumnKind::Seq => "seq",
            ColumnKind::Qual => "qual",
            ColumnKind::Tags => "tags",
        }
    }
}

/// A set of columns to decode — the projection a converter declares.
///
/// Every set implicitly contains [`ColumnKind::Flags`] and
/// [`ColumnKind::Pos`]: flags and coordinates are what `is_unmapped`
/// and reference-name reconstruction need, and both streams are a few
/// bytes per record, so carrying them costs nothing while keeping every
/// projected record's identity fields exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSet(u8);

impl ColumnSet {
    /// Every column — full record decode.
    pub const ALL: ColumnSet = ColumnSet(0xFF);

    /// The mandatory minimum: flags + positions only (what
    /// `positions()` and coordinate-histogram consumers need).
    pub const POSITIONS: ColumnSet = ColumnSet(0);

    /// A set holding exactly the given columns (plus the mandatory
    /// flags/pos pair).
    pub fn of(kinds: &[ColumnKind]) -> ColumnSet {
        let mut bits = 0u8;
        for k in kinds {
            bits |= 1 << k.index();
        }
        ColumnSet(bits)
    }

    /// Whether `kind` must be decoded under this projection.
    #[inline]
    pub fn contains(self, kind: ColumnKind) -> bool {
        matches!(kind, ColumnKind::Flags | ColumnKind::Pos) || self.0 & (1 << kind.index()) != 0
    }

    /// The union of two projections.
    pub fn union(self, other: ColumnSet) -> ColumnSet {
        ColumnSet(self.0 | other.0)
    }

    /// True when this is the full-decode set.
    pub fn is_all(self) -> bool {
        ColumnKind::ALL.iter().all(|&k| self.contains(k))
    }
}

impl Default for ColumnSet {
    fn default() -> Self {
        ColumnSet::ALL
    }
}

/// Deep-code observability (no constructor seam in the decode path):
/// `OnceLock`-cached handles on the global registry, gated on
/// `ngs_obs::enabled()` — the same pattern as the shard repository.
pub(crate) mod obs {
    use std::sync::{Arc, OnceLock};

    use ngs_obs::Counter;

    pub(crate) struct Counters {
        /// Decompressed column-stream bytes made available to decoders —
        /// the projection win is this counter shrinking versus a full
        /// scan (`repro bamx2` gates on it).
        pub(crate) column_bytes_decoded: Arc<Counter>,
        /// Column streams skipped entirely by a projection.
        pub(crate) columns_skipped: Arc<Counter>,
    }

    pub(crate) fn counters() -> Option<&'static Counters> {
        if !ngs_obs::enabled() {
            return None;
        }
        static COUNTERS: OnceLock<Counters> = OnceLock::new();
        Some(COUNTERS.get_or_init(|| {
            let r = ngs_obs::global();
            Counters {
                column_bytes_decoded: r.counter("bamx.column_bytes_decoded"),
                columns_skipped: r.counter("bamx.columns_skipped"),
            }
        }))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, 1000, -1000, i64::MAX, i64::MIN, i32::MAX as i64 + 7] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut off = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut off), Some(v));
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn varint_truncation_and_overflow_are_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut off = 0;
            assert_eq!(get_varint(&buf[..cut], &mut off), None, "cut {cut}");
        }
        // 10 continuation bytes with a large final digit overflow u64.
        let bomb = [0xFFu8; 11];
        let mut off = 0;
        assert_eq!(get_varint(&bomb, &mut off), None);
    }

    #[test]
    fn column_sets_imply_flags_and_pos() {
        let s = ColumnSet::of(&[ColumnKind::Seq]);
        assert!(s.contains(ColumnKind::Seq));
        assert!(s.contains(ColumnKind::Flags));
        assert!(s.contains(ColumnKind::Pos));
        assert!(!s.contains(ColumnKind::Qual));
        assert!(ColumnSet::ALL.is_all());
        assert!(!ColumnSet::POSITIONS.is_all());
        assert!(s.union(ColumnSet::of(&[ColumnKind::Qual])).contains(ColumnKind::Qual));
    }
}
