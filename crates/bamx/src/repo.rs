//! Crash-safe shard repository: atomic publication and checksummed
//! manifests for BAMX/BAIX artifact directories (DESIGN.md §7.5).
//!
//! The paper's speedup story rests on preprocessing being done *once* and
//! reused forever, so a crash mid-preprocessing must never leave state
//! that is indistinguishable from corruption. This module provides:
//!
//! * a per-directory [`Manifest`] listing every published artifact with
//!   its byte length, whole-file CRC32, and layout fingerprint, protected
//!   by a trailing checksum of the manifest bytes themselves;
//! * atomic publication via [`ShardRepo::stage`]: artifacts are written
//!   to a dot-prefixed temp name, fsynced, renamed into place, and the
//!   directory fsynced — strictly *before* the manifest entry referencing
//!   them is recorded. A crash at any byte therefore leaves either the
//!   old state or the new state, never a manifest pointing at a torn file;
//! * an integrity scan ([`ShardRepo::verify`]) classifying every artifact
//!   as verified, torn (short/missing → [`DecodeErrorKind::Torn`]), or
//!   mismatched (CRC/fingerprint → [`DecodeErrorKind::ManifestMismatch`]),
//!   plus detection of unpublished artifacts and stray temp files left by
//!   a crash.
//!
//! All filesystem mutation goes through the [`RepoFs`] seam so
//! `ngs-fault` can inject write-side faults (crashes at a byte, torn
//! writes, transient fsync/rename failures) deterministically.
//!
//! Transient publication failures (fsync/rename I/O errors) surface as
//! [`Error::Io`], which [`Error::is_transient`] classifies as retryable —
//! repair paths retry them with backoff instead of quarantining a healthy
//! shard.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use ngs_bgzf::crc32::{crc32, Crc32};
use ngs_formats::error::{DecodeErrorKind, Error, Result};

use crate::layout::BamxLayout;

/// Repository lifecycle counters published into the global `ngs-obs`
/// registry (`repo.*`). The repo has no injected-registry seam — it is
/// constructed deep inside converters and repair callbacks — so, like
/// the BGZF codec, it uses cached global handles behind the
/// [`ngs_obs::enabled`] gate.
mod obs {
    use std::sync::{Arc, OnceLock};

    use ngs_obs::Counter;

    pub(super) struct Counters {
        pub(super) published: Arc<Counter>,
        pub(super) removed: Arc<Counter>,
        pub(super) verify_ok: Arc<Counter>,
        pub(super) verify_failed: Arc<Counter>,
        pub(super) stray_temps_cleaned: Arc<Counter>,
    }

    pub(super) fn counters() -> Option<&'static Counters> {
        if !ngs_obs::enabled() {
            return None;
        }
        static COUNTERS: OnceLock<Counters> = OnceLock::new();
        Some(COUNTERS.get_or_init(|| {
            let r = ngs_obs::global();
            Counters {
                published: r.counter("repo.artifacts_published"),
                removed: r.counter("repo.artifacts_removed"),
                verify_ok: r.counter("repo.verifications_ok"),
                verify_failed: r.counter("repo.verifications_failed"),
                stray_temps_cleaned: r.counter("repo.stray_temps_cleaned"),
            }
        }))
    }
}

/// The manifest file name inside a shard directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// First line of every manifest.
const MANIFEST_MAGIC: &str = "NGS-MANIFEST 1";

/// Fingerprint recorded for artifacts without a BAMX layout (e.g. BAIX).
pub const FINGERPRINT_NONE: u32 = 0;

/// The layout fingerprint of a v1 BAMX artifact: CRC32 of the 12 encoded
/// layout bytes. Lets consumers detect a layout change without decoding
/// the shard, and repair verify that a resumed shard pads identically.
pub fn layout_fingerprint(layout: &BamxLayout) -> u32 {
    crc32(&layout.encode())
}

/// Version-tagged layout fingerprint: v1 stays [`layout_fingerprint`]
/// (manifests written before v2 existed keep verifying), v2 prefixes the
/// encoded layout with its version byte so re-encoding a shard under the
/// other format always changes the fingerprint even when the layout
/// maxima agree.
pub fn layout_fingerprint_versioned(layout: &BamxLayout, version: crate::BamxVersion) -> u32 {
    match version {
        crate::BamxVersion::V1 => layout_fingerprint(layout),
        crate::BamxVersion::V2 => {
            let mut bytes = vec![0x02u8];
            bytes.extend_from_slice(&layout.encode());
            crc32(&bytes)
        }
    }
}

/// Filesystem mutation seam for atomic publication. Production uses
/// [`StdFs`]; `ngs-fault` provides a fault-injecting implementation so
/// crash points and transient fsync/rename failures are deterministic.
///
/// Reads are *not* routed through this trait — read-side faults are the
/// territory of `FaultyFile`/`FaultyRead` (DESIGN.md §7.1).
pub trait RepoFs: Send + Sync {
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>>;
    /// Flushes a closed file's bytes to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` within one directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flushes a directory's entry table (the renames) to stable storage.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file (stray-temp cleanup).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl RepoFs for StdFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(File::create(path)?))
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is how rename durability is guaranteed on Linux;
        // on platforms where opening a directory fails the rename itself
        // is still atomic, so degrade silently rather than error.
        match File::open(dir) {
            Ok(d) => match d.sync_all() {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == io::ErrorKind::InvalidInput => Ok(()),
                Err(e) => Err(e),
            },
            Err(_) => Ok(()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// One published artifact in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Artifact file name (no path separators).
    pub name: String,
    /// Exact byte length.
    pub len: u64,
    /// CRC32 of the whole file.
    pub crc32: u32,
    /// [`layout_fingerprint`] for BAMX artifacts, [`FINGERPRINT_NONE`]
    /// otherwise.
    pub fingerprint: u32,
}

/// The decoded per-directory manifest: free-form metadata plus one entry
/// per published artifact. Encoding is deterministic (sorted), so two
/// repositories holding the same artifact set produce byte-identical
/// manifests regardless of publication order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Sorted key→value metadata (e.g. `ranks`, `source`, `compression`).
    pub meta: BTreeMap<String, String>,
    /// Entries keyed by artifact name.
    pub entries: BTreeMap<String, ManifestEntry>,
}

impl Manifest {
    /// Looks up an artifact entry by name.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.get(name)
    }

    /// Serializes the manifest. The final line is a CRC32 of everything
    /// before it, so a scribbled-on manifest is detected at decode time.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(MANIFEST_MAGIC);
        body.push('\n');
        for (k, v) in &self.meta {
            body.push_str(&format!("meta {k} {v}\n"));
        }
        for e in self.entries.values() {
            body.push_str(&format!(
                "artifact {} {} {:08x} {:08x}\n",
                e.name, e.len, e.crc32, e.fingerprint
            ));
        }
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("checksum {crc:08x}\n"));
        body.into_bytes()
    }

    /// Parses manifest bytes. Never panics on arbitrary input: every
    /// malformation returns a typed [`Error::Decode`] (enforced by the
    /// proptest corpus in `crates/bamx/tests/repo_manifest.rs`).
    pub fn decode(bytes: &[u8], context: &str) -> Result<Self> {
        let bad = |kind, offset, detail: String| Error::decode(kind, offset, context, detail);
        let text = std::str::from_utf8(bytes).map_err(|e| {
            bad(DecodeErrorKind::Corrupt, e.valid_up_to() as u64, "manifest is not UTF-8".into())
        })?;

        // Locate the trailing checksum line; everything before it is the
        // checksummed region.
        let check_start = if let Some(pos) = text.rfind("\nchecksum ") {
            pos + 1
        } else if text.starts_with("checksum ") {
            0
        } else {
            return Err(bad(
                DecodeErrorKind::Truncated,
                bytes.len() as u64,
                "missing trailing checksum line".into(),
            ));
        };
        let check_line = text[check_start..].trim_end_matches('\n');
        if check_line.contains('\n') {
            return Err(bad(
                DecodeErrorKind::Corrupt,
                check_start as u64,
                "data after the checksum line".into(),
            ));
        }
        let stated = parse_hex32(check_line.trim_start_matches("checksum ")).ok_or_else(|| {
            bad(DecodeErrorKind::Corrupt, check_start as u64, "unparseable checksum line".into())
        })?;
        let actual = crc32(&bytes[..check_start]);
        if stated != actual {
            return Err(bad(
                DecodeErrorKind::ManifestMismatch,
                check_start as u64,
                format!("manifest checksum {stated:08x} but contents hash to {actual:08x}"),
            ));
        }

        let mut lines = text[..check_start].lines();
        let mut offset = 0u64;
        match lines.next() {
            Some(first) if first == MANIFEST_MAGIC => offset += first.len() as u64 + 1,
            Some(first) => {
                return Err(bad(DecodeErrorKind::BadMagic, 0, format!("bad first line {first:?}")))
            }
            None => return Err(bad(DecodeErrorKind::BadMagic, 0, "empty manifest".into())),
        }

        let mut manifest = Manifest::default();
        for line in lines {
            let line_offset = offset;
            offset += line.len() as u64 + 1;
            if let Some(rest) = line.strip_prefix("meta ") {
                let (key, value) = rest.split_once(' ').ok_or_else(|| {
                    bad(DecodeErrorKind::Corrupt, line_offset, "meta line without value".into())
                })?;
                if key.is_empty()
                    || manifest.meta.insert(key.to_string(), value.to_string()).is_some()
                {
                    return Err(bad(
                        DecodeErrorKind::Corrupt,
                        line_offset,
                        format!("empty or duplicate meta key {key:?}"),
                    ));
                }
            } else if let Some(rest) = line.strip_prefix("artifact ") {
                let fields: Vec<&str> = rest.split(' ').collect();
                let entry = match fields.as_slice() {
                    [name, len, crc, fp] => {
                        let parsed = (
                            len.parse::<u64>().ok(),
                            parse_hex32(crc),
                            parse_hex32(fp),
                        );
                        match parsed {
                            (Some(len), Some(crc32), Some(fingerprint))
                                if valid_artifact_name(name) =>
                            {
                                ManifestEntry {
                                    name: name.to_string(),
                                    len,
                                    crc32,
                                    fingerprint,
                                }
                            }
                            _ => {
                                return Err(bad(
                                    DecodeErrorKind::Corrupt,
                                    line_offset,
                                    format!("unparseable artifact line {line:?}"),
                                ))
                            }
                        }
                    }
                    _ => {
                        return Err(bad(
                            DecodeErrorKind::Corrupt,
                            line_offset,
                            format!("artifact line needs 4 fields, got {}", fields.len()),
                        ))
                    }
                };
                if manifest.entries.insert(entry.name.clone(), entry).is_some() {
                    return Err(bad(
                        DecodeErrorKind::Corrupt,
                        line_offset,
                        "duplicate artifact name".into(),
                    ));
                }
            } else {
                return Err(bad(
                    DecodeErrorKind::Corrupt,
                    line_offset,
                    format!("unrecognized manifest line {line:?}"),
                ));
            }
        }
        Ok(manifest)
    }
}

fn parse_hex32(s: &str) -> Option<u32> {
    (s.len() == 8).then(|| u32::from_str_radix(s, 16).ok()).flatten()
}

/// True when `name` can be published: non-empty, printable ASCII without
/// spaces or path separators, not dot-prefixed (temps), not the manifest.
pub fn valid_artifact_name(name: &str) -> bool {
    !name.is_empty()
        && name != MANIFEST_NAME
        && !name.starts_with('.')
        && name.bytes().all(|b| b.is_ascii_graphic() && b != b'/' && b != b'\\')
}

/// Why an artifact failed verification.
#[derive(Debug, Clone)]
pub struct Damage {
    /// Artifact name from the manifest.
    pub name: String,
    /// [`DecodeErrorKind::Torn`] (short/missing bytes) or
    /// [`DecodeErrorKind::ManifestMismatch`] (checksum/fingerprint).
    pub kind: DecodeErrorKind,
    /// Human-readable description.
    pub detail: String,
}

/// Result of an integrity scan over a shard directory.
#[derive(Debug, Clone, Default)]
pub struct RepoReport {
    /// Artifacts whose bytes match their manifest entry exactly.
    pub verified: Vec<String>,
    /// Artifacts that are missing, short, or mismatched — repair targets.
    pub damaged: Vec<Damage>,
    /// On-disk artifacts not listed in the manifest (a crash between
    /// artifact rename and manifest record; harmless, rebuilt by repair).
    pub unpublished: Vec<String>,
    /// Dot-prefixed temp files left by an interrupted stage.
    pub stray_temps: Vec<String>,
}

impl RepoReport {
    /// True when every published artifact verified.
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
    }
}

/// A shard directory with crash-safe publication. Cheap to construct;
/// the manifest is re-read on demand so concurrent publishers (one per
/// preprocessing rank) stay coherent through the internal lock.
pub struct ShardRepo {
    dir: PathBuf,
    fs: Arc<dyn RepoFs>,
    /// Serializes manifest read-modify-write cycles across rank threads.
    lock: Mutex<()>,
}

impl std::fmt::Debug for ShardRepo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRepo").field("dir", &self.dir).finish_non_exhaustive()
    }
}

impl ShardRepo {
    /// Opens (creating the directory and an empty manifest if needed) a
    /// repository on the real filesystem.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::create_with(dir, Arc::new(StdFs))
    }

    /// [`ShardRepo::create`] with an injected filesystem.
    pub fn create_with(dir: impl Into<PathBuf>, fs: Arc<dyn RepoFs>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let repo = ShardRepo { dir, fs, lock: Mutex::new(()) };
        if !repo.manifest_path().exists() {
            repo.write_manifest(&Manifest::default())?;
        }
        Ok(repo)
    }

    /// Opens an existing repository; errors if no manifest is present.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open_with(dir, Arc::new(StdFs))
    }

    /// [`ShardRepo::open`] with an injected filesystem.
    pub fn open_with(dir: impl Into<PathBuf>, fs: Arc<dyn RepoFs>) -> Result<Self> {
        let dir = dir.into();
        let repo = ShardRepo { dir, fs, lock: Mutex::new(()) };
        if !repo.manifest_path().exists() {
            return Err(Error::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no {MANIFEST_NAME} in {}", repo.dir.display()),
            )));
        }
        Ok(repo)
    }

    /// True when `dir` is manifest-managed (a `MANIFEST` file exists).
    pub fn is_managed(dir: &Path) -> bool {
        dir.join(MANIFEST_NAME).is_file()
    }

    /// The repository directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    fn temp_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!(".{name}.tmp"))
    }

    /// Loads and validates the manifest.
    pub fn manifest(&self) -> Result<Manifest> {
        let path = self.manifest_path();
        let bytes = std::fs::read(&path)?;
        Manifest::decode(&bytes, &path.display().to_string())
    }

    /// Atomically replaces the manifest: encode → temp → fsync → rename →
    /// directory fsync. Failures surface as [`Error::Io`] (transient).
    fn write_manifest(&self, manifest: &Manifest) -> Result<()> {
        let tmp = self.temp_path(MANIFEST_NAME);
        {
            let mut w = self.fs.create(&tmp)?;
            w.write_all(&manifest.encode())?;
            w.flush()?;
        }
        self.fs.sync_file(&tmp)?;
        self.fs.rename(&tmp, &self.manifest_path())?;
        self.fs.sync_dir(&self.dir)?;
        Ok(())
    }

    /// Begins staging an artifact: returns a writer targeting a temp
    /// file. Call [`StagedArtifact::seal`] to atomically publish the
    /// bytes, then [`ShardRepo::record`] to list them in the manifest.
    pub fn stage(&self, name: &str) -> Result<StagedArtifact<'_>> {
        if !valid_artifact_name(name) {
            return Err(Error::InvalidRecord(format!("invalid artifact name {name:?}")));
        }
        let tmp = self.temp_path(name);
        let writer = self.fs.create(&tmp)?;
        Ok(StagedArtifact {
            repo: self,
            name: name.to_string(),
            tmp,
            writer: Some(writer),
            crc: Crc32::new(),
            len: 0,
        })
    }

    /// Records published artifacts in the manifest (replacing same-name
    /// entries) in one atomic rewrite. Callers must only pass entries
    /// returned by [`StagedArtifact::seal`] — the artifact bytes must
    /// already be durable, or the crash-consistency invariant breaks.
    pub fn record(&self, entries: Vec<ManifestEntry>) -> Result<()> {
        let published = entries.len() as u64;
        self.update_manifest(|m| {
            for e in entries {
                m.entries.insert(e.name.clone(), e);
            }
        })?;
        if let Some(c) = obs::counters() {
            c.published.add(published);
        }
        Ok(())
    }

    /// Unpublishes an artifact: drops its manifest entry (atomic
    /// rewrite), then deletes the file. The order matters — a crash
    /// between the two leaves an *unpublished* file (harmless, reported
    /// by [`ShardRepo::verify`]), never a manifest entry pointing at a
    /// missing file. Missing files are not an error.
    pub fn remove(&self, name: &str) -> Result<()> {
        self.update_manifest(|m| {
            m.entries.remove(name);
        })?;
        match self.fs.remove_file(&self.dir.join(name)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(Error::Io(e)),
        }
        if let Some(c) = obs::counters() {
            c.removed.inc();
        }
        Ok(())
    }

    /// Sets a metadata key in the manifest (atomic rewrite).
    pub fn set_meta(&self, key: &str, value: &str) -> Result<()> {
        let (key, value) = (key.to_string(), value.to_string());
        self.update_manifest(|m| {
            m.meta.insert(key, value);
        })
    }

    fn update_manifest(&self, mutate: impl FnOnce(&mut Manifest)) -> Result<()> {
        let _guard = self.lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut manifest = self.manifest()?;
        mutate(&mut manifest);
        self.write_manifest(&manifest)
    }

    /// Stages, seals, and records a whole in-memory artifact. The layout
    /// fingerprint is derived from the bytes (BAMX) or none (other).
    pub fn publish_bytes(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut staged = self.stage(name)?;
        staged.write_all(bytes)?;
        let entry = staged.seal(fingerprint_of(name, bytes))?;
        self.record(vec![entry])
    }

    /// Verifies one published artifact against its manifest entry: exact
    /// length, whole-file CRC32, and layout fingerprint. Returns the
    /// verified entry, or a typed [`Error::Decode`] with kind
    /// [`DecodeErrorKind::Torn`] / [`DecodeErrorKind::ManifestMismatch`].
    pub fn verify_artifact(&self, name: &str) -> Result<ManifestEntry> {
        let manifest = self.manifest()?;
        let entry = manifest.entry(name).ok_or_else(|| {
            Error::decode(
                DecodeErrorKind::ManifestMismatch,
                0,
                self.dir.join(name).display().to_string(),
                "artifact not listed in MANIFEST",
            )
        })?;
        let checked = self.check_entry(entry).map(|()| entry.clone());
        if let Some(c) = obs::counters() {
            match &checked {
                Ok(_) => c.verify_ok.inc(),
                Err(_) => c.verify_failed.inc(),
            }
        }
        checked
    }

    fn check_entry(&self, entry: &ManifestEntry) -> Result<()> {
        let path = self.dir.join(&entry.name);
        let context = path.display().to_string();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(Error::decode(
                    DecodeErrorKind::Torn,
                    0,
                    context,
                    "listed in MANIFEST but missing on disk",
                ));
            }
            Err(e) => return Err(Error::Io(e)),
        };
        if bytes.len() as u64 != entry.len {
            return Err(Error::decode(
                DecodeErrorKind::Torn,
                bytes.len() as u64,
                context,
                format!("file is {} bytes but MANIFEST promises {}", bytes.len(), entry.len),
            ));
        }
        let crc = crc32(&bytes);
        if crc != entry.crc32 {
            return Err(Error::decode(
                DecodeErrorKind::ManifestMismatch,
                0,
                context,
                format!("file CRC32 {crc:08x} but MANIFEST promises {:08x}", entry.crc32),
            ));
        }
        let fp = fingerprint_of(&entry.name, &bytes);
        if fp != entry.fingerprint {
            return Err(Error::decode(
                DecodeErrorKind::ManifestMismatch,
                0,
                context,
                format!(
                    "layout fingerprint {fp:08x} but MANIFEST promises {:08x}",
                    entry.fingerprint
                ),
            ));
        }
        Ok(())
    }

    /// True when `name` is listed and its bytes verify — the resume test:
    /// preprocessing skips shards for which this holds.
    pub fn contains_verified(&self, name: &str) -> bool {
        self.verify_artifact(name).is_ok()
    }

    /// Full integrity scan: verifies every manifest entry and sweeps the
    /// directory for unpublished artifacts and stray temp files.
    pub fn verify(&self) -> Result<RepoReport> {
        let manifest = self.manifest()?;
        let mut report = RepoReport::default();
        for entry in manifest.entries.values() {
            match self.check_entry(entry) {
                Ok(()) => report.verified.push(entry.name.clone()),
                Err(Error::Decode(d)) => {
                    report.damaged.push(Damage { name: entry.name.clone(), kind: d.kind, detail: d.detail })
                }
                Err(e) => return Err(e),
            }
        }
        for dirent in std::fs::read_dir(&self.dir)? {
            let file_name = dirent?.file_name();
            let Some(name) = file_name.to_str() else { continue };
            if name == MANIFEST_NAME {
                continue;
            }
            if name.starts_with('.') {
                if name.ends_with(".tmp") {
                    report.stray_temps.push(name.to_string());
                }
            } else if manifest.entry(name).is_none() {
                report.unpublished.push(name.to_string());
            }
        }
        report.verified.sort();
        report.unpublished.sort();
        report.stray_temps.sort();
        report.damaged.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(report)
    }

    /// Deletes stray temp files (best-effort crash debris cleanup);
    /// returns the names removed.
    pub fn clean_stray_temps(&self) -> Result<Vec<String>> {
        let mut removed = Vec::new();
        for name in self.verify()?.stray_temps {
            self.fs.remove_file(&self.dir.join(&name))?;
            removed.push(name);
        }
        if let Some(c) = obs::counters() {
            c.stray_temps_cleaned.add(removed.len() as u64);
        }
        Ok(removed)
    }
}

/// Computes the manifest fingerprint for an artifact's bytes: the layout
/// fingerprint for BAMX files (parsed from the framing without decoding
/// records), [`FINGERPRINT_NONE`] otherwise or when unparseable (the CRC
/// check catches any content damage independently).
pub fn fingerprint_of(name: &str, bytes: &[u8]) -> u32 {
    if !name.ends_with(".bamx") {
        return FINGERPRINT_NONE;
    }
    // Both versions share the prefix framing by design: magic(5) +
    // version-specific byte(1) + prologue_len u32 LE(4) + prologue +
    // layout(12), so one parse covers v1 and v2 — only the tag differs.
    if bytes.len() < 10 {
        return FINGERPRINT_NONE;
    }
    let version = if bytes[..5] == crate::file::MAGIC {
        crate::BamxVersion::V1
    } else if bytes[..5] == crate::layout_v2::MAGIC_V2 {
        crate::BamxVersion::V2
    } else {
        return FINGERPRINT_NONE;
    };
    let plen = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    match bytes.get(10 + plen..10 + plen + 12) {
        Some(layout_bytes) => match version {
            crate::BamxVersion::V1 => crc32(layout_bytes),
            crate::BamxVersion::V2 => {
                let mut tagged = vec![0x02u8];
                tagged.extend_from_slice(layout_bytes);
                crc32(&tagged)
            }
        },
        None => FINGERPRINT_NONE,
    }
}

/// An artifact mid-publication: a checksumming writer over a temp file.
/// [`StagedArtifact::seal`] makes the bytes durable and atomically
/// renames them into place; dropping without sealing leaves the temp on
/// disk (exactly what a crash would), to be swept up as a stray.
pub struct StagedArtifact<'a> {
    repo: &'a ShardRepo,
    name: String,
    tmp: PathBuf,
    writer: Option<Box<dyn Write + Send>>,
    crc: Crc32,
    len: u64,
}

impl StagedArtifact<'_> {
    /// The artifact name being staged.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Publishes the staged bytes: flush → fsync → rename into place →
    /// directory fsync. Returns the manifest entry for
    /// [`ShardRepo::record`]; the artifact is durable but *unlisted*
    /// until recorded, which is the safe order (DESIGN.md §7.5).
    pub fn seal(mut self, fingerprint: u32) -> Result<ManifestEntry> {
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        // Writer dropped (closed) before syncing the path.
        self.repo.fs.sync_file(&self.tmp)?;
        self.repo.fs.rename(&self.tmp, &self.repo.dir.join(&self.name))?;
        self.repo.fs.sync_dir(&self.repo.dir)?;
        Ok(ManifestEntry {
            name: self.name.clone(),
            len: self.len,
            crc32: self.crc.finish(),
            fingerprint,
        })
    }
}

impl Write for StagedArtifact<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let w = self
            .writer
            .as_mut()
            .ok_or_else(|| io::Error::other("staged artifact already sealed"))?;
        let n = w.write(buf)?;
        self.crc.update(&buf[..n]);
        self.len += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        match self.writer.as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_manifest_roundtrip() {
        let m = Manifest::default();
        assert_eq!(Manifest::decode(&m.encode(), "t").unwrap(), m);
    }

    #[test]
    fn manifest_roundtrip_with_entries_and_meta() {
        let mut m = Manifest::default();
        m.meta.insert("ranks".into(), "4".into());
        m.meta.insert("source".into(), "sample text with spaces".into());
        for (i, name) in ["b.baix", "a.bamx"].iter().enumerate() {
            m.entries.insert(
                name.to_string(),
                ManifestEntry {
                    name: name.to_string(),
                    len: 1000 + i as u64,
                    crc32: 0xDEAD_0000 + i as u32,
                    fingerprint: i as u32,
                },
            );
        }
        let enc = m.encode();
        assert_eq!(Manifest::decode(&enc, "t").unwrap(), m);
        // Deterministic: re-encoding yields identical bytes.
        assert_eq!(Manifest::decode(&enc, "t").unwrap().encode(), enc);
    }

    #[test]
    fn scribbled_manifest_is_mismatch() {
        let mut m = Manifest::default();
        m.meta.insert("k".into(), "v".into());
        let mut enc = m.encode();
        // Flip a byte inside the checksummed region.
        enc[4] ^= 0x20;
        match Manifest::decode(&enc, "t") {
            Err(Error::Decode(d)) => assert_eq!(d.kind, DecodeErrorKind::ManifestMismatch),
            other => panic!("expected ManifestMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_manifest_is_truncated() {
        let m = Manifest::default();
        let enc = m.encode();
        match Manifest::decode(&enc[..10], "t") {
            Err(Error::Decode(d)) => assert_eq!(d.kind, DecodeErrorKind::Truncated),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn artifact_names_validated() {
        assert!(valid_artifact_name("a.bamx"));
        assert!(valid_artifact_name("x.shard0001.baix"));
        assert!(!valid_artifact_name(""));
        assert!(!valid_artifact_name(".hidden"));
        assert!(!valid_artifact_name("has space"));
        assert!(!valid_artifact_name("a/b"));
        assert!(!valid_artifact_name(MANIFEST_NAME));
    }

    #[test]
    fn publish_and_verify_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let repo = ShardRepo::create(dir.path()).unwrap();
        repo.publish_bytes("data.bin", b"hello shard").unwrap();
        let entry = repo.verify_artifact("data.bin").unwrap();
        assert_eq!(entry.len, 11);
        let report = repo.verify().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.verified, vec!["data.bin"]);
        assert!(repo.contains_verified("data.bin"));
    }

    #[test]
    fn torn_and_mismatched_artifacts_detected() {
        let dir = tempfile::tempdir().unwrap();
        let repo = ShardRepo::create(dir.path()).unwrap();
        repo.publish_bytes("short.bin", b"0123456789").unwrap();
        repo.publish_bytes("flipped.bin", b"abcdefghij").unwrap();
        repo.publish_bytes("gone.bin", b"here today").unwrap();
        std::fs::write(dir.path().join("short.bin"), b"0123").unwrap();
        std::fs::write(dir.path().join("flipped.bin"), b"abcdefghiX").unwrap();
        std::fs::remove_file(dir.path().join("gone.bin")).unwrap();

        let report = repo.verify().unwrap();
        assert!(!report.is_clean());
        let kinds: BTreeMap<&str, DecodeErrorKind> =
            report.damaged.iter().map(|d| (d.name.as_str(), d.kind)).collect();
        assert_eq!(kinds["short.bin"], DecodeErrorKind::Torn);
        assert_eq!(kinds["flipped.bin"], DecodeErrorKind::ManifestMismatch);
        assert_eq!(kinds["gone.bin"], DecodeErrorKind::Torn);
        assert!(!repo.contains_verified("short.bin"));
    }

    #[test]
    fn unsealed_stage_is_a_stray_temp_not_an_artifact() {
        let dir = tempfile::tempdir().unwrap();
        let repo = ShardRepo::create(dir.path()).unwrap();
        {
            let mut staged = repo.stage("lost.bin").unwrap();
            staged.write_all(b"partial").unwrap();
            // Dropped without seal — the crash shape.
        }
        let report = repo.verify().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.stray_temps, vec![".lost.bin.tmp"]);
        assert!(report.verified.is_empty());
        assert_eq!(repo.clean_stray_temps().unwrap(), vec![".lost.bin.tmp"]);
        assert!(repo.verify().unwrap().stray_temps.is_empty());
    }

    #[test]
    fn sealed_but_unrecorded_is_unpublished() {
        let dir = tempfile::tempdir().unwrap();
        let repo = ShardRepo::create(dir.path()).unwrap();
        let mut staged = repo.stage("orphan.bin").unwrap();
        staged.write_all(b"durable but unlisted").unwrap();
        staged.seal(FINGERPRINT_NONE).unwrap();
        // Crash before record(): the file exists, the manifest is silent.
        let report = repo.verify().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.unpublished, vec!["orphan.bin"]);
        assert!(!repo.contains_verified("orphan.bin"));
    }

    #[test]
    fn open_requires_manifest() {
        let dir = tempfile::tempdir().unwrap();
        assert!(ShardRepo::open(dir.path()).is_err());
        assert!(!ShardRepo::is_managed(dir.path()));
        ShardRepo::create(dir.path()).unwrap();
        assert!(ShardRepo::is_managed(dir.path()));
        ShardRepo::open(dir.path()).unwrap();
    }

    #[test]
    fn record_replaces_same_name_entries() {
        let dir = tempfile::tempdir().unwrap();
        let repo = ShardRepo::create(dir.path()).unwrap();
        repo.publish_bytes("a.bin", b"v1").unwrap();
        repo.publish_bytes("a.bin", b"version two").unwrap();
        let m = repo.manifest().unwrap();
        assert_eq!(m.entries.len(), 1);
        assert_eq!(m.entry("a.bin").unwrap().len, 11);
        assert!(repo.contains_verified("a.bin"));
    }

    #[test]
    fn meta_survives_publication() {
        let dir = tempfile::tempdir().unwrap();
        let repo = ShardRepo::create(dir.path()).unwrap();
        repo.set_meta("ranks", "8").unwrap();
        repo.publish_bytes("a.bin", b"x").unwrap();
        assert_eq!(repo.manifest().unwrap().meta["ranks"], "8");
    }
}
