//! Fixed-width BAMX record encode/decode.
//!
//! Unlike BAM, every field slot has a layout-determined width; actual
//! lengths are stored in the fixed prefix and the remainder of each slot
//! is zero padding.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ngs_formats::bam::{decode_tags, encode_tags};
use ngs_formats::cigar::{Cigar, CigarOp};
use ngs_formats::error::{Error, Result};
use ngs_formats::flags::Flags;
use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;
use ngs_formats::seq;

use crate::layout::BamxLayout;

/// Encodes `record` into exactly `layout.record_size()` bytes appended to
/// `out`.
pub fn encode(record: &AlignmentRecord, header: &SamHeader, layout: &BamxLayout, out: &mut Vec<u8>) -> Result<()> {
    let start = out.len();

    let ref_id = resolve_ref(header, &record.rname)?;
    let next_ref_id =
        if record.rnext == b"=" { ref_id } else { resolve_ref(header, &record.rnext)? };

    let qname: &[u8] = if record.qname.is_empty() { b"*" } else { &record.qname };
    if qname.len() > layout.max_qname as usize {
        return Err(Error::InvalidRecord("qname exceeds BAMX layout".into()));
    }
    if record.cigar.len() > layout.max_cigar_ops as usize {
        return Err(Error::InvalidRecord("CIGAR exceeds BAMX layout".into()));
    }
    if record.seq.len() > layout.max_seq as usize {
        return Err(Error::InvalidRecord("sequence exceeds BAMX layout".into()));
    }
    let tag_bytes = encode_tags(&record.tags)?;
    if tag_bytes.len() > layout.max_tags as usize {
        return Err(Error::InvalidRecord("tags exceed BAMX layout".into()));
    }
    for (what, raw) in [("POS", record.pos), ("PNEXT", record.pnext)] {
        // checked_sub keeps the guard total even for i64::MIN.
        match raw.checked_sub(1) {
            Some(v) if v >= i32::MIN as i64 && v <= i32::MAX as i64 => {}
            _ => {
                return Err(Error::InvalidRecord(format!("{what} {raw} unrepresentable (i32)")));
            }
        }
    }

    out.extend_from_slice(&record.flag.0.to_le_bytes());
    out.push(record.mapq);
    out.push(0); // reserved
    out.extend_from_slice(&ref_id.to_le_bytes());
    out.extend_from_slice(&((record.pos - 1) as i32).to_le_bytes());
    out.extend_from_slice(&next_ref_id.to_le_bytes());
    out.extend_from_slice(&((record.pnext - 1) as i32).to_le_bytes());
    out.extend_from_slice(&record.tlen.to_le_bytes());
    out.extend_from_slice(&(qname.len() as u16).to_le_bytes());
    out.extend_from_slice(&(record.cigar.len() as u16).to_le_bytes());
    out.extend_from_slice(&(record.seq.len() as u32).to_le_bytes());
    out.extend_from_slice(&(tag_bytes.len() as u32).to_le_bytes());
    out.push(u8::from(!record.qual.is_empty()));

    // qname slot
    out.extend_from_slice(qname);
    out.extend(std::iter::repeat_n(0u8, layout.max_qname as usize - qname.len()));
    // cigar slot
    for &(len, op) in &record.cigar.0 {
        out.extend_from_slice(&((len << 4) | op.to_bam_code()).to_le_bytes());
    }
    out.extend(std::iter::repeat_n(0u8, (layout.max_cigar_ops as usize - record.cigar.len()) * 4));
    // seq slot (packed)
    let packed = seq::pack(&record.seq);
    out.extend_from_slice(&packed);
    out.extend(std::iter::repeat_n(0u8, layout.seq_bytes() - packed.len()));
    // qual slot
    if record.qual.is_empty() {
        out.extend(std::iter::repeat_n(0u8, layout.max_seq as usize));
    } else {
        if record.qual.len() != record.seq.len() {
            return Err(Error::InvalidRecord("SEQ/QUAL length mismatch".into()));
        }
        out.extend_from_slice(&record.qual);
        out.extend(std::iter::repeat_n(0u8, layout.max_seq as usize - record.qual.len()));
    }
    // tags slot
    out.extend_from_slice(&tag_bytes);
    out.extend(std::iter::repeat_n(0u8, layout.max_tags as usize - tag_bytes.len()));

    debug_assert_eq!(out.len() - start, layout.record_size());
    Ok(())
}

pub(crate) fn resolve_ref(header: &SamHeader, name: &[u8]) -> Result<i32> {
    if name == b"*" || name.is_empty() {
        return Ok(-1);
    }
    header
        .reference_id(name)
        .map(|i| i as i32)
        .ok_or_else(|| Error::UnknownReference(String::from_utf8_lossy(name).into_owned()))
}

/// Reads the (ref_id, pos0) key of an encoded record without full decode —
/// the hot path for BAIX index construction.
pub fn peek_position(buf: &[u8]) -> Result<(i32, i32)> {
    if buf.len() < 12 {
        return Err(Error::InvalidRecord("BAMX record too short".into()));
    }
    let ref_id = i32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let pos0 = i32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    Ok((ref_id, pos0))
}

/// Decodes one fixed-width record from `buf` (which must be exactly one
/// record of the given layout).
pub fn decode(buf: &[u8], header: &SamHeader, layout: &BamxLayout) -> Result<AlignmentRecord> {
    if buf.len() < layout.record_size() {
        return Err(Error::InvalidRecord("BAMX record truncated".into()));
    }
    let flag = Flags(u16::from_le_bytes([buf[0], buf[1]]));
    let mapq = buf[2];
    let ref_id = i32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let pos0 = i32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    let next_ref_id = i32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
    let next_pos0 = i32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]);
    let tlen = {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[20..28]);
        i64::from_le_bytes(b)
    };
    let qname_len = u16::from_le_bytes([buf[28], buf[29]]) as usize;
    let n_cigar = u16::from_le_bytes([buf[30], buf[31]]) as usize;
    let seq_len = u32::from_le_bytes([buf[32], buf[33], buf[34], buf[35]]) as usize;
    let tag_len = u32::from_le_bytes([buf[36], buf[37], buf[38], buf[39]]) as usize;
    let qual_present = buf[40] != 0;

    if qname_len > layout.max_qname as usize
        || n_cigar > layout.max_cigar_ops as usize
        || seq_len > layout.max_seq as usize
        || tag_len > layout.max_tags as usize
    {
        return Err(Error::InvalidRecord("BAMX lengths exceed layout".into()));
    }

    let mut off = crate::layout::FIXED_FIELDS_SIZE;
    let qname = buf[off..off + qname_len].to_vec();
    off += layout.max_qname as usize;

    let mut cigar_ops = Vec::with_capacity(n_cigar);
    for i in 0..n_cigar {
        let p = off + i * 4;
        let enc = u32::from_le_bytes([buf[p], buf[p + 1], buf[p + 2], buf[p + 3]]);
        cigar_ops.push((enc >> 4, CigarOp::from_bam_code(enc & 0xF)?));
    }
    off += layout.max_cigar_ops as usize * 4;

    let seq_bases = seq::unpack(&buf[off..off + layout.seq_bytes()], seq_len)?;
    off += layout.seq_bytes();

    let qual =
        if qual_present { buf[off..off + seq_len].to_vec() } else { Vec::new() };
    off += layout.max_seq as usize;

    let tags = decode_tags(&buf[off..off + tag_len])?;

    let rname = match header.reference_name(ref_id) {
        Some(n) => n.to_vec(),
        None => b"*".to_vec(),
    };
    let rnext = if next_ref_id < 0 {
        b"*".to_vec()
    } else if next_ref_id == ref_id {
        b"=".to_vec()
    } else {
        header
            .reference_name(next_ref_id)
            .map(<[u8]>::to_vec)
            .ok_or_else(|| Error::InvalidRecord("next_ref_id out of range".into()))?
    };

    Ok(AlignmentRecord {
        qname: if qname == b"*" { Vec::new() } else { qname },
        flag,
        rname,
        pos: pos0 as i64 + 1,
        mapq,
        cigar: Cigar(cigar_ops),
        rnext,
        pnext: next_pos0 as i64 + 1,
        tlen,
        seq: seq_bases,
        qual,
        tags,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ngs_formats::header::ReferenceSequence;
    use ngs_formats::sam;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![
            ReferenceSequence { name: b"chr1".to_vec(), length: 100_000 },
            ReferenceSequence { name: b"chr2".to_vec(), length: 100_000 },
        ])
    }

    fn rec(line: &str) -> AlignmentRecord {
        sam::parse_record(line.as_bytes(), 1).unwrap()
    }

    #[test]
    fn roundtrip_mixed_records() {
        let h = header();
        let records = vec![
            rec("read1\t99\tchr1\t100\t60\t40M2I48M\t=\t300\t290\tACGTACGTAC\tIIIIIIIIII\tNM:i:2\tRG:Z:g"),
            rec("r2\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*"),
            rec("alignment-with-a-very-long-name\t16\tchr2\t5000\t37\t90M\tchr1\t100\t0\tACGT\t*"),
        ];
        let layout = BamxLayout::compute(&records).unwrap();
        let mut buf = Vec::new();
        for r in &records {
            encode(r, &h, &layout, &mut buf).unwrap();
        }
        assert_eq!(buf.len(), layout.record_size() * records.len());
        for (i, r) in records.iter().enumerate() {
            let slice = &buf[i * layout.record_size()..(i + 1) * layout.record_size()];
            assert_eq!(&decode(slice, &h, &layout).unwrap(), r, "record {i}");
        }
    }

    #[test]
    fn peek_matches_decode() {
        let h = header();
        let r = rec("x\t0\tchr2\t4321\t60\t4M\t*\t0\t0\tACGT\tIIII");
        let layout = BamxLayout::compute([&r]).unwrap();
        let mut buf = Vec::new();
        encode(&r, &h, &layout, &mut buf).unwrap();
        let (ref_id, pos0) = peek_position(&buf).unwrap();
        assert_eq!(ref_id, 1);
        assert_eq!(pos0, 4320);
    }

    #[test]
    fn layout_violations_rejected() {
        let h = header();
        let small = BamxLayout { max_qname: 2, max_cigar_ops: 1, max_seq: 2, max_tags: 0 };
        let r = rec("toolong\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII");
        let mut buf = Vec::new();
        assert!(encode(&r, &h, &small, &mut buf).is_err());
    }

    /// Regression: POS/PNEXT are i64 on [`AlignmentRecord`] but i32 on
    /// disk; a coordinate past `i32::MAX` must be a typed encode error,
    /// never a silent `as i32` wrap that round-trips as a different
    /// coordinate.
    #[test]
    fn pos_past_i32_max_rejected_at_encode() {
        let h = header();
        let mut r = rec("x\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII");
        let layout = BamxLayout::compute([&r]).unwrap();
        r.pos = i32::MAX as i64 + 2; // pos0 = i32::MAX + 1
        let mut buf = Vec::new();
        let err = encode(&r, &h, &layout, &mut buf).unwrap_err();
        assert!(err.to_string().contains("POS"), "{err}");
        assert!(buf.is_empty(), "a rejected record must write nothing");
        // The last representable coordinate still encodes and round-trips.
        r.pos = i32::MAX as i64 + 1; // pos0 = i32::MAX exactly
        encode(&r, &h, &layout, &mut buf).unwrap();
        assert_eq!(decode(&buf, &h, &layout).unwrap().pos, r.pos);
    }

    #[test]
    fn pnext_past_i32_max_rejected_at_encode() {
        let h = header();
        let mut r = rec("x\t99\tchr1\t100\t60\t4M\t=\t300\t290\tACGT\tIIII");
        let layout = BamxLayout::compute([&r]).unwrap();
        r.pnext = i32::MAX as i64 + 2;
        let mut buf = Vec::new();
        let err = encode(&r, &h, &layout, &mut buf).unwrap_err();
        assert!(err.to_string().contains("PNEXT"), "{err}");
    }

    #[test]
    fn truncated_buffer_rejected() {
        let h = header();
        let r = rec("x\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII");
        let layout = BamxLayout::compute([&r]).unwrap();
        let mut buf = Vec::new();
        encode(&r, &h, &layout, &mut buf).unwrap();
        assert!(decode(&buf[..buf.len() - 1], &h, &layout).is_err());
    }

    #[test]
    fn all_records_same_size() {
        let h = header();
        let records = vec![
            rec("a\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII\tNM:i:1"),
            rec("ridiculous-name\t0\tchr1\t2\t60\t1M1I1M1D1M\t*\t0\t0\tACGTA\tIIIII"),
        ];
        let layout = BamxLayout::compute(&records).unwrap();
        let sizes: Vec<usize> = records
            .iter()
            .map(|r| {
                let mut b = Vec::new();
                encode(r, &h, &layout, &mut b).unwrap();
                b.len()
            })
            .collect();
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[0], layout.record_size());
    }
}
