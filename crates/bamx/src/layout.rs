//! BAMX fixed-width record layout.
//!
//! The paper's key preprocessing idea: pad every variable-length BAM field
//! (name, CIGAR, sequence, qualities, tags) to a per-dataset maximum so
//! that every record occupies the same number of bytes, making record `i`
//! addressable at `header + i * record_size` — which is what enables
//! embarrassingly-parallel partitioning and partial conversion.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ngs_formats::error::{Error, Result};
use ngs_formats::record::AlignmentRecord;
use ngs_formats::bam::encode_tags;

/// Size of the fixed (non-padded) portion of a BAMX record.
pub const FIXED_FIELDS_SIZE: usize = 2  // flag
    + 1  // mapq
    + 1  // pad/reserved
    + 4  // ref_id
    + 4  // pos0
    + 4  // next_ref_id
    + 4  // next_pos0
    + 8  // tlen (widened vs BAM for safety)
    + 2  // qname_len
    + 2  // n_cigar
    + 4  // seq_len
    + 4  // tag_len
    + 1; // qual_present

/// Per-dataset field maxima that define the padded record shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BamxLayout {
    /// Maximum read-name length in bytes.
    pub max_qname: u16,
    /// Maximum number of CIGAR operations.
    pub max_cigar_ops: u16,
    /// Maximum sequence length in bases.
    pub max_seq: u32,
    /// Maximum encoded tag-block length in bytes.
    pub max_tags: u32,
}

impl BamxLayout {
    /// A layout with all maxima zero; grow with [`Self::observe`].
    pub fn empty() -> Self {
        BamxLayout { max_qname: 0, max_cigar_ops: 0, max_seq: 0, max_tags: 0 }
    }

    /// Expands the layout so `record` fits.
    pub fn observe(&mut self, record: &AlignmentRecord) -> Result<()> {
        let qname = record.qname.len().max(1);
        if qname > u16::MAX as usize {
            return Err(Error::InvalidRecord("read name too long for BAMX".into()));
        }
        self.max_qname = self.max_qname.max(qname as u16);
        if record.cigar.len() > u16::MAX as usize {
            return Err(Error::InvalidRecord("too many CIGAR ops for BAMX".into()));
        }
        self.max_cigar_ops = self.max_cigar_ops.max(record.cigar.len() as u16);
        self.max_seq = self.max_seq.max(record.seq.len() as u32);
        let tag_len = encode_tags(&record.tags)?.len();
        self.max_tags = self.max_tags.max(tag_len as u32);
        Ok(())
    }

    /// Merges two layouts (pointwise maxima) — used when combining the
    /// per-rank layouts of a parallel preprocessing run.
    pub fn merge(&self, other: &BamxLayout) -> BamxLayout {
        BamxLayout {
            max_qname: self.max_qname.max(other.max_qname),
            max_cigar_ops: self.max_cigar_ops.max(other.max_cigar_ops),
            max_seq: self.max_seq.max(other.max_seq),
            max_tags: self.max_tags.max(other.max_tags),
        }
    }

    /// Bytes occupied by the packed (2-bases-per-byte) sequence field.
    pub fn seq_bytes(&self) -> usize {
        (self.max_seq as usize).div_ceil(2)
    }

    /// Total fixed record size implied by the maxima.
    pub fn record_size(&self) -> usize {
        FIXED_FIELDS_SIZE
            + self.max_qname as usize
            + self.max_cigar_ops as usize * 4
            + self.seq_bytes()
            + self.max_seq as usize // qualities
            + self.max_tags as usize
    }

    /// Serializes the layout (12 bytes).
    pub fn encode(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..2].copy_from_slice(&self.max_qname.to_le_bytes());
        out[2..4].copy_from_slice(&self.max_cigar_ops.to_le_bytes());
        out[4..8].copy_from_slice(&self.max_seq.to_le_bytes());
        out[8..12].copy_from_slice(&self.max_tags.to_le_bytes());
        out
    }

    /// Deserializes a layout.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 12 {
            return Err(Error::InvalidRecord("truncated BAMX layout".into()));
        }
        Ok(BamxLayout {
            max_qname: u16::from_le_bytes([bytes[0], bytes[1]]),
            max_cigar_ops: u16::from_le_bytes([bytes[2], bytes[3]]),
            max_seq: u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            max_tags: u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]),
        })
    }

    /// Computes the layout covering every record in `records`.
    pub fn compute<'a>(records: impl IntoIterator<Item = &'a AlignmentRecord>) -> Result<Self> {
        let mut layout = Self::empty();
        for r in records {
            layout.observe(r)?;
        }
        Ok(layout)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ngs_formats::sam;

    fn rec(line: &str) -> AlignmentRecord {
        sam::parse_record(line.as_bytes(), 1).unwrap()
    }

    #[test]
    fn observe_tracks_maxima() {
        let mut l = BamxLayout::empty();
        l.observe(&rec("short\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII")).unwrap();
        l.observe(&rec("muchlongername\t0\tchr1\t1\t60\t2M1I5M\t*\t0\t0\tACGTACGT\tIIIIIIII\tNM:i:1")).unwrap();
        assert_eq!(l.max_qname, 14);
        assert_eq!(l.max_cigar_ops, 3);
        assert_eq!(l.max_seq, 8);
        assert!(l.max_tags >= 4); // NM:c:1 encodes as 2+1+1 bytes
    }

    #[test]
    fn record_size_formula() {
        let l = BamxLayout { max_qname: 20, max_cigar_ops: 4, max_seq: 90, max_tags: 16 };
        assert_eq!(
            l.record_size(),
            FIXED_FIELDS_SIZE + 20 + 16 + 45 + 90 + 16
        );
    }

    #[test]
    fn odd_sequence_length_rounds_up() {
        let l = BamxLayout { max_qname: 1, max_cigar_ops: 0, max_seq: 5, max_tags: 0 };
        assert_eq!(l.seq_bytes(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let l = BamxLayout { max_qname: 254, max_cigar_ops: 7, max_seq: 151, max_tags: 999 };
        assert_eq!(BamxLayout::decode(&l.encode()).unwrap(), l);
        assert!(BamxLayout::decode(&[0u8; 5]).is_err());
    }

    #[test]
    fn merge_is_pointwise_max() {
        let a = BamxLayout { max_qname: 10, max_cigar_ops: 2, max_seq: 100, max_tags: 5 };
        let b = BamxLayout { max_qname: 5, max_cigar_ops: 9, max_seq: 50, max_tags: 50 };
        let m = a.merge(&b);
        assert_eq!(m, BamxLayout { max_qname: 10, max_cigar_ops: 9, max_seq: 100, max_tags: 50 });
    }

    #[test]
    fn compute_over_slice() {
        let records = vec![
            rec("a\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII"),
            rec("bb\t0\tchr1\t2\t60\t8M\t*\t0\t0\tACGTACGT\tIIIIIIII"),
        ];
        let l = BamxLayout::compute(&records).unwrap();
        assert_eq!(l.max_qname, 2);
        assert_eq!(l.max_seq, 8);
    }
}
