//! BAMX v2: the compressed columnar shard layout (DESIGN.md §14).
//!
//! Where v1 pads every record to the dataset-wide maxima (O(1) seeks,
//! bandwidth-wasteful scans), v2 groups records into fixed-size *blocks*
//! and stores each field as a separate column stream with a per-field
//! codec:
//!
//! | column | contents per record                | codec            |
//! |--------|------------------------------------|------------------|
//! | flags  | `flag u16 LE + mapq u8`            | raw              |
//! | pos    | `Δref_id, Δpos0` (per-block delta) | zigzag varint    |
//! | mate   | `next_ref_id, next_pos0, tlen`     | zigzag varint    |
//! | qname  | `varint len + bytes`               | DEFLATE          |
//! | cigar  | `varint n_ops + varint ops`        | raw              |
//! | seq    | `varint bases + 4-bit packed`      | DEFLATE          |
//! | qual   | `varint len + bytes`               | DEFLATE          |
//! | tags   | `varint len + BAM tag bytes`       | raw              |
//!
//! A footer block index (`offset, n_records, first position key,
//! per-column stream lengths`) keeps region access binary-searchable and
//! record→block mapping O(1) (every block but the last holds exactly
//! `records_per_block` records). Column *projection* — decoding only the
//! streams a consumer reads — is the layout's speed win; `positions()`
//! touches nothing but the `pos` stream.
//!
//! Framing: `magic(5) + reserved(1) + prologue_len u32 + prologue +
//! layout(12) + records_per_block u32 + blocks… + footer + trailer
//! (footer CRC32 u32 + n_blocks u64 + footer offset u64 + n_records
//! u64)`. The prologue/layout prefix deliberately mirrors v1 byte
//! offsets so the repository's layout fingerprinting parses both
//! versions with one code path.
//!
//! Decoding arbitrary bytes is panic-free: every malformation is a typed
//! [`Error::Decode`] with kind + offset + context, and allocations are
//! validated against the real file size before being made.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use ngs_bgzf::crc32::crc32;
use ngs_bgzf::deflate::{deflate, Options};
use ngs_bgzf::inflate::inflate;
use ngs_bgzf::ReadAt;
use ngs_formats::bam::{decode_header, decode_tags, encode_header, encode_tags};
use ngs_formats::cigar::{Cigar, CigarOp};
use ngs_formats::error::{DecodeErrorKind, Error, Result};
use ngs_formats::flags::Flags;
use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;
use ngs_formats::seq;

use crate::baix::position_key;
use crate::column::{self, get_varint, put_varint, unzigzag, zigzag, ColumnKind, ColumnSet, N_COLUMNS};
use crate::layout::BamxLayout;
use crate::record_codec::resolve_ref;

/// BAMX v2 file magic.
pub const MAGIC_V2: [u8; 5] = *b"BAMX\x02";

/// Records per block when the writer is not told otherwise.
pub const DEFAULT_RECORDS_PER_BLOCK: u32 = 1024;

/// Upper bound accepted at open time — a corrupt header cannot make a
/// single block imply an unbounded allocation.
pub const MAX_RECORDS_PER_BLOCK: u32 = 1 << 20;

/// Bytes per footer entry: `offset u64 + n_records u32 + first_key u64 +
/// 8 × stream_len u32`.
const FOOTER_ENTRY: u64 = 8 + 4 + 8 + (N_COLUMNS as u64) * 4;

/// Trailer: `footer_crc u32 + n_blocks u64 + footer_offset u64 +
/// n_records u64`.
const TRAILER: u64 = 4 + 8 + 8 + 8;

/// DEFLATE level for the compressed columns (matches the BGZF writer's
/// default speed/size trade-off).
const DEFLATE_LEVEL: u8 = 6;

/// One block's entry in the footer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockEntry {
    /// Absolute file offset of the block's first stream byte.
    offset: u64,
    /// Records in the block (== `records_per_block` except the last).
    n_records: u32,
    /// `position_key(ref_id, pos0)` of the block's first record.
    first_key: u64,
    /// On-disk stream length per column, in [`ColumnKind::ALL`] order.
    lens: [u32; N_COLUMNS],
}

impl BlockEntry {
    fn total(&self) -> u64 {
        self.lens.iter().map(|&l| l as u64).sum()
    }

    /// Absolute offset of column `k`'s stream.
    fn column_offset(&self, k: ColumnKind) -> u64 {
        self.offset + self.lens[..k.index()].iter().map(|&l| l as u64).sum::<u64>()
    }
}

/// Streaming v2 writer. Like [`BamxWriter`](crate::BamxWriter) the
/// caller provides the layout up front — v2 keeps it for encode-time
/// validation bounds and for the version-tagged repository fingerprint,
/// not for padding.
pub struct V2Writer<W: Write> {
    inner: W,
    header: SamHeader,
    layout: BamxLayout,
    records_per_block: u32,
    /// Column accumulation buffers for the open block.
    cols: [Vec<u8>; N_COLUMNS],
    block_records: u32,
    first_key: u64,
    prev_ref: i64,
    prev_pos: i64,
    blocks: Vec<BlockEntry>,
    /// Bytes written so far (absolute offset of the next byte).
    pos: u64,
    n_records: u64,
}

impl V2Writer<BufWriter<File>> {
    /// Creates a v2 BAMX file at `path`.
    pub fn create(
        path: impl AsRef<Path>,
        header: SamHeader,
        layout: BamxLayout,
    ) -> Result<Self> {
        let file = BufWriter::new(File::create(path)?);
        Self::new(file, header, layout)
    }
}

impl<W: Write> V2Writer<W> {
    /// Wraps an arbitrary sink with the default block size.
    pub fn new(inner: W, header: SamHeader, layout: BamxLayout) -> Result<Self> {
        Self::with_block_size(inner, header, layout, DEFAULT_RECORDS_PER_BLOCK)
    }

    /// Wraps an arbitrary sink with an explicit records-per-block.
    pub fn with_block_size(
        mut inner: W,
        header: SamHeader,
        layout: BamxLayout,
        records_per_block: u32,
    ) -> Result<Self> {
        if records_per_block == 0 || records_per_block > MAX_RECORDS_PER_BLOCK {
            return Err(Error::InvalidRecord(format!(
                "records_per_block {records_per_block} outside 1..={MAX_RECORDS_PER_BLOCK}"
            )));
        }
        let mut prologue = Vec::new();
        encode_header(&header, &mut prologue);
        inner.write_all(&MAGIC_V2)?;
        inner.write_all(&[0u8])?; // reserved
        inner.write_all(&(prologue.len() as u32).to_le_bytes())?;
        inner.write_all(&prologue)?;
        inner.write_all(&layout.encode())?;
        inner.write_all(&records_per_block.to_le_bytes())?;
        let pos = 10 + prologue.len() as u64 + 12 + 4;
        Ok(V2Writer {
            inner,
            header,
            layout,
            records_per_block,
            cols: Default::default(),
            block_records: 0,
            first_key: 0,
            prev_ref: 0,
            prev_pos: 0,
            blocks: Vec::new(),
            pos,
            n_records: 0,
        })
    }

    /// The layout this writer validates against.
    pub fn layout(&self) -> &BamxLayout {
        &self.layout
    }

    /// Appends one record, splitting it across the block's column
    /// buffers. Validation mirrors the v1 codec exactly (same layout
    /// bounds, same i32 coordinate domain), so any record a v1 shard
    /// accepts re-encodes into v2 and vice versa.
    pub fn write_record(&mut self, record: &AlignmentRecord) -> Result<()> {
        let ref_id = resolve_ref(&self.header, &record.rname)?;
        let next_ref_id = if record.rnext == b"=" {
            ref_id
        } else {
            resolve_ref(&self.header, &record.rnext)?
        };
        let qname: &[u8] = if record.qname.is_empty() { b"*" } else { &record.qname };
        if qname.len() > self.layout.max_qname as usize {
            return Err(Error::InvalidRecord("qname exceeds BAMX layout".into()));
        }
        if record.cigar.len() > self.layout.max_cigar_ops as usize {
            return Err(Error::InvalidRecord("CIGAR exceeds BAMX layout".into()));
        }
        if record.seq.len() > self.layout.max_seq as usize {
            return Err(Error::InvalidRecord("sequence exceeds BAMX layout".into()));
        }
        let tag_bytes = encode_tags(&record.tags)?;
        if tag_bytes.len() > self.layout.max_tags as usize {
            return Err(Error::InvalidRecord("tags exceed BAMX layout".into()));
        }
        for (what, raw) in [("POS", record.pos), ("PNEXT", record.pnext)] {
            match raw.checked_sub(1) {
                Some(v) if v >= i32::MIN as i64 && v <= i32::MAX as i64 => {}
                _ => {
                    return Err(Error::InvalidRecord(format!(
                        "{what} {raw} unrepresentable (i32)"
                    )));
                }
            }
        }
        if !record.qual.is_empty() && record.qual.len() != record.seq.len() {
            return Err(Error::InvalidRecord("SEQ/QUAL length mismatch".into()));
        }

        let pos0 = record.pos - 1;
        let next_pos0 = record.pnext - 1;
        if self.block_records == 0 {
            self.first_key = position_key(ref_id, pos0 as i32);
        }

        // flags: fixed 3 bytes.
        let c = &mut self.cols;
        c[ColumnKind::Flags.index()].extend_from_slice(&record.flag.0.to_le_bytes());
        c[ColumnKind::Flags.index()].push(record.mapq);
        // pos: per-block delta chain.
        let col = &mut c[ColumnKind::Pos.index()];
        put_varint(col, zigzag(ref_id as i64 - self.prev_ref));
        put_varint(col, zigzag(pos0 - self.prev_pos));
        self.prev_ref = ref_id as i64;
        self.prev_pos = pos0;
        // mate: absolute zigzag varints.
        let col = &mut c[ColumnKind::Mate.index()];
        put_varint(col, zigzag(next_ref_id as i64));
        put_varint(col, zigzag(next_pos0));
        put_varint(col, zigzag(record.tlen));
        // qname.
        let col = &mut c[ColumnKind::Qname.index()];
        put_varint(col, qname.len() as u64);
        col.extend_from_slice(qname);
        // cigar.
        let col = &mut c[ColumnKind::Cigar.index()];
        put_varint(col, record.cigar.len() as u64);
        for &(len, op) in &record.cigar.0 {
            put_varint(col, u64::from((len << 4) | op.to_bam_code()));
        }
        // seq: 4-bit packed.
        let col = &mut c[ColumnKind::Seq.index()];
        put_varint(col, record.seq.len() as u64);
        col.extend_from_slice(&seq::pack(&record.seq));
        // qual: empty means absent (same convention as v1's qual bit).
        let col = &mut c[ColumnKind::Qual.index()];
        put_varint(col, record.qual.len() as u64);
        col.extend_from_slice(&record.qual);
        // tags.
        let col = &mut c[ColumnKind::Tags.index()];
        put_varint(col, tag_bytes.len() as u64);
        col.extend_from_slice(&tag_bytes);

        self.block_records += 1;
        self.n_records += 1;
        if self.block_records == self.records_per_block {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.block_records == 0 {
            return Ok(());
        }
        let offset = self.pos;
        let mut lens = [0u32; N_COLUMNS];
        for kind in ColumnKind::ALL {
            let raw = std::mem::take(&mut self.cols[kind.index()]);
            let stream = if kind.deflated() {
                let mut s = Vec::with_capacity(raw.len() / 2 + 8);
                s.extend_from_slice(&(raw.len() as u32).to_le_bytes());
                s.extend_from_slice(&deflate(&raw, Options::from_level(DEFLATE_LEVEL)));
                s
            } else {
                raw
            };
            if stream.len() > u32::MAX as usize {
                return Err(Error::InvalidRecord(format!(
                    "v2 column stream '{}' exceeds 4 GiB in one block",
                    kind.name()
                )));
            }
            lens[kind.index()] = stream.len() as u32;
            self.inner.write_all(&stream)?;
            self.pos += stream.len() as u64;
        }
        self.blocks.push(BlockEntry {
            offset,
            n_records: self.block_records,
            first_key: self.first_key,
            lens,
        });
        self.block_records = 0;
        self.first_key = 0;
        self.prev_ref = 0;
        self.prev_pos = 0;
        Ok(())
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        self.n_records
    }

    /// Flushes the open block, writes the footer index and trailer, and
    /// returns the sink.
    pub fn finish(mut self) -> Result<W> {
        self.flush_block()?;
        let footer_offset = self.pos;
        let mut footer = Vec::with_capacity(self.blocks.len() * FOOTER_ENTRY as usize);
        for b in &self.blocks {
            footer.extend_from_slice(&b.offset.to_le_bytes());
            footer.extend_from_slice(&b.n_records.to_le_bytes());
            footer.extend_from_slice(&b.first_key.to_le_bytes());
            for l in b.lens {
                footer.extend_from_slice(&l.to_le_bytes());
            }
        }
        self.inner.write_all(&footer)?;
        self.inner.write_all(&crc32(&footer).to_le_bytes())?;
        self.inner.write_all(&(self.blocks.len() as u64).to_le_bytes())?;
        self.inner.write_all(&footer_offset.to_le_bytes())?;
        self.inner.write_all(&self.n_records.to_le_bytes())?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// A v2 shard opened for block-columnar random access over any
/// [`ReadAt`] source. Wrapped by [`BamxFile`](crate::BamxFile), which
/// dispatches on the magic version byte at open time.
pub struct V2Reader {
    source: Box<dyn ReadAt>,
    context: String,
    header: SamHeader,
    layout: BamxLayout,
    records_per_block: u64,
    n_records: u64,
    blocks: Vec<BlockEntry>,
}

impl V2Reader {
    /// Opens a v2 shard and validates its whole index skeleton (framing,
    /// footer CRC, block geometry) before any record is decoded.
    pub fn open_with(source: Box<dyn ReadAt>, context: impl Into<String>) -> Result<Self> {
        let context = context.into();
        let bad = |kind, offset, detail: String| Error::decode(kind, offset, &context, detail);

        let total_len = source.len()?;
        const MIN_LEN: u64 = 10 + 12 + 4 + TRAILER;
        if total_len < MIN_LEN {
            return Err(bad(
                DecodeErrorKind::Truncated,
                total_len,
                format!("file is {total_len} bytes, below the {MIN_LEN}-byte BAMX v2 minimum"),
            ));
        }
        let mut head = [0u8; 10];
        source.read_exact_at(&mut head, 0)?;
        if head[..5] != MAGIC_V2 {
            return Err(bad(DecodeErrorKind::BadMagic, 0, "bad BAMX v2 magic".into()));
        }
        if head[5] != 0 {
            return Err(bad(
                DecodeErrorKind::Corrupt,
                5,
                format!("reserved v2 flag byte is {:#04x}, expected 0", head[5]),
            ));
        }
        let prologue_len = u32::from_le_bytes([head[6], head[7], head[8], head[9]]) as u64;
        if prologue_len > total_len - MIN_LEN {
            return Err(bad(
                DecodeErrorKind::Implausible,
                6,
                format!("prologue length {prologue_len} exceeds file size {total_len}"),
            ));
        }
        let mut prologue = vec![0u8; prologue_len as usize];
        source.read_exact_at(&mut prologue, 10)?;
        let header = decode_header(&mut &prologue[..])
            .map_err(|e| bad(DecodeErrorKind::Corrupt, 10, format!("BAMX prologue: {e}")))?;
        let mut layout_bytes = [0u8; 12];
        source.read_exact_at(&mut layout_bytes, 10 + prologue_len)?;
        let layout = BamxLayout::decode(&layout_bytes)
            .map_err(|e| bad(DecodeErrorKind::Corrupt, 10 + prologue_len, e.to_string()))?;
        let mut rpb_bytes = [0u8; 4];
        source.read_exact_at(&mut rpb_bytes, 10 + prologue_len + 12)?;
        let records_per_block = u32::from_le_bytes(rpb_bytes);
        if records_per_block == 0 || records_per_block > MAX_RECORDS_PER_BLOCK {
            return Err(bad(
                DecodeErrorKind::Implausible,
                10 + prologue_len + 12,
                format!("records_per_block {records_per_block} outside 1..={MAX_RECORDS_PER_BLOCK}"),
            ));
        }
        let body_offset = 10 + prologue_len + 12 + 4;

        let mut trailer = [0u8; TRAILER as usize];
        source.read_exact_at(&mut trailer, total_len - TRAILER)?;
        let footer_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let mut w = [0u8; 8];
        w.copy_from_slice(&trailer[4..12]);
        let n_blocks = u64::from_le_bytes(w);
        w.copy_from_slice(&trailer[12..20]);
        let footer_offset = u64::from_le_bytes(w);
        w.copy_from_slice(&trailer[20..28]);
        let n_records = u64::from_le_bytes(w);

        // Footer geometry must account for the file size *exactly* —
        // validated by arithmetic before any footer-sized allocation.
        if footer_offset < body_offset || footer_offset > total_len - TRAILER {
            return Err(bad(
                DecodeErrorKind::Implausible,
                total_len - TRAILER,
                format!("footer offset {footer_offset} outside body [{body_offset}, {}]", total_len - TRAILER),
            ));
        }
        let footer_len = total_len - TRAILER - footer_offset;
        match n_blocks.checked_mul(FOOTER_ENTRY) {
            Some(need) if need == footer_len => {}
            _ => {
                return Err(bad(
                    DecodeErrorKind::Corrupt,
                    total_len - TRAILER,
                    format!("trailer claims {n_blocks} blocks but the footer holds {footer_len} bytes"),
                ));
            }
        }
        let mut footer = vec![0u8; footer_len as usize];
        source.read_exact_at(&mut footer, footer_offset)?;
        if crc32(&footer) != footer_crc {
            return Err(bad(
                DecodeErrorKind::Corrupt,
                footer_offset,
                "v2 footer CRC mismatch".into(),
            ));
        }

        let mut blocks = Vec::with_capacity(n_blocks as usize);
        let mut expected_offset = body_offset;
        let mut total_records = 0u64;
        for (i, chunk) in footer.chunks_exact(FOOTER_ENTRY as usize).enumerate() {
            let mut q = [0u8; 8];
            q.copy_from_slice(&chunk[0..8]);
            let offset = u64::from_le_bytes(q);
            let block_records = u32::from_le_bytes([chunk[8], chunk[9], chunk[10], chunk[11]]);
            q.copy_from_slice(&chunk[12..20]);
            let first_key = u64::from_le_bytes(q);
            let mut lens = [0u32; N_COLUMNS];
            for (k, l) in lens.iter_mut().enumerate() {
                let p = 20 + k * 4;
                *l = u32::from_le_bytes([chunk[p], chunk[p + 1], chunk[p + 2], chunk[p + 3]]);
            }
            let entry = BlockEntry { offset, n_records: block_records, first_key, lens };
            if offset != expected_offset {
                return Err(bad(
                    DecodeErrorKind::Corrupt,
                    footer_offset + i as u64 * FOOTER_ENTRY,
                    format!("block {i} offset {offset} != expected {expected_offset}"),
                ));
            }
            if block_records == 0 || block_records as u64 > records_per_block as u64 {
                return Err(bad(
                    DecodeErrorKind::Corrupt,
                    footer_offset + i as u64 * FOOTER_ENTRY,
                    format!("block {i} claims {block_records} records (block size {records_per_block})"),
                ));
            }
            if i + 1 < n_blocks as usize && block_records != records_per_block {
                return Err(bad(
                    DecodeErrorKind::Corrupt,
                    footer_offset + i as u64 * FOOTER_ENTRY,
                    format!(
                        "non-final block {i} holds {block_records} records, expected {records_per_block}"
                    ),
                ));
            }
            expected_offset = expected_offset.checked_add(entry.total()).ok_or_else(|| {
                bad(
                    DecodeErrorKind::Implausible,
                    footer_offset + i as u64 * FOOTER_ENTRY,
                    format!("block {i} stream lengths overflow the file size"),
                )
            })?;
            total_records += block_records as u64;
            blocks.push(entry);
        }
        if expected_offset != footer_offset {
            return Err(bad(
                DecodeErrorKind::Corrupt,
                footer_offset,
                format!("blocks end at {expected_offset} but the footer starts at {footer_offset}"),
            ));
        }
        if total_records != n_records {
            return Err(bad(
                DecodeErrorKind::Corrupt,
                total_len - TRAILER,
                format!("trailer claims {n_records} records but blocks hold {total_records}"),
            ));
        }

        Ok(V2Reader {
            source,
            context,
            header,
            layout,
            records_per_block: records_per_block as u64,
            n_records,
            blocks,
        })
    }

    pub(crate) fn context(&self) -> &str {
        &self.context
    }

    pub(crate) fn header(&self) -> &SamHeader {
        &self.header
    }

    pub(crate) fn layout(&self) -> &BamxLayout {
        &self.layout
    }

    pub(crate) fn len(&self) -> u64 {
        self.n_records
    }

    /// Reads and (where deflated) decompresses the column streams of
    /// block `b` selected by `set`; unselected slots stay `None`.
    fn read_columns(&self, b: usize, set: ColumnSet) -> Result<[Option<Vec<u8>>; N_COLUMNS]> {
        let entry = self.blocks.get(b).ok_or_else(|| {
            Error::InvalidRecord(format!("v2 block {b} out of range ({})", self.blocks.len()))
        })?;
        let mut out: [Option<Vec<u8>>; N_COLUMNS] = Default::default();
        let mut decoded_bytes = 0u64;
        let mut skipped = 0u64;
        for kind in ColumnKind::ALL {
            if !set.contains(kind) {
                skipped += 1;
                continue;
            }
            let off = entry.column_offset(kind);
            let len = entry.lens[kind.index()] as usize;
            // Geometry was validated against the file size at open; the
            // read itself still goes through read_exact_at so transient
            // I/O surfaces as such.
            let mut stream = vec![0u8; len];
            self.source.read_exact_at(&mut stream, off)?;
            let raw = if kind.deflated() {
                if len < 4 {
                    return Err(Error::decode(
                        DecodeErrorKind::Truncated,
                        off,
                        &self.context,
                        format!("'{}' stream of block {b} is {len} bytes, below its length prefix", kind.name()),
                    ));
                }
                let raw_len =
                    u32::from_le_bytes([stream[0], stream[1], stream[2], stream[3]]) as u64;
                let cap = self.plausible_raw_len(kind, entry.n_records);
                if raw_len > cap {
                    return Err(Error::decode(
                        DecodeErrorKind::Implausible,
                        off,
                        &self.context,
                        format!(
                            "'{}' stream of block {b} claims {raw_len} raw bytes, above the {cap} the layout allows",
                            kind.name()
                        ),
                    ));
                }
                let inflated = inflate(&stream[4..], raw_len as usize).map_err(|e| {
                    Error::decode(
                        DecodeErrorKind::Corrupt,
                        off,
                        &self.context,
                        format!("'{}' stream of block {b}: {e}", kind.name()),
                    )
                })?;
                if inflated.len() as u64 != raw_len {
                    return Err(Error::decode(
                        DecodeErrorKind::Corrupt,
                        off,
                        &self.context,
                        format!(
                            "'{}' stream of block {b} inflated to {} bytes, prefix said {raw_len}",
                            kind.name(),
                            inflated.len()
                        ),
                    ));
                }
                inflated
            } else {
                stream
            };
            decoded_bytes += raw.len() as u64;
            out[kind.index()] = Some(raw);
        }
        if let Some(c) = column::obs::counters() {
            c.column_bytes_decoded.add(decoded_bytes);
            c.columns_skipped.add(skipped);
        }
        Ok(out)
    }

    /// Upper bound on a column's plausible raw (decompressed) size for a
    /// block of `n` records, derived from the layout maxima — a corrupt
    /// length prefix cannot size an attacker-chosen allocation.
    fn plausible_raw_len(&self, kind: ColumnKind, n: u32) -> u64 {
        let per = match kind {
            ColumnKind::Qname => self.layout.max_qname as u64,
            ColumnKind::Seq => (self.layout.max_seq as u64).div_ceil(2),
            ColumnKind::Qual => self.layout.max_seq as u64,
            // Raw columns never take this path; keep the bound total.
            _ => 16,
        };
        // +10: the worst-case varint length prefix per record.
        (n as u64) * (per + 10)
    }

    fn corrupt(&self, b: usize, kind: ColumnKind, what: &str) -> Error {
        let offset = self.blocks.get(b).map(|e| e.column_offset(kind)).unwrap_or(0);
        Error::decode(
            DecodeErrorKind::Corrupt,
            offset,
            &self.context,
            format!("'{}' stream of block {b}: {what}", kind.name()),
        )
    }

    /// Decodes records `rel_lo..rel_hi` (block-relative) of block `b`
    /// under the projection `set`, appending to `out`. Streams are
    /// walked from the block start (delta chains and varint framing are
    /// sequential), but only the requested records are materialized.
    fn decode_block(
        &self,
        b: usize,
        rel_lo: usize,
        rel_hi: usize,
        set: ColumnSet,
        out: &mut Vec<AlignmentRecord>,
    ) -> Result<()> {
        use ColumnKind as K;
        let cols = self.read_columns(b, set)?;
        let n = self.blocks[b].n_records as usize;
        let col = |k: K| cols[k.index()].as_deref().unwrap_or(&[]);
        let mut cur = [0usize; N_COLUMNS];
        let mut prev_ref = 0i64;
        let mut prev_pos = 0i64;

        let want = |k: K| set.contains(k);
        for i in 0..rel_hi.min(n) {
            // flags (mandatory).
            let f = col(K::Flags);
            let p = cur[K::Flags.index()];
            let Some(bytes) = f.get(p..p + 3) else {
                return Err(self.corrupt(b, K::Flags, "truncated"));
            };
            let flag = Flags(u16::from_le_bytes([bytes[0], bytes[1]]));
            let mapq = bytes[2];
            cur[K::Flags.index()] = p + 3;

            // pos (mandatory): delta chain.
            let s = col(K::Pos);
            let c = &mut cur[K::Pos.index()];
            let d_ref = get_varint(s, c).ok_or_else(|| self.corrupt(b, K::Pos, "truncated varint"))?;
            let d_pos = get_varint(s, c).ok_or_else(|| self.corrupt(b, K::Pos, "truncated varint"))?;
            prev_ref += unzigzag(d_ref);
            prev_pos += unzigzag(d_pos);
            let (ref_id, pos0) = (prev_ref, prev_pos);
            if ref_id < i32::MIN as i64
                || ref_id > i32::MAX as i64
                || pos0 < i32::MIN as i64
                || pos0 > i32::MAX as i64
            {
                return Err(self.corrupt(b, K::Pos, "coordinate outside the i32 domain"));
            }

            let mut rec = AlignmentRecord {
                qname: Vec::new(),
                flag,
                rname: match self.header.reference_name(ref_id as i32) {
                    Some(nm) => nm.to_vec(),
                    None => b"*".to_vec(),
                },
                pos: pos0 + 1,
                mapq,
                cigar: Cigar(Vec::new()),
                rnext: b"*".to_vec(),
                pnext: 0,
                tlen: 0,
                seq: Vec::new(),
                qual: Vec::new(),
                tags: Vec::new(),
            };

            if want(K::Mate) {
                let s = col(K::Mate);
                let c = &mut cur[K::Mate.index()];
                let nref = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Mate, "truncated varint"))?;
                let npos = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Mate, "truncated varint"))?;
                let tlen = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Mate, "truncated varint"))?;
                let next_ref_id = unzigzag(nref);
                let next_pos0 = unzigzag(npos);
                if next_ref_id < i32::MIN as i64
                    || next_ref_id > i32::MAX as i64
                    || next_pos0 < i32::MIN as i64
                    || next_pos0 > i32::MAX as i64
                {
                    return Err(self.corrupt(b, K::Mate, "coordinate outside the i32 domain"));
                }
                rec.rnext = if next_ref_id < 0 {
                    b"*".to_vec()
                } else if next_ref_id == ref_id {
                    b"=".to_vec()
                } else {
                    self.header
                        .reference_name(next_ref_id as i32)
                        .map(<[u8]>::to_vec)
                        .ok_or_else(|| self.corrupt(b, K::Mate, "next_ref_id out of range"))?
                };
                rec.pnext = next_pos0 + 1;
                rec.tlen = unzigzag(tlen);
            }

            if want(K::Qname) {
                let s = col(K::Qname);
                let c = &mut cur[K::Qname.index()];
                let len = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Qname, "truncated varint"))?;
                if len > self.layout.max_qname as u64 {
                    return Err(self.corrupt(b, K::Qname, "name length exceeds the layout"));
                }
                let bytes = s
                    .get(*c..*c + len as usize)
                    .ok_or_else(|| self.corrupt(b, K::Qname, "truncated"))?;
                *c += len as usize;
                if bytes != b"*" {
                    rec.qname = bytes.to_vec();
                }
            }

            if want(K::Cigar) {
                let s = col(K::Cigar);
                let c = &mut cur[K::Cigar.index()];
                let n_ops = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Cigar, "truncated varint"))?;
                if n_ops > self.layout.max_cigar_ops as u64 {
                    return Err(self.corrupt(b, K::Cigar, "op count exceeds the layout"));
                }
                let mut ops = Vec::with_capacity(n_ops as usize);
                for _ in 0..n_ops {
                    let enc = get_varint(s, c)
                        .ok_or_else(|| self.corrupt(b, K::Cigar, "truncated varint"))?;
                    if enc > u32::MAX as u64 {
                        return Err(self.corrupt(b, K::Cigar, "op outside the u32 domain"));
                    }
                    let enc = enc as u32;
                    let op = CigarOp::from_bam_code(enc & 0xF)
                        .map_err(|e| self.corrupt(b, K::Cigar, &e.to_string()))?;
                    ops.push((enc >> 4, op));
                }
                rec.cigar = Cigar(ops);
            }

            let mut seq_len = 0usize;
            if want(K::Seq) {
                let s = col(K::Seq);
                let c = &mut cur[K::Seq.index()];
                let bases = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Seq, "truncated varint"))?;
                if bases > self.layout.max_seq as u64 {
                    return Err(self.corrupt(b, K::Seq, "base count exceeds the layout"));
                }
                seq_len = bases as usize;
                let packed_len = seq_len.div_ceil(2);
                let packed = s
                    .get(*c..*c + packed_len)
                    .ok_or_else(|| self.corrupt(b, K::Seq, "truncated"))?;
                *c += packed_len;
                rec.seq = seq::unpack(packed, seq_len)
                    .map_err(|e| self.corrupt(b, K::Seq, &e.to_string()))?;
            }

            if want(K::Qual) {
                let s = col(K::Qual);
                let c = &mut cur[K::Qual.index()];
                let len = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Qual, "truncated varint"))?;
                if len > self.layout.max_seq as u64 {
                    return Err(self.corrupt(b, K::Qual, "length exceeds the layout"));
                }
                if want(K::Seq) && len != 0 && len as usize != seq_len {
                    return Err(self.corrupt(b, K::Qual, "SEQ/QUAL length mismatch"));
                }
                let bytes = s
                    .get(*c..*c + len as usize)
                    .ok_or_else(|| self.corrupt(b, K::Qual, "truncated"))?;
                *c += len as usize;
                rec.qual = bytes.to_vec();
            }

            if want(K::Tags) {
                let s = col(K::Tags);
                let c = &mut cur[K::Tags.index()];
                let len = get_varint(s, c)
                    .ok_or_else(|| self.corrupt(b, K::Tags, "truncated varint"))?;
                if len > self.layout.max_tags as u64 {
                    return Err(self.corrupt(b, K::Tags, "tag bytes exceed the layout"));
                }
                let bytes = s
                    .get(*c..*c + len as usize)
                    .ok_or_else(|| self.corrupt(b, K::Tags, "truncated"))?;
                *c += len as usize;
                rec.tags =
                    decode_tags(bytes).map_err(|e| self.corrupt(b, K::Tags, &e.to_string()))?;
            }

            if i >= rel_lo {
                out.push(rec);
            }
        }

        // Walked streams must be fully consumed once every record in the
        // block has been decoded — trailing garbage is corruption, not
        // slack. (Only checked when the walk reached the block's end.)
        if rel_hi >= n {
            for kind in ColumnKind::ALL {
                if let Some(s) = &cols[kind.index()] {
                    if cur[kind.index()] != s.len() {
                        return Err(self.corrupt(b, kind, "trailing bytes after the last record"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Decodes records `lo..hi` under a projection: unselected fields
    /// come back as their empty defaults and their streams are never
    /// read or decompressed.
    pub(crate) fn read_range_projected(
        &self,
        lo: u64,
        hi: u64,
        set: ColumnSet,
    ) -> Result<Vec<AlignmentRecord>> {
        if lo > hi || hi > self.n_records {
            return Err(Error::InvalidRecord(format!("record range {lo}..{hi} out of bounds")));
        }
        let mut out = Vec::with_capacity((hi - lo) as usize);
        if lo == hi {
            return Ok(out);
        }
        let rpb = self.records_per_block;
        let first_block = (lo / rpb) as usize;
        let last_block = ((hi - 1) / rpb) as usize;
        for b in first_block..=last_block {
            let block_first = b as u64 * rpb;
            let rel_lo = lo.saturating_sub(block_first) as usize;
            let rel_hi = (hi - block_first).min(rpb) as usize;
            self.decode_block(b, rel_lo, rel_hi, set, &mut out)?;
        }
        Ok(out)
    }

    /// Streams `(ref_id, pos0)` keys for every record — decodes *only*
    /// the position column of each block (the projection win BAIX
    /// construction rides on).
    pub(crate) fn positions(&self) -> Result<Vec<(i32, i32)>> {
        let mut out = Vec::with_capacity(self.n_records as usize);
        for b in 0..self.blocks.len() {
            let cols = self.read_columns(b, ColumnSet::POSITIONS)?;
            let s = cols[ColumnKind::Pos.index()].as_deref().unwrap_or(&[]);
            let n = self.blocks[b].n_records as usize;
            let mut c = 0usize;
            let mut prev_ref = 0i64;
            let mut prev_pos = 0i64;
            for _ in 0..n {
                let d_ref = get_varint(s, &mut c)
                    .ok_or_else(|| self.corrupt(b, ColumnKind::Pos, "truncated varint"))?;
                let d_pos = get_varint(s, &mut c)
                    .ok_or_else(|| self.corrupt(b, ColumnKind::Pos, "truncated varint"))?;
                prev_ref += unzigzag(d_ref);
                prev_pos += unzigzag(d_pos);
                if prev_ref < i32::MIN as i64
                    || prev_ref > i32::MAX as i64
                    || prev_pos < i32::MIN as i64
                    || prev_pos > i32::MAX as i64
                {
                    return Err(self.corrupt(b, ColumnKind::Pos, "coordinate outside the i32 domain"));
                }
                out.push((prev_ref as i32, prev_pos as i32));
            }
            if c != s.len() {
                return Err(self.corrupt(b, ColumnKind::Pos, "trailing bytes after the last record"));
            }
        }
        Ok(out)
    }

    /// The per-block first position keys (ascending for coordinate-
    /// sorted shards) — exposed for block-level pruning diagnostics.
    pub(crate) fn block_first_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.blocks.iter().map(|b| b.first_key)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ngs_formats::header::ReferenceSequence;
    use ngs_formats::sam;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![
            ReferenceSequence { name: b"chr1".to_vec(), length: 1_000_000 },
            ReferenceSequence { name: b"chr2".to_vec(), length: 1_000_000 },
        ])
    }

    fn records(n: usize) -> Vec<AlignmentRecord> {
        (0..n)
            .map(|i| {
                let chrom = if i % 5 == 4 { "chr2" } else { "chr1" };
                let line = format!(
                    "read{i}\t{}\t{chrom}\t{}\t60\t6M2I2M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII\tNM:i:{}",
                    if i % 7 == 0 { 16 } else { 0 },
                    100 + i * 7,
                    i % 4
                );
                sam::parse_record(line.as_bytes(), 1).unwrap()
            })
            .collect()
    }

    fn write_v2(recs: &[AlignmentRecord], rpb: u32) -> Vec<u8> {
        let layout = BamxLayout::compute(recs).unwrap();
        let mut w =
            V2Writer::with_block_size(Vec::new(), header(), layout, rpb).unwrap();
        for r in recs {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap()
    }

    fn open(bytes: Vec<u8>) -> V2Reader {
        V2Reader::open_with(Box::new(bytes), "test.bamx2").unwrap()
    }

    #[test]
    fn roundtrip_across_blocks() {
        let recs = records(257); // 4 full blocks of 64 + a ragged tail
        let reader = open(write_v2(&recs, 64));
        assert_eq!(reader.len(), 257);
        assert_eq!(reader.read_range_projected(0, 257, ColumnSet::ALL).unwrap(), recs);
        // Ranges crossing block boundaries and single records.
        assert_eq!(
            reader.read_range_projected(60, 130, ColumnSet::ALL).unwrap(),
            recs[60..130]
        );
        assert_eq!(
            reader.read_range_projected(256, 257, ColumnSet::ALL).unwrap(),
            recs[256..257]
        );
    }

    #[test]
    fn empty_shard() {
        let reader = open(write_v2(&[], 64));
        assert_eq!(reader.len(), 0);
        assert!(reader.read_range_projected(0, 0, ColumnSet::ALL).unwrap().is_empty());
        assert!(reader.positions().unwrap().is_empty());
    }

    #[test]
    fn positions_match_full_decode() {
        let recs = records(150);
        let reader = open(write_v2(&recs, 32));
        let pos = reader.positions().unwrap();
        assert_eq!(pos.len(), recs.len());
        for (p, r) in pos.iter().zip(&recs) {
            assert_eq!(p.1 as i64, r.pos - 1, "{r:?}");
        }
    }

    #[test]
    fn projection_defaults_are_empty() {
        let recs = records(10);
        let reader = open(write_v2(&recs, 4));
        let set = ColumnSet::of(&[ColumnKind::Cigar]);
        let projected = reader.read_range_projected(0, 10, set).unwrap();
        for (p, r) in projected.iter().zip(&recs) {
            assert_eq!(p.flag, r.flag);
            assert_eq!(p.rname, r.rname);
            assert_eq!(p.pos, r.pos);
            assert_eq!(p.mapq, r.mapq);
            assert_eq!(p.cigar, r.cigar);
            assert!(p.qname.is_empty());
            assert!(p.seq.is_empty());
            assert!(p.tags.is_empty());
            assert_eq!(p.rnext, b"*");
        }
    }

    #[test]
    fn out_of_bounds_rejected() {
        let reader = open(write_v2(&records(10), 4));
        assert!(reader.read_range_projected(5, 11, ColumnSet::ALL).is_err());
        assert!(reader.read_range_projected(7, 3, ColumnSet::ALL).is_err());
    }

    #[test]
    fn footer_crc_flip_rejected() {
        let mut bytes = write_v2(&records(20), 8);
        let n = bytes.len();
        bytes[n - 28] ^= 0x40; // inside the footer CRC field
        assert!(V2Reader::open_with(Box::new(bytes), "t").is_err());
    }

    #[test]
    fn block_first_keys_ascend_when_sorted() {
        let mut recs = records(100);
        recs.sort_by_key(|r| (r.rname.clone(), r.pos));
        let reader = open(write_v2(&recs, 16));
        let keys: Vec<u64> = reader.block_first_keys().collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}
