//! BAIX: the paper's index over a BAMX shard.
//!
//! Stores `(starting position, alignment index)` pairs sorted by starting
//! position (Figure 4 of the paper). A region query binary-searches the
//! sorted keys, mapping a genomic interval to a *BAIX region* — a
//! contiguous range of index entries — which is then split evenly across
//! processors for partial conversion.
//!
//! Loading goes through [`ReadAt`] so indexes can come from files, memory,
//! or fault-injecting wrappers; malformed bytes surface as structured
//! [`Error::Decode`] values, never panics or unbounded allocations.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use ngs_bgzf::ReadAt;
use ngs_formats::error::{DecodeErrorKind, Error, Result};

use crate::file::BamxFile;
use crate::region::Region;

/// BAIX file magic.
pub const MAGIC: [u8; 5] = *b"BAIX\x01";

/// One index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaixEntry {
    /// Sortable position key: `(ref_id, pos0)` packed so unmapped records
    /// (`ref_id = -1`) order last.
    pub key: u64,
    /// Index of the alignment inside the BAMX shard.
    pub index: u64,
}

/// Packs a `(ref_id, pos0)` pair into a sortable key. Unmapped records
/// (negative ids/positions) sort after every mapped record.
#[inline]
pub fn position_key(ref_id: i32, pos0: i32) -> u64 {
    ((ref_id as u32 as u64) << 32) | (pos0 as u32 as u64)
}

/// The in-memory BAIX index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baix {
    /// Entries sorted by `key` (ties broken by shard index).
    pub entries: Vec<BaixEntry>,
}

impl Baix {
    /// Builds the index for a BAMX shard by scanning its position columns.
    pub fn build(file: &BamxFile) -> Result<Self> {
        let positions = file.positions()?;
        let mut entries: Vec<BaixEntry> = positions
            .into_iter()
            .enumerate()
            .map(|(i, (ref_id, pos0))| BaixEntry { key: position_key(ref_id, pos0), index: i as u64 })
            .collect();
        entries.sort_by_key(|e| (e.key, e.index));
        Ok(Baix { entries })
    }

    /// Number of indexed alignments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no alignments are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maps a genomic region to the *BAIX region*: the `lo..hi` range of
    /// index entries whose alignment start positions fall inside it.
    ///
    /// Region bounds are `i64` but stored start positions are `i32`; a
    /// bound past `i32::MAX` saturates to "after every position on this
    /// reference" instead of wrapping negative (which used to pack into a
    /// huge u32 key and silently return the wrong — usually empty —
    /// range).
    pub fn locate(&self, ref_id: i32, region: &Region) -> std::ops::Range<usize> {
        // Saturating key: any in-domain bound packs exactly; a bound past
        // i32::MAX maps to the first key of the *next* reference, which is
        // the supremum of every key on this one. Negative bounds (the
        // Region constructor rejects them, but stay total anyway) clamp
        // to position 0.
        let key_for = |bound: i64| -> u64 {
            if bound > i32::MAX as i64 {
                position_key(ref_id, i32::MAX).wrapping_add(1)
            } else {
                position_key(ref_id, bound.max(0) as i32)
            }
        };
        let lo_key = key_for(region.start0);
        let hi_key = key_for(region.end0);
        let lo = self.entries.partition_point(|e| e.key < lo_key);
        let hi = self.entries.partition_point(|e| e.key < hi_key);
        lo..hi
    }

    /// The shard record indices for a BAIX region (entries `lo..hi`).
    pub fn shard_indices(&self, range: std::ops::Range<usize>) -> Vec<u64> {
        self.entries[range].iter().map(|e| e.index).collect()
    }

    /// Serializes the index to a writer (the exact bytes of
    /// [`Baix::save`], usable with a staged repository artifact).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&(self.entries.len() as u64).to_le_bytes())?;
        for e in &self.entries {
            w.write_all(&e.key.to_le_bytes())?;
            w.write_all(&e.index.to_le_bytes())?;
        }
        w.flush()?;
        Ok(())
    }

    /// Serializes the index to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        Ok(())
    }

    /// Loads an index from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let context = path.as_ref().display().to_string();
        let file = File::open(path)?;
        Self::load_with(&file, &context)
    }

    /// Loads an index from an arbitrary positional-read source. `context`
    /// names the index in decode errors (usually its path).
    pub fn load_with(source: &dyn ReadAt, context: &str) -> Result<Self> {
        let total_len = source.len()?;
        const HEADER_LEN: u64 = 5 + 8;
        if total_len < HEADER_LEN {
            return Err(Error::decode(
                DecodeErrorKind::Truncated,
                total_len,
                context,
                format!("file is {total_len} bytes, below the {HEADER_LEN}-byte BAIX header"),
            ));
        }
        let mut head = [0u8; HEADER_LEN as usize];
        source.read_exact_at(&mut head, 0)?;
        if head[..5] != MAGIC {
            return Err(Error::decode(DecodeErrorKind::BadMagic, 0, context, "bad BAIX magic"));
        }
        let mut nb = [0u8; 8];
        nb.copy_from_slice(&head[5..13]);
        let n = u64::from_le_bytes(nb);
        // A BAIX file is *exactly* header + n 16-byte entries; validate the
        // count against the real size before reserving a single byte, so a
        // corrupt count can neither overflow arithmetic nor size a buffer.
        match n.checked_mul(16).and_then(|b| b.checked_add(HEADER_LEN)) {
            Some(need) if need == total_len => {}
            Some(need) => {
                let kind = if need > total_len {
                    DecodeErrorKind::Truncated
                } else {
                    DecodeErrorKind::Corrupt
                };
                return Err(Error::decode(
                    kind,
                    5,
                    context,
                    format!("entry count {n} implies {need} bytes but the file has {total_len}"),
                ));
            }
            None => {
                return Err(Error::decode(
                    DecodeErrorKind::Implausible,
                    5,
                    context,
                    format!("entry count {n} overflows the index size"),
                ));
            }
        }
        let mut body = vec![0u8; (total_len - HEADER_LEN) as usize];
        source.read_exact_at(&mut body, HEADER_LEN)?;
        let mut entries = Vec::with_capacity(n as usize);
        for chunk in body.chunks_exact(16) {
            let mut k = [0u8; 8];
            let mut i = [0u8; 8];
            k.copy_from_slice(&chunk[0..8]);
            i.copy_from_slice(&chunk[8..16]);
            entries.push(BaixEntry {
                key: u64::from_le_bytes(k),
                index: u64::from_le_bytes(i),
            });
        }
        // Defensive: entries must be sorted for binary search to be valid.
        if !entries.windows(2).all(|w| (w[0].key, w[0].index) <= (w[1].key, w[1].index)) {
            return Err(Error::decode(
                DecodeErrorKind::Corrupt,
                HEADER_LEN,
                context,
                "BAIX entries not sorted",
            ));
        }
        Ok(Baix { entries })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::file::{write_bamx_file, BamxCompression};
    use ngs_formats::header::{ReferenceSequence, SamHeader};
    use ngs_formats::record::AlignmentRecord;
    use ngs_formats::sam;
    use tempfile::tempdir;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![
            ReferenceSequence { name: b"chr1".to_vec(), length: 1_000_000 },
            ReferenceSequence { name: b"chr2".to_vec(), length: 1_000_000 },
        ])
    }

    /// Records deliberately NOT in coordinate order, to prove the index
    /// sorts (Figure 4 of the paper shows shuffled alignment indices).
    fn shuffled_records() -> Vec<AlignmentRecord> {
        let positions = [500i64, 100, 900, 300, 700, 200, 800, 400, 600, 1000];
        positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let chrom = if i % 3 == 2 { "chr2" } else { "chr1" };
                let line = format!(
                    "r{i}\t0\t{chrom}\t{p}\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII"
                );
                sam::parse_record(line.as_bytes(), 1).unwrap()
            })
            .collect()
    }

    #[test]
    fn build_sorts_by_position() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = shuffled_records();
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let baix = Baix::build(&f).unwrap();
        assert_eq!(baix.len(), recs.len());
        assert!(baix.entries.windows(2).all(|w| w[0].key <= w[1].key));
    }

    #[test]
    fn locate_finds_starts_in_region() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = shuffled_records();
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let baix = Baix::build(&f).unwrap();

        // chr1 records (1-based positions): r0@500, r1@100, r3@300,
        // r4@700, r6@800, r7@400, r9@1000 → 0-based starts
        // 499,99,299,699,799,399,999.
        let region = Region::new("chr1", 250, 650).unwrap();
        let range = baix.locate(0, &region);
        let indices = baix.shard_indices(range);
        // Starts inside [250,650): 299(r3), 399(r7), 499(r0).
        let mut names: Vec<String> = indices
            .iter()
            .map(|&i| String::from_utf8(f.read_record(i).unwrap().qname).unwrap())
            .collect();
        names.sort();
        assert_eq!(names, vec!["r0", "r3", "r7"]);
    }

    #[test]
    fn locate_respects_chromosome() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = shuffled_records();
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let baix = Baix::build(&f).unwrap();

        let whole_chr2 = Region::new("chr2", 0, 1_000_000).unwrap();
        let range = baix.locate(1, &whole_chr2);
        assert_eq!(range.len(), 3); // records 2, 5, 8 are on chr2... indices 2,5,8 → i%3==2
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tempdir().unwrap();
        let bamx_path = dir.path().join("t.bamx");
        let baix_path = dir.path().join("t.baix");
        let recs = shuffled_records();
        write_bamx_file(&bamx_path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&bamx_path).unwrap();
        let baix = Baix::build(&f).unwrap();
        baix.save(&baix_path).unwrap();
        let loaded = Baix::load(&baix_path).unwrap();
        assert_eq!(loaded, baix);
    }

    #[test]
    fn unmapped_sort_last() {
        assert!(position_key(-1, -1) > position_key(1_000, i32::MAX));
        assert!(position_key(0, 5) < position_key(0, 6));
        assert!(position_key(0, i32::MAX) < position_key(1, 0));
    }

    #[test]
    fn corrupt_file_rejected() {
        let dir = tempdir().unwrap();
        let p = dir.path().join("bad.baix");
        std::fs::write(&p, b"WRONG").unwrap();
        assert!(Baix::load(&p).is_err());
        // Unsorted entries rejected.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        assert!(Baix::load(&p).is_err());
    }

    #[test]
    fn empty_region_empty_range() {
        let baix = Baix { entries: vec![] };
        let region = Region::new("chr1", 0, 100).unwrap();
        assert!(baix.locate(0, &region).is_empty());
    }

    #[test]
    fn region_past_last_alignment() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = shuffled_records();
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let baix = Baix::build(&f).unwrap();

        // Last chr1 start is 0-based 999; querying beyond it must yield an
        // empty range anchored where chr1 entries end (not 0..0), so
        // downstream even-splitting sees zero work without special cases.
        let region = Region::new("chr1", 2_000, 3_000).unwrap();
        let range = baix.locate(0, &region);
        assert!(range.is_empty());
        let chr1_end = baix.entries.partition_point(|e| e.key < position_key(1, 0));
        assert_eq!(range, chr1_end..chr1_end);
        assert!(baix.shard_indices(range).is_empty());

        // Past everything on the last chromosome: empty range at len().
        let region = Region::new("chr2", 500_000, 600_000).unwrap();
        let range = baix.locate(1, &region);
        assert_eq!(range, baix.len()..baix.len());
    }

    /// Regression: region bounds are i64 and may legitimately exceed
    /// 2^31 (e.g. "everything from here on" queries built with
    /// `Region::new`). The old code truncated them through `as i32`,
    /// wrapping negative and packing to a huge u32 key — a query like
    /// [100, 2^31+10) silently returned an empty range. Bounds past
    /// `i32::MAX` must saturate to "after every position on this
    /// reference".
    #[test]
    fn locate_saturates_bounds_past_i32_max() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = shuffled_records();
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let baix = Baix::build(&f).unwrap();

        // chr1 0-based starts: 99,299,399,499,699,799,999 (7 records).
        // End bound past 2^31 must behave like "to the end of chr1".
        let huge_end = Region::new("chr1", 100, (1i64 << 31) + 10).unwrap();
        let range = baix.locate(0, &huge_end);
        assert_eq!(range.len(), 6, "starts in [100, 2^31+10) on chr1");
        let whole = Region::new("chr1", 0, i64::MAX).unwrap();
        assert_eq!(baix.locate(0, &whole).len(), 7);
        // chr2 must not leak into a saturated chr1 query.
        let on_chr2 = baix.locate(1, &Region::new("chr2", 0, i64::MAX).unwrap());
        assert_eq!(on_chr2.len(), 3);
        // Start bound past i32::MAX: empty, anchored past chr1's entries.
        let past = Region::new("chr1", (1i64 << 31) + 1, 1i64 << 32).unwrap();
        assert!(baix.locate(0, &past).is_empty());
    }

    #[test]
    fn gap_between_alignments_is_empty() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = shuffled_records();
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let baix = Baix::build(&f).unwrap();

        // chr1 0-based starts: 99,299,399,499,699,799,999. [100,299) falls
        // in the gap after the first start.
        let region = Region::new("chr1", 100, 299).unwrap();
        let range = baix.locate(0, &region);
        assert!(range.is_empty());
        assert_eq!(range, 1..1);
    }

    #[test]
    fn single_record_shard_boundaries() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("one.bamx");
        let rec =
            sam::parse_record(b"solo\t0\tchr1\t500\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII", 1)
                .unwrap();
        write_bamx_file(&path, &header(), std::slice::from_ref(&rec), BamxCompression::Plain)
            .unwrap();
        let f = BamxFile::open(&path).unwrap();
        let baix = Baix::build(&f).unwrap();
        assert_eq!(baix.len(), 1);

        // 1-based 500 → 0-based 499. Regions covering, touching, and
        // just missing the record on either side.
        let hit = |s, e| baix.locate(0, &Region::new("chr1", s, e).unwrap()).len();
        assert_eq!(hit(0, 1_000_000), 1); // whole chromosome
        assert_eq!(hit(499, 500), 1); // exactly the start base
        assert_eq!(hit(0, 499), 0); // half-open end excludes the start
        assert_eq!(hit(500, 1_000), 0); // begins one past the start
        // Wrong chromosome never matches.
        assert_eq!(baix.locate(1, &Region::new("chr2", 0, 1_000_000).unwrap()).len(), 0);
    }
}
