//! # ngs-bamx
//!
//! The paper's BAMX/BAIX preprocessing formats, implemented in full:
//!
//! * [`layout`] — per-dataset field maxima defining the fixed record width
//!   (the padding that makes records randomly addressable);
//! * [`record_codec`] — fixed-width record encode/decode;
//! * [`mod@file`] — BAMX shard writer/reader with O(1) random access, plus
//!   optional BGZF body compression (the paper's future-work item); opens
//!   both on-disk versions behind one [`BamxFile`] API;
//! * [`column`] + [`layout_v2`] — the v2 block-columnar compressed layout
//!   with per-column codecs and projection (DESIGN.md §14);
//! * [`baix`] — the `(starting position, alignment index)` index of
//!   Figure 4, with binary-search region → record-range mapping used by
//!   partial conversion;
//! * [`binned`] — a UCSC-binning overlap index (the second future-work
//!   item: "more sophisticated indexing techniques");
//! * [`region`] — `chr:start-end` genomic region parsing;
//! * [`repo`] — the crash-safe shard repository: checksummed per-directory
//!   manifests and atomic temp→fsync→rename publication (DESIGN.md §7.5).

pub mod baix;
pub mod bam_bai;
pub mod binned;
pub mod column;
pub mod file;
pub mod layout;
pub mod layout_v2;
pub mod record_codec;
pub mod region;
pub mod repo;

pub use baix::{position_key, Baix, BaixEntry};
pub use bam_bai::{fetch, BamIndex, Chunk};
pub use binned::BinnedIndex;
pub use column::{ColumnKind, ColumnSet};
pub use file::{
    write_bamx_file, write_bamx_file_versioned, AnyBamxWriter, BamxCompression, BamxFile,
    BamxVersion, BamxWriter,
};
pub use layout::BamxLayout;
pub use layout_v2::{V2Writer, DEFAULT_RECORDS_PER_BLOCK, MAGIC_V2};
pub use region::Region;
pub use repo::{Manifest, ManifestEntry, RepoFs, RepoReport, ShardRepo, StdFs, MANIFEST_NAME};
