//! Genomic regions ("chr1:1000-2000") used to drive partial conversion.

use std::fmt;

use ngs_formats::error::{Error, Result};
use ngs_formats::header::SamHeader;

/// A half-open genomic interval on one reference sequence.
///
/// Coordinates are 0-based internally; the text form uses the customary
/// 1-based inclusive convention (`chr1:1000-2000`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    /// Reference sequence name.
    pub name: Vec<u8>,
    /// 0-based inclusive start.
    pub start0: i64,
    /// 0-based exclusive end.
    pub end0: i64,
}

impl Region {
    /// Builds a region, validating the interval.
    pub fn new(name: impl Into<Vec<u8>>, start0: i64, end0: i64) -> Result<Self> {
        if start0 < 0 || end0 < start0 {
            return Err(Error::InvalidRecord(format!("bad region interval {start0}..{end0}")));
        }
        Ok(Region { name: name.into(), start0, end0 })
    }

    /// Parses `name`, `name:start`, or `name:start-end` (1-based inclusive
    /// text coordinates). A bare name covers the whole sequence, resolved
    /// against `header`.
    pub fn parse(text: &str, header: &SamHeader) -> Result<Self> {
        // A reference whose name happens to end in `:<digits>` (e.g. the
        // ALT contig "HLA:1") must stay addressable: an exact whole-string
        // match against the header wins over coordinate splitting.
        if header.reference_id(text.as_bytes()).is_some() {
            return Self::parse_parts(text, None, header, text);
        }
        let (name, range) = match text.rsplit_once(':') {
            // Guard against colons inside the sequence name: only split if
            // the suffix looks numeric.
            Some((n, r)) if r.chars().next().is_some_and(|c| c.is_ascii_digit()) => {
                (n, Some(r))
            }
            _ => (text, None),
        };
        Self::parse_parts(name, range, header, text)
    }

    fn parse_parts(
        name: &str,
        range: Option<&str>,
        header: &SamHeader,
        text: &str,
    ) -> Result<Self> {
        let ref_len = header
            .reference_id(name.as_bytes())
            .map(|id| header.references[id].length as i64)
            .ok_or_else(|| Error::UnknownReference(name.to_string()))?;
        let (start0, end0) = match range {
            None => (0, ref_len),
            Some(r) => {
                let parse_num = |s: &str| -> Result<i64> {
                    s.replace(',', "")
                        .parse()
                        .map_err(|_| Error::InvalidRecord(format!("bad coordinate {s:?}")))
                };
                match r.split_once('-') {
                    None => {
                        let s = parse_num(r)?;
                        (s - 1, ref_len)
                    }
                    Some((a, b)) => {
                        let s = parse_num(a)?;
                        let e = parse_num(b)?;
                        (s - 1, e)
                    }
                }
            }
        };
        if start0 < 0 || end0 < start0 {
            return Err(Error::InvalidRecord(format!("bad region {text:?}")));
        }
        // Ends are clamped to the reference, but a start beyond it is an
        // error: clamping it too would silently turn the request into an
        // empty interval at the end of the sequence.
        if start0 >= ref_len {
            return Err(Error::InvalidRecord(format!(
                "region {text:?} starts past the end of the reference ({ref_len} bp)"
            )));
        }
        Ok(Region { name: name.as_bytes().to_vec(), start0, end0: end0.min(ref_len) })
    }

    /// The reference id of this region under `header`.
    pub fn resolve(&self, header: &SamHeader) -> Result<i32> {
        header
            .reference_id(&self.name)
            .map(|i| i as i32)
            .ok_or_else(|| Error::UnknownReference(String::from_utf8_lossy(&self.name).into()))
    }

    /// Interval length in bases.
    pub fn len(&self) -> i64 {
        self.end0 - self.start0
    }

    /// True for zero-length regions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a record starting at `pos0` starts inside the region.
    pub fn contains_start(&self, pos0: i64) -> bool {
        (self.start0..self.end0).contains(&pos0)
    }

    /// Whether `[s, e)` overlaps the region at all.
    pub fn overlaps(&self, s: i64, e: i64) -> bool {
        s < self.end0 && self.start0 < e
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}-{}",
            String::from_utf8_lossy(&self.name),
            self.start0 + 1,
            self.end0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_formats::header::ReferenceSequence;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![
            ReferenceSequence { name: b"chr1".to_vec(), length: 10_000 },
            ReferenceSequence { name: b"HLA:A-1".to_vec(), length: 500 },
            ReferenceSequence { name: b"HLA:1".to_vec(), length: 300 },
        ])
    }

    #[test]
    fn parse_full_forms() {
        let h = header();
        let r = Region::parse("chr1:1001-2000", &h).unwrap();
        assert_eq!(r.start0, 1000);
        assert_eq!(r.end0, 2000);
        assert_eq!(r.len(), 1000);
        assert_eq!(r.to_string(), "chr1:1001-2000");
    }

    #[test]
    fn parse_bare_name() {
        let h = header();
        let r = Region::parse("chr1", &h).unwrap();
        assert_eq!(r.start0, 0);
        assert_eq!(r.end0, 10_000);
    }

    #[test]
    fn parse_open_end() {
        let h = header();
        let r = Region::parse("chr1:5001", &h).unwrap();
        assert_eq!(r.start0, 5000);
        assert_eq!(r.end0, 10_000);
    }

    #[test]
    fn parse_with_commas() {
        let h = header();
        let r = Region::parse("chr1:1,001-2,000", &h).unwrap();
        assert_eq!((r.start0, r.end0), (1000, 2000));
    }

    #[test]
    fn name_containing_colon() {
        let h = header();
        let r = Region::parse("HLA:A-1", &h).unwrap();
        assert_eq!(r.name, b"HLA:A-1");
        assert_eq!(r.end0, 500);
    }

    #[test]
    fn end_clamped_to_reference() {
        let h = header();
        let r = Region::parse("chr1:9000-99999", &h).unwrap();
        assert_eq!(r.end0, 10_000);
    }

    #[test]
    fn name_with_numeric_colon_suffix() {
        // "HLA:1" would split into name "HLA" + start 1; the exact header
        // match must win so ALT contigs stay addressable.
        let h = header();
        let r = Region::parse("HLA:1", &h).unwrap();
        assert_eq!(r.name, b"HLA:1");
        assert_eq!((r.start0, r.end0), (0, 300));
        // Coordinates on such a name still parse past the last colon.
        let r = Region::parse("HLA:1:10-20", &h).unwrap();
        assert_eq!(r.name, b"HLA:1");
        assert_eq!((r.start0, r.end0), (9, 20));
    }

    #[test]
    fn single_base_interval() {
        let h = header();
        let r = Region::parse("chr1:500-500", &h).unwrap();
        assert_eq!((r.start0, r.end0), (499, 500));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn start_past_reference_is_an_error() {
        let h = header();
        // Clamping the end must not rescue a start beyond the reference.
        assert!(Region::parse("chr1:20000-30000", &h).is_err());
        // Open-ended form, start exactly one past the last base.
        assert!(Region::parse("chr1:10001", &h).is_err());
        // Last valid base is fine.
        let r = Region::parse("chr1:10000", &h).unwrap();
        assert_eq!((r.start0, r.end0), (9999, 10_000));
    }

    #[test]
    fn errors() {
        let h = header();
        assert!(Region::parse("chrZ", &h).is_err());
        assert!(Region::parse("chr1:abc-10", &h).is_err());
        assert!(Region::parse("chr1:2000-1000", &h).is_err());
        // 1-based text coordinates start at 1; 0 underflows.
        assert!(Region::parse("chr1:0-10", &h).is_err());
        assert!(Region::parse("chr1:-5-10", &h).is_err());
        assert!(Region::new("x", -1, 5).is_err());
        assert!(Region::new("x", 10, 5).is_err());
    }

    #[test]
    fn geometry_predicates() {
        let r = Region::new("chr1", 100, 200).unwrap();
        assert!(r.contains_start(100));
        assert!(r.contains_start(199));
        assert!(!r.contains_start(200));
        assert!(!r.contains_start(99));
        assert!(r.overlaps(50, 101));
        assert!(r.overlaps(199, 300));
        assert!(!r.overlaps(200, 300));
        assert!(!r.overlaps(0, 100));
    }
}
