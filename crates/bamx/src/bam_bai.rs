//! A BAI-style index over *BAM files themselves* (as opposed to
//! [`crate::baix`] which indexes BAMX shards): UCSC bins map to chunks of
//! BGZF virtual offsets, so a region query seeks straight into the
//! compressed file — the indexing idea the paper credits to the BAM
//! format (Section II-B2), completing the substrate.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, Write};
use std::path::Path;

use ngs_bgzf::VirtualOffset;
use ngs_formats::bam::BamReader;
use ngs_formats::binning::{reg2bin, reg2bins};
use ngs_formats::error::{Error, Result};
use ngs_formats::record::AlignmentRecord;

use crate::region::Region;

/// Index file magic.
pub const MAGIC: [u8; 5] = *b"NBAI\x01";

/// A contiguous run of records in the compressed file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Virtual offset of the first record.
    pub start: VirtualOffset,
    /// Virtual offset just past the last record.
    pub end: VirtualOffset,
}

/// Bin → chunks for one reference sequence.
type RefBins = BTreeMap<u16, Vec<Chunk>>;

/// The BAM index: per-reference binned chunk lists.
#[derive(Debug, Clone, Default)]
pub struct BamIndex {
    /// One entry per reference sequence (same order as the header).
    pub refs: Vec<RefBins>,
    /// Records that were unmapped (no bin), for bookkeeping.
    pub unmapped: u64,
}

impl BamIndex {
    /// Builds the index by streaming the BAM once, recording each
    /// record's virtual-offset span into its bin.
    ///
    /// The input should be coordinate-sorted for chunks to stay few and
    /// contiguous, matching standard `samtools index` expectations (the
    /// index is still *correct* on unsorted input, just larger).
    pub fn build(bam_path: impl AsRef<Path>) -> Result<Self> {
        let mut reader = BamReader::new(BufReader::new(File::open(bam_path)?))?;
        let n_refs = reader.header().reference_count();
        let header = reader.header().clone();
        let mut refs: Vec<RefBins> = vec![RefBins::new(); n_refs];
        let mut unmapped = 0u64;

        let mut pos = reader.virtual_position();
        while let Some(rec) = reader.read_record()? {
            let end = reader.virtual_position();
            match (rec.start0(), rec.end0(), header.reference_id(&rec.rname)) {
                (Some(s), Some(e), Some(tid)) => {
                    let bin = reg2bin(s, e);
                    let chunks = refs[tid].entry(bin).or_default();
                    // Extend the previous chunk when adjacent (the common
                    // case in sorted input).
                    match chunks.last_mut() {
                        Some(last) if last.end == pos => last.end = end,
                        _ => chunks.push(Chunk { start: pos, end }),
                    }
                }
                _ => unmapped += 1,
            }
            pos = end;
        }
        Ok(BamIndex { refs, unmapped })
    }

    /// Chunks possibly containing records overlapping `region` on
    /// reference `tid`, merged and sorted.
    pub fn query(&self, tid: usize, region: &Region) -> Vec<Chunk> {
        let Some(bins) = self.refs.get(tid) else {
            return Vec::new();
        };
        let mut chunks: Vec<Chunk> = Vec::new();
        for bin in reg2bins(region.start0, region.end0.max(region.start0 + 1)) {
            if let Some(list) = bins.get(&bin) {
                chunks.extend_from_slice(list);
            }
        }
        chunks.sort_by_key(|c| c.start);
        // Merge overlapping/adjacent chunks to minimize seeks.
        let mut merged: Vec<Chunk> = Vec::with_capacity(chunks.len());
        for c in chunks {
            match merged.last_mut() {
                Some(last) if c.start <= last.end => last.end = last.end.max(c.end),
                _ => merged.push(c),
            }
        }
        merged
    }

    /// Total indexed chunks.
    pub fn chunk_count(&self) -> usize {
        self.refs.iter().flat_map(|r| r.values()).map(Vec::len).sum()
    }

    /// Serializes the index.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&MAGIC)?;
        w.write_all(&(self.refs.len() as u32).to_le_bytes())?;
        w.write_all(&self.unmapped.to_le_bytes())?;
        for bins in &self.refs {
            w.write_all(&(bins.len() as u32).to_le_bytes())?;
            for (&bin, chunks) in bins {
                w.write_all(&bin.to_le_bytes())?;
                w.write_all(&(chunks.len() as u32).to_le_bytes())?;
                for c in chunks {
                    w.write_all(&u64::from(c.start).to_le_bytes())?;
                    w.write_all(&u64::from(c.end).to_le_bytes())?;
                }
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Loads an index.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 5];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(Error::InvalidRecord("bad NBAI magic".into()));
        }
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        let mut b2 = [0u8; 2];
        r.read_exact(&mut b4)?;
        let n_refs = u32::from_le_bytes(b4) as usize;
        r.read_exact(&mut b8)?;
        let unmapped = u64::from_le_bytes(b8);
        let mut refs = Vec::with_capacity(n_refs);
        for _ in 0..n_refs {
            r.read_exact(&mut b4)?;
            let n_bins = u32::from_le_bytes(b4) as usize;
            let mut bins = RefBins::new();
            for _ in 0..n_bins {
                r.read_exact(&mut b2)?;
                let bin = u16::from_le_bytes(b2);
                r.read_exact(&mut b4)?;
                let n_chunks = u32::from_le_bytes(b4) as usize;
                let mut chunks = Vec::with_capacity(n_chunks);
                for _ in 0..n_chunks {
                    r.read_exact(&mut b8)?;
                    let start = VirtualOffset::from(u64::from_le_bytes(b8));
                    r.read_exact(&mut b8)?;
                    let end = VirtualOffset::from(u64::from_le_bytes(b8));
                    chunks.push(Chunk { start, end });
                }
                bins.insert(bin, chunks);
            }
            refs.push(bins);
        }
        Ok(BamIndex { refs, unmapped })
    }
}

/// Fetches all records overlapping `region` from an indexed BAM, seeking
/// only into the indexed chunks.
pub fn fetch<R: Read + Seek>(
    reader: &mut BamReader<R>,
    index: &BamIndex,
    region: &Region,
) -> Result<Vec<AlignmentRecord>> {
    let tid = reader
        .header()
        .reference_id(&region.name)
        .ok_or_else(|| Error::UnknownReference(String::from_utf8_lossy(&region.name).into()))?;
    let mut out = Vec::new();
    for chunk in index.query(tid, region) {
        reader.seek_virtual(chunk.start)?;
        while reader.virtual_position() < chunk.end {
            let Some(rec) = reader.read_record()? else {
                break;
            };
            if let (Some(s), Some(e)) = (rec.start0(), rec.end0()) {
                if rec.rname == region.name && region.overlaps(s, e) {
                    out.push(rec);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ngs_simgen::{Dataset, DatasetSpec};
    use std::io::Cursor;
    use tempfile::tempdir;

    fn sorted_bam(n: usize) -> (tempfile::TempDir, std::path::PathBuf, Dataset) {
        let dir = tempdir().unwrap();
        let ds = Dataset::generate(&DatasetSpec {
            n_records: n,
            coordinate_sorted: true,
            ..Default::default()
        });
        let path = dir.path().join("in.bam");
        ds.write_bam(&path).unwrap();
        (dir, path, ds)
    }

    fn open(path: &Path) -> BamReader<Cursor<Vec<u8>>> {
        BamReader::new(Cursor::new(std::fs::read(path).unwrap())).unwrap()
    }

    #[test]
    fn fetch_matches_bruteforce() {
        let (_d, path, ds) = sorted_bam(1500);
        let index = BamIndex::build(&path).unwrap();
        let header = ds.header();
        let chr1_len = header.references[0].length as i64;
        for (lo, hi) in [(0, chr1_len / 4), (chr1_len / 3, chr1_len / 2), (0, chr1_len)] {
            let region = Region::new("chr1", lo, hi.max(lo + 1)).unwrap();
            let mut reader = open(&path);
            let fetched = fetch(&mut reader, &index, &region).unwrap();
            let expected: Vec<_> = ds
                .records
                .iter()
                .filter(|r| {
                    r.rname == b"chr1"
                        && r.start0().zip(r.end0()).map(|(s, e)| region.overlaps(s, e)).unwrap_or(false)
                })
                .cloned()
                .collect();
            assert_eq!(fetched, expected, "region {region}");
        }
    }

    #[test]
    fn sorted_input_gives_few_chunks() {
        let (_d, path, _) = sorted_bam(2000);
        let index = BamIndex::build(&path).unwrap();
        // Sorted input coalesces adjacent records; far fewer chunks than
        // records.
        assert!(index.chunk_count() < 600, "chunks {}", index.chunk_count());
    }

    #[test]
    fn unmapped_counted_not_indexed() {
        let (_d, path, ds) = sorted_bam(800);
        let index = BamIndex::build(&path).unwrap();
        let unmapped = ds.records.iter().filter(|r| r.is_unmapped()).count() as u64;
        assert_eq!(index.unmapped, unmapped);
    }

    #[test]
    fn save_load_roundtrip() {
        let (_d, path, ds) = sorted_bam(700);
        let index = BamIndex::build(&path).unwrap();
        let idx_path = path.with_extension("nbai");
        index.save(&idx_path).unwrap();
        let loaded = BamIndex::load(&idx_path).unwrap();
        assert_eq!(loaded.unmapped, index.unmapped);
        assert_eq!(loaded.chunk_count(), index.chunk_count());
        // Queries agree.
        let region = Region::new("chr1", 1000, 50_000).unwrap();
        assert_eq!(loaded.query(0, &region), index.query(0, &region));
        let _ = ds;
    }

    #[test]
    fn query_unknown_reference_empty() {
        let (_d, path, _) = sorted_bam(100);
        let index = BamIndex::build(&path).unwrap();
        let region = Region::new("chrZ", 0, 100).unwrap();
        assert!(index.query(99, &region).is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tempdir().unwrap();
        let p = dir.path().join("x.nbai");
        std::fs::write(&p, b"JUNKJUNK").unwrap();
        assert!(BamIndex::load(&p).is_err());
    }
}
