//! BAMX shard files: fixed-width records with O(1) random access, plus the
//! optionally BGZF-compressed body (the paper's future-work item).
//!
//! Reading goes through the [`ReadAt`] abstraction so shards can be served
//! from files, in-memory buffers, or fault-injecting wrappers (`ngs-fault`).
//! Every malformation of untrusted shard bytes surfaces as a structured
//! [`Error::Decode`] — never a panic, never an attacker-sized allocation.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use ngs_bgzf::ReadAt;
use ngs_formats::bam::{decode_header, encode_header};
use ngs_formats::error::{DecodeErrorKind, Error, Result};
use ngs_formats::header::SamHeader;
use ngs_formats::record::AlignmentRecord;

use crate::column::ColumnSet;
use crate::layout::BamxLayout;
use crate::layout_v2::{V2Reader, V2Writer, MAGIC_V2};
use crate::record_codec;

/// BAMX file magic.
pub const MAGIC: [u8; 5] = *b"BAMX\x01";

/// Body compression of a BAMX shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BamxCompression {
    /// Raw fixed-width records; random access is a single `pread`.
    Plain,
    /// BGZF-compressed body with whole records per block; random access
    /// decompresses one 64 KiB block.
    Bgzf,
}

impl BamxCompression {
    fn to_byte(self) -> u8 {
        match self {
            BamxCompression::Plain => 0,
            BamxCompression::Bgzf => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(BamxCompression::Plain),
            1 => Ok(BamxCompression::Bgzf),
            other => Err(Error::InvalidRecord(format!("unknown BAMX compression {other}"))),
        }
    }
}

/// Streaming BAMX writer. The caller must provide the layout up front
/// (compute it with a first pass, or merge per-rank layouts).
pub struct BamxWriter<W: Write> {
    sink: Sink<W>,
    header: SamHeader,
    layout: BamxLayout,
    n_records: u64,
    scratch: Vec<u8>,
}

enum Sink<W: Write> {
    Plain(W),
    Bgzf { inner: ngs_bgzf::BgzfWriter<W>, records_per_block: usize, in_block: usize },
}

impl BamxWriter<BufWriter<File>> {
    /// Creates a BAMX file at `path`.
    pub fn create(
        path: impl AsRef<Path>,
        header: SamHeader,
        layout: BamxLayout,
        compression: BamxCompression,
    ) -> Result<Self> {
        let file = BufWriter::new(File::create(path)?);
        Self::new(file, header, layout, compression)
    }
}

impl<W: Write> BamxWriter<W> {
    /// Wraps an arbitrary sink.
    pub fn new(
        mut inner: W,
        header: SamHeader,
        layout: BamxLayout,
        compression: BamxCompression,
    ) -> Result<Self> {
        let mut prologue = Vec::new();
        encode_header(&header, &mut prologue);

        inner.write_all(&MAGIC)?;
        inner.write_all(&[compression.to_byte()])?;
        inner.write_all(&(prologue.len() as u32).to_le_bytes())?;
        inner.write_all(&prologue)?;
        inner.write_all(&layout.encode())?;
        // n_records is unknown while streaming; written as a trailer by
        // finish() for plain files and carried in the trailer for BGZF too.
        let sink = match compression {
            BamxCompression::Plain => Sink::Plain(inner),
            BamxCompression::Bgzf => {
                if layout.record_size() > ngs_bgzf::block::MAX_PAYLOAD {
                    return Err(Error::InvalidRecord(
                        "record size exceeds one BGZF block; use BamxCompression::Plain".into(),
                    ));
                }
                let rp = ngs_bgzf::block::MAX_PAYLOAD / layout.record_size();
                Sink::Bgzf { inner: ngs_bgzf::BgzfWriter::new(inner), records_per_block: rp, in_block: 0 }
            }
        };
        Ok(BamxWriter { sink, header, layout, n_records: 0, scratch: Vec::new() })
    }

    /// The layout this writer pads to.
    pub fn layout(&self) -> &BamxLayout {
        &self.layout
    }

    /// Appends one record.
    pub fn write_record(&mut self, record: &AlignmentRecord) -> Result<()> {
        self.scratch.clear();
        record_codec::encode(record, &self.header, &self.layout, &mut self.scratch)?;
        match &mut self.sink {
            Sink::Plain(w) => w.write_all(&self.scratch)?,
            Sink::Bgzf { inner, records_per_block, in_block } => {
                inner.write_all(&self.scratch)?;
                *in_block += 1;
                if *in_block == *records_per_block {
                    // Force a block boundary so every block holds whole
                    // records and block index arithmetic stays trivial.
                    inner.flush()?;
                    *in_block = 0;
                }
            }
        }
        self.n_records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        self.n_records
    }

    /// Finalizes the file (appends the record-count trailer) and returns
    /// the sink.
    pub fn finish(self) -> Result<W> {
        let n = self.n_records;
        let mut inner = match self.sink {
            Sink::Plain(w) => w,
            Sink::Bgzf { inner, .. } => inner.finish()?,
        };
        inner.write_all(&n.to_le_bytes())?;
        inner.flush()?;
        Ok(inner)
    }
}

/// The v1 fixed-width reader. Wrapped by the version-dispatching
/// [`BamxFile`]; not addressable outside the crate.
pub(crate) struct V1Reader {
    source: Box<dyn ReadAt>,
    /// Shard identity carried into every decode error.
    context: String,
    header: SamHeader,
    layout: BamxLayout,
    compression: BamxCompression,
    /// Offset of the first body byte.
    body_offset: u64,
    n_records: u64,
    /// For BGZF bodies: compressed offset of each block + records/block.
    block_offsets: Vec<u64>,
    records_per_block: usize,
}

impl V1Reader {
    /// Opens a v1 BAMX shard over an arbitrary positional-read source.
    /// `context` names the shard in decode errors (usually its path).
    pub(crate) fn open_with(source: Box<dyn ReadAt>, context: impl Into<String>) -> Result<Self> {
        let context = context.into();
        let bad = |kind, offset, detail: String| Error::decode(kind, offset, &context, detail);

        let total_len = source.len()?;
        // Fixed framing: magic(5) + compression(1) + prologue_len(4) +
        // layout(12) + trailer(8). Anything shorter cannot be a shard.
        const MIN_LEN: u64 = 10 + 12 + 8;
        if total_len < MIN_LEN {
            return Err(bad(
                DecodeErrorKind::Truncated,
                total_len,
                format!("file is {total_len} bytes, below the {MIN_LEN}-byte BAMX minimum"),
            ));
        }
        let mut head = [0u8; 10];
        source.read_exact_at(&mut head, 0)?;
        if head[..5] != MAGIC {
            return Err(bad(DecodeErrorKind::BadMagic, 0, "bad BAMX magic".into()));
        }
        let compression = BamxCompression::from_byte(head[5]).map_err(|e| {
            bad(DecodeErrorKind::Corrupt, 5, e.to_string())
        })?;
        let prologue_len = u32::from_le_bytes([head[6], head[7], head[8], head[9]]) as u64;
        // The prologue must leave room for layout + trailer; validate by
        // arithmetic before allocating or attempting the implied read.
        if prologue_len > total_len - MIN_LEN {
            return Err(bad(
                DecodeErrorKind::Implausible,
                6,
                format!("prologue length {prologue_len} exceeds file size {total_len}"),
            ));
        }

        let mut prologue = vec![0u8; prologue_len as usize];
        source.read_exact_at(&mut prologue, 10)?;
        // The prologue is an in-memory buffer here, so any failure —
        // including an EOF-shaped one — is structural, not transient I/O.
        let header = decode_header(&mut &prologue[..]).map_err(|e| {
            bad(DecodeErrorKind::Corrupt, 10, format!("BAMX prologue: {e}"))
        })?;

        let mut layout_bytes = [0u8; 12];
        source.read_exact_at(&mut layout_bytes, 10 + prologue_len)?;
        let layout = BamxLayout::decode(&layout_bytes).map_err(|e| {
            bad(DecodeErrorKind::Corrupt, 10 + prologue_len, e.to_string())
        })?;

        let body_offset = 10 + prologue_len + 12;

        let mut trailer = [0u8; 8];
        source.read_exact_at(&mut trailer, total_len - 8)?;
        let n_records = u64::from_le_bytes(trailer);

        let mut this = V1Reader {
            source,
            context,
            header,
            layout,
            compression,
            body_offset,
            n_records,
            block_offsets: Vec::new(),
            records_per_block: 0,
        };
        if compression == BamxCompression::Bgzf {
            this.records_per_block =
                (ngs_bgzf::block::MAX_PAYLOAD / this.layout.record_size()).max(1);
            this.build_block_index(total_len - 8)?;
            // Every record must live in some block; a trailer claiming more
            // records than the blocks can hold is corruption, caught here so
            // read paths never index past the block table.
            let needed = n_records.div_ceil(this.records_per_block as u64);
            if (this.block_offsets.len() as u64) < needed {
                return Err(Error::decode(
                    DecodeErrorKind::Corrupt,
                    total_len - 8,
                    &this.context,
                    format!(
                        "trailer claims {n_records} records but body holds {} BGZF blocks ({needed} needed)",
                        this.block_offsets.len()
                    ),
                ));
            }
        } else {
            let body = total_len - 8 - body_offset;
            let expect = (this.layout.record_size() as u64)
                .checked_mul(n_records)
                .ok_or_else(|| {
                    Error::decode(
                        DecodeErrorKind::Implausible,
                        total_len - 8,
                        &this.context,
                        format!("record count {n_records} overflows the body size"),
                    )
                })?;
            if body != expect {
                return Err(Error::decode(
                    DecodeErrorKind::Corrupt,
                    total_len - 8,
                    &this.context,
                    format!("BAMX body size {body} != {expect} implied by trailer"),
                ));
            }
        }
        Ok(this)
    }

    /// Walks BGZF block headers (no decompression) to build the block
    /// offset table.
    fn build_block_index(&mut self, body_end: u64) -> Result<()> {
        let mut pos = self.body_offset;
        let mut head = [0u8; ngs_bgzf::block::HEADER_SIZE];
        while pos < body_end {
            if pos + ngs_bgzf::block::HEADER_SIZE as u64 > body_end {
                return Err(Error::decode(
                    DecodeErrorKind::Truncated,
                    pos,
                    &self.context,
                    "BGZF block header straddles the record-count trailer",
                ));
            }
            self.source.read_exact_at(&mut head, pos)?;
            let bsize = ngs_bgzf::block::peek_block_size(&head).map_err(|e| {
                Error::decode(DecodeErrorKind::Corrupt, pos, &self.context, e.to_string())
            })? as u64;
            self.block_offsets.push(pos);
            pos += bsize;
        }
        Ok(())
    }

    /// The shard identity used in decode errors (usually the file path).
    pub fn context(&self) -> &str {
        &self.context
    }

    /// The embedded header (reference dictionary).
    pub fn header(&self) -> &SamHeader {
        &self.header
    }

    /// The record layout.
    pub fn layout(&self) -> &BamxLayout {
        &self.layout
    }

    /// Number of records in the shard.
    pub fn len(&self) -> u64 {
        self.n_records
    }

    /// The body compression mode.
    pub fn compression(&self) -> BamxCompression {
        self.compression
    }

    /// Reads the raw fixed-width bytes of records `lo..hi` into a buffer.
    pub fn read_raw_range(&self, lo: u64, hi: u64) -> Result<Vec<u8>> {
        if lo > hi || hi > self.n_records {
            return Err(Error::InvalidRecord(format!("record range {lo}..{hi} out of bounds")));
        }
        let rsz = self.layout.record_size() as u64;
        match self.compression {
            BamxCompression::Plain => {
                let mut buf = vec![0u8; ((hi - lo) * rsz) as usize];
                self.source.read_exact_at(&mut buf, self.body_offset + lo * rsz)?;
                Ok(buf)
            }
            BamxCompression::Bgzf => {
                if hi == lo {
                    return Ok(Vec::new());
                }
                let rpb = self.records_per_block as u64;
                let first_block = (lo / rpb) as usize;
                let last_block = ((hi - 1) / rpb) as usize;
                // Open-time validation guarantees the block table covers
                // every record the trailer claims; keep a typed guard so a
                // logic slip can never become an index panic.
                if last_block >= self.block_offsets.len() {
                    return Err(Error::decode(
                        DecodeErrorKind::Corrupt,
                        self.body_offset,
                        &self.context,
                        format!(
                            "records {lo}..{hi} need block {last_block} but only {} exist",
                            self.block_offsets.len()
                        ),
                    ));
                }
                let mut out = Vec::with_capacity(((hi - lo) * rsz) as usize);
                let mut scratch = Vec::new();
                for b in first_block..=last_block {
                    let start = self.block_offsets[b];
                    let end = self
                        .block_offsets
                        .get(b + 1)
                        .copied()
                        .unwrap_or(start + 65536);
                    let mut comp = vec![0u8; (end - start) as usize];
                    // The final block may be followed by EOF marker bytes we
                    // sized past; read until the buffer fills or the source
                    // truly ends. A single read_at is not enough: short
                    // reads are legal mid-file and must not fake an EOF.
                    let mut filled = 0usize;
                    while filled < comp.len() {
                        let got = self.source.read_at(&mut comp[filled..], start + filled as u64)?;
                        if got == 0 {
                            break;
                        }
                        filled += got;
                    }
                    comp.truncate(filled);
                    let (payload, _) = ngs_bgzf::block::decompress_block(&comp)?;
                    scratch.clear();
                    scratch.extend_from_slice(&payload);
                    let block_first_rec = b as u64 * rpb;
                    let s = lo.max(block_first_rec);
                    let e = hi.min(block_first_rec + (payload.len() as u64 / rsz));
                    if e > s {
                        let off = ((s - block_first_rec) * rsz) as usize;
                        out.extend_from_slice(&scratch[off..off + ((e - s) * rsz) as usize]);
                    }
                }
                if out.len() != ((hi - lo) * rsz) as usize {
                    return Err(Error::decode(
                        DecodeErrorKind::Truncated,
                        self.block_offsets[first_block],
                        &self.context,
                        "compressed BAMX range short read",
                    ));
                }
                Ok(out)
            }
        }
    }

    /// Decodes records `lo..hi`.
    pub fn read_range(&self, lo: u64, hi: u64) -> Result<Vec<AlignmentRecord>> {
        let raw = self.read_raw_range(lo, hi)?;
        let rsz = self.layout.record_size();
        raw.chunks_exact(rsz).map(|c| record_codec::decode(c, &self.header, &self.layout)).collect()
    }

    /// Streams `(ref_id, pos0)` keys for every record in file order —
    /// used by BAIX construction without full decodes.
    pub fn positions(&self) -> Result<Vec<(i32, i32)>> {
        let mut out = Vec::with_capacity(self.n_records as usize);
        const CHUNK: u64 = 4096;
        let mut lo = 0u64;
        while lo < self.n_records {
            let hi = (lo + CHUNK).min(self.n_records);
            let raw = self.read_raw_range(lo, hi)?;
            for rec in raw.chunks_exact(self.layout.record_size()) {
                out.push(record_codec::peek_position(rec)?);
            }
            lo = hi;
        }
        Ok(out)
    }
}

/// On-disk format version of a BAMX shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BamxVersion {
    /// Fixed-width padded records (the paper's original layout).
    #[default]
    V1,
    /// Block-columnar compressed layout with projection (DESIGN.md §14).
    V2,
}

impl BamxVersion {
    /// Stable name used in CLI flags and repository metadata.
    pub fn name(self) -> &'static str {
        match self {
            BamxVersion::V1 => "v1",
            BamxVersion::V2 => "v2",
        }
    }

    /// Parses the CLI/metadata spelling (`"v1"`/`"1"`, `"v2"`/`"2"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "v1" | "1" => Some(BamxVersion::V1),
            "v2" | "2" => Some(BamxVersion::V2),
            _ => None,
        }
    }
}

/// A BAMX shard opened for random access over any [`ReadAt`] source —
/// a plain `File`, an in-memory buffer, or a fault-injecting wrapper.
/// In practice each worker thread opens its own `BamxFile`.
///
/// The on-disk version is sniffed from the magic at open time: v1
/// (fixed-width, optionally BGZF) and v2 (block-columnar, DESIGN.md §14)
/// shards present the same read API. v2 additionally honours column
/// *projection* — [`read_range_projected`](Self::read_range_projected)
/// decodes only the streams the caller's [`ColumnSet`] names.
pub struct BamxFile {
    inner: Inner,
}

enum Inner {
    V1(V1Reader),
    V2(V2Reader),
}

impl BamxFile {
    /// Opens a BAMX file and reads its metadata.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let context = path.as_ref().display().to_string();
        let file = File::open(path)?;
        Self::open_with(Box::new(file), context)
    }

    /// Opens a BAMX shard over an arbitrary positional-read source,
    /// dispatching on the magic's version byte. `context` names the
    /// shard in decode errors (usually its path).
    pub fn open_with(source: Box<dyn ReadAt>, context: impl Into<String>) -> Result<Self> {
        let context = context.into();
        let total_len = source.len()?;
        if total_len < 5 {
            return Err(Error::decode(
                DecodeErrorKind::Truncated,
                total_len,
                &context,
                format!("file is {total_len} bytes, too short for a BAMX magic"),
            ));
        }
        let mut magic = [0u8; 5];
        source.read_exact_at(&mut magic, 0)?;
        if magic == MAGIC {
            Ok(BamxFile { inner: Inner::V1(V1Reader::open_with(source, context)?) })
        } else if magic == MAGIC_V2 {
            Ok(BamxFile { inner: Inner::V2(V2Reader::open_with(source, context)?) })
        } else {
            Err(Error::decode(DecodeErrorKind::BadMagic, 0, &context, "bad BAMX magic"))
        }
    }

    /// The on-disk format version this shard was written with.
    pub fn version(&self) -> BamxVersion {
        match &self.inner {
            Inner::V1(_) => BamxVersion::V1,
            Inner::V2(_) => BamxVersion::V2,
        }
    }

    /// The shard identity used in decode errors (usually the file path).
    pub fn context(&self) -> &str {
        match &self.inner {
            Inner::V1(v) => v.context(),
            Inner::V2(v) => v.context(),
        }
    }

    /// The embedded header (reference dictionary).
    pub fn header(&self) -> &SamHeader {
        match &self.inner {
            Inner::V1(v) => v.header(),
            Inner::V2(v) => v.header(),
        }
    }

    /// The record layout (field maxima; v2 keeps it for validation
    /// bounds and fingerprinting rather than padding).
    pub fn layout(&self) -> &BamxLayout {
        match &self.inner {
            Inner::V1(v) => v.layout(),
            Inner::V2(v) => v.layout(),
        }
    }

    /// Number of records in the shard.
    pub fn len(&self) -> u64 {
        match &self.inner {
            Inner::V1(v) => v.len(),
            Inner::V2(v) => v.len(),
        }
    }

    /// True when the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The body compression mode. v2 shards report
    /// [`BamxCompression::Plain`]: their compression is per-column, not
    /// a body-wide wrapper.
    pub fn compression(&self) -> BamxCompression {
        match &self.inner {
            Inner::V1(v) => v.compression(),
            Inner::V2(_) => BamxCompression::Plain,
        }
    }

    /// Reads the raw fixed-width bytes of records `lo..hi` — a v1-only
    /// operation (v2 shards are columnar; there are no per-record fixed
    /// slots to expose). Returns a typed error on v2.
    pub fn read_raw_range(&self, lo: u64, hi: u64) -> Result<Vec<u8>> {
        match &self.inner {
            Inner::V1(v) => v.read_raw_range(lo, hi),
            Inner::V2(_) => Err(Error::InvalidRecord(
                "raw fixed-width access is a v1 operation; v2 shards are columnar".into(),
            )),
        }
    }

    /// Decodes records `lo..hi` in full.
    pub fn read_range(&self, lo: u64, hi: u64) -> Result<Vec<AlignmentRecord>> {
        self.read_range_projected(lo, hi, ColumnSet::ALL)
    }

    /// Decodes records `lo..hi` under a column projection. On v2 only
    /// the selected streams are read and decompressed — unselected
    /// fields come back as their empty defaults. On v1 the projection is
    /// a no-op (one fixed-width `pread` already fetches everything), so
    /// projected fields are byte-identical across versions and the
    /// extras are simply ignored by the consumer.
    pub fn read_range_projected(
        &self,
        lo: u64,
        hi: u64,
        set: ColumnSet,
    ) -> Result<Vec<AlignmentRecord>> {
        match &self.inner {
            Inner::V1(v) => v.read_range(lo, hi),
            Inner::V2(v) => v.read_range_projected(lo, hi, set),
        }
    }

    /// Decodes a single record by index.
    pub fn read_record(&self, index: u64) -> Result<AlignmentRecord> {
        let mut v = self.read_range(index, index + 1)?;
        v.pop().ok_or_else(|| Error::InvalidRecord("empty read of a length-one range".into()))
    }

    /// Streams `(ref_id, pos0)` keys for every record in file order —
    /// used by BAIX construction without full decodes. On v2 this is the
    /// flagship projection: only each block's position column is read.
    pub fn positions(&self) -> Result<Vec<(i32, i32)>> {
        match &self.inner {
            Inner::V1(v) => v.positions(),
            Inner::V2(v) => v.positions(),
        }
    }

    /// Per-block first position keys (v2 only; empty iterator on v1) —
    /// block-level pruning diagnostics for `repro bamx2`.
    pub fn block_first_keys(&self) -> Vec<u64> {
        match &self.inner {
            Inner::V1(_) => Vec::new(),
            Inner::V2(v) => v.block_first_keys().collect(),
        }
    }
}

/// A streaming writer for either on-disk version, so converter code can
/// branch once at creation time and feed records through a single type.
pub enum AnyBamxWriter<W: Write> {
    /// Fixed-width v1 writer.
    V1(BamxWriter<W>),
    /// Block-columnar v2 writer.
    V2(V2Writer<W>),
}

impl<W: Write> AnyBamxWriter<W> {
    /// Wraps a sink with the requested version. `compression` applies to
    /// v1 bodies only; v2 compresses per column and ignores it.
    pub fn new(
        version: BamxVersion,
        inner: W,
        header: SamHeader,
        layout: BamxLayout,
        compression: BamxCompression,
    ) -> Result<Self> {
        match version {
            BamxVersion::V1 => {
                Ok(AnyBamxWriter::V1(BamxWriter::new(inner, header, layout, compression)?))
            }
            BamxVersion::V2 => Ok(AnyBamxWriter::V2(V2Writer::new(inner, header, layout)?)),
        }
    }

    /// Appends one record.
    pub fn write_record(&mut self, record: &AlignmentRecord) -> Result<()> {
        match self {
            AnyBamxWriter::V1(w) => w.write_record(record),
            AnyBamxWriter::V2(w) => w.write_record(record),
        }
    }

    /// Records written so far.
    pub fn record_count(&self) -> u64 {
        match self {
            AnyBamxWriter::V1(w) => w.record_count(),
            AnyBamxWriter::V2(w) => w.record_count(),
        }
    }

    /// The layout this writer validates against.
    pub fn layout(&self) -> &BamxLayout {
        match self {
            AnyBamxWriter::V1(w) => w.layout(),
            AnyBamxWriter::V2(w) => w.layout(),
        }
    }

    /// Finalizes the file and returns the sink.
    pub fn finish(self) -> Result<W> {
        match self {
            AnyBamxWriter::V1(w) => w.finish(),
            AnyBamxWriter::V2(w) => w.finish(),
        }
    }
}

/// Convenience: writes `records` (two passes: layout, then records) to
/// `path`, returning the record count.
pub fn write_bamx_file(
    path: impl AsRef<Path>,
    header: &SamHeader,
    records: &[AlignmentRecord],
    compression: BamxCompression,
) -> Result<u64> {
    let layout = BamxLayout::compute(records)?;
    let mut w = BamxWriter::create(path, header.clone(), layout, compression)?;
    for r in records {
        w.write_record(r)?;
    }
    let n = w.record_count();
    w.finish()?;
    Ok(n)
}

/// Convenience: like [`write_bamx_file`] but for either format version.
pub fn write_bamx_file_versioned(
    path: impl AsRef<Path>,
    header: &SamHeader,
    records: &[AlignmentRecord],
    compression: BamxCompression,
    version: BamxVersion,
) -> Result<u64> {
    let layout = BamxLayout::compute(records)?;
    let sink = BufWriter::new(File::create(path)?);
    let mut w = AnyBamxWriter::new(version, sink, header.clone(), layout, compression)?;
    for r in records {
        w.write_record(r)?;
    }
    let n = w.record_count();
    w.finish()?;
    Ok(n)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ngs_formats::header::ReferenceSequence;
    use ngs_formats::sam;
    use tempfile::tempdir;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![ReferenceSequence {
            name: b"chr1".to_vec(),
            length: 1_000_000,
        }])
    }

    fn records(n: usize) -> Vec<AlignmentRecord> {
        (0..n)
            .map(|i| {
                let line = format!(
                    "read{i}\t0\tchr1\t{}\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII\tNM:i:{}",
                    100 + i * 7,
                    i % 4
                );
                sam::parse_record(line.as_bytes(), 1).unwrap()
            })
            .collect()
    }

    #[test]
    fn plain_roundtrip() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = records(100);
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        assert_eq!(f.len(), 100);
        assert_eq!(f.read_range(0, 100).unwrap(), recs);
        assert_eq!(f.read_record(42).unwrap(), recs[42]);
        assert_eq!(f.compression(), BamxCompression::Plain);
    }

    #[test]
    fn bgzf_roundtrip() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamxz");
        let recs = records(5000);
        write_bamx_file(&path, &header(), &recs, BamxCompression::Bgzf).unwrap();
        let f = BamxFile::open(&path).unwrap();
        assert_eq!(f.len(), 5000);
        assert_eq!(f.compression(), BamxCompression::Bgzf);
        // Whole-range and point reads agree with the source.
        assert_eq!(f.read_range(0, 5000).unwrap(), recs);
        for i in [0u64, 1, 999, 2500, 4999] {
            assert_eq!(f.read_record(i).unwrap(), recs[i as usize], "record {i}");
        }
        // A range crossing block boundaries.
        assert_eq!(f.read_range(100, 3100).unwrap(), recs[100..3100]);
    }

    #[test]
    fn compressed_is_smaller() {
        let dir = tempdir().unwrap();
        let plain = dir.path().join("p.bamx");
        let comp = dir.path().join("c.bamx");
        let recs = records(2000);
        write_bamx_file(&plain, &header(), &recs, BamxCompression::Plain).unwrap();
        write_bamx_file(&comp, &header(), &recs, BamxCompression::Bgzf).unwrap();
        let ps = std::fs::metadata(&plain).unwrap().len();
        let cs = std::fs::metadata(&comp).unwrap().len();
        assert!(cs < ps, "compressed {cs} must beat plain {ps}");
    }

    #[test]
    fn positions_stream() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        let recs = records(300);
        write_bamx_file(&path, &header(), &recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let pos = f.positions().unwrap();
        assert_eq!(pos.len(), 300);
        assert_eq!(pos[0], (0, 99));
        assert_eq!(pos[299], (0, 99 + 299 * 7));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        write_bamx_file(&path, &header(), &records(10), BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        assert!(f.read_range(5, 11).is_err());
        assert!(f.read_range(7, 3).is_err());
    }

    #[test]
    fn empty_file() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("e.bamx");
        write_bamx_file(&path, &header(), &[], BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        assert!(f.is_empty());
        assert!(f.read_range(0, 0).unwrap().is_empty());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("bad.bamx");
        std::fs::write(&path, b"NOTBAMX-really-not").unwrap();
        assert!(BamxFile::open(&path).is_err());
    }
}
