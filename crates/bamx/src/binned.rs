//! Binned (UCSC-scheme) index over a BAMX shard — the paper's future-work
//! item ("more sophisticated indexing techniques to the BAIX structure").
//!
//! Where plain BAIX answers *"which alignments start inside the region"*,
//! the binned index answers the stronger *overlap* query — alignments
//! whose interval intersects the region even if they start before it —
//! by bucketing each alignment's `[start, end)` span into R-tree bins.

use ngs_formats::binning::{reg2bin, reg2bins};
use ngs_formats::error::Result;

use crate::file::BamxFile;
use crate::region::Region;

/// One indexed alignment interval.
///
/// Coordinates are `i64` like [`AlignmentRecord`](ngs_formats::record::
/// AlignmentRecord) spans: a record's *end* is `start + CIGAR reference
/// length` and can exceed `i32::MAX` even though starts are i32-bounded,
/// so narrowing here would silently wrap the interval (the same
/// truncation bug class as the old `Baix::locate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BinnedEntry {
    /// Shard record index.
    index: u64,
    /// 0-based start.
    start: i64,
    /// 0-based exclusive end.
    end: i64,
}

/// Binned overlap index: per (reference, bin) lists of intervals.
#[derive(Debug, Clone, Default)]
pub struct BinnedIndex {
    /// `(ref_id, bin)` keys sorted; parallel to `buckets`.
    keys: Vec<(i32, u16)>,
    /// Bucket per key.
    buckets: Vec<Vec<BinnedEntry>>,
}

impl BinnedIndex {
    /// Builds the index by decoding record coordinates from the shard.
    ///
    /// Uses the full records (not just `positions()`) because the reference
    /// span depends on the CIGAR.
    pub fn build(file: &BamxFile) -> Result<Self> {
        let mut map: std::collections::BTreeMap<(i32, u16), Vec<BinnedEntry>> =
            std::collections::BTreeMap::new();
        const CHUNK: u64 = 2048;
        let mut lo = 0u64;
        while lo < file.len() {
            let hi = (lo + CHUNK).min(file.len());
            for (off, rec) in file.read_range(lo, hi)?.into_iter().enumerate() {
                let (Some(start), Some(end)) = (rec.start0(), rec.end0()) else {
                    continue; // unmapped: not in the overlap index
                };
                let ref_id = match rec.rname.as_slice() {
                    b"*" => continue,
                    name => match file.header().reference_id(name) {
                        Some(id) => id as i32,
                        None => continue,
                    },
                };
                let bin = reg2bin(start, end);
                map.entry((ref_id, bin)).or_default().push(BinnedEntry {
                    index: lo + off as u64,
                    start,
                    end,
                });
            }
            lo = hi;
        }
        let mut keys = Vec::with_capacity(map.len());
        let mut buckets = Vec::with_capacity(map.len());
        for (k, v) in map {
            keys.push(k);
            buckets.push(v);
        }
        Ok(BinnedIndex { keys, buckets })
    }

    /// Returns shard indices of alignments whose span overlaps `region`
    /// (sorted, deduplicated).
    pub fn query(&self, ref_id: i32, region: &Region) -> Vec<u64> {
        let mut out = Vec::new();
        for bin in reg2bins(region.start0, region.end0.max(region.start0 + 1)) {
            if let Ok(slot) = self.keys.binary_search(&(ref_id, bin)) {
                for e in &self.buckets[slot] {
                    if region.overlaps(e.start, e.end) {
                        out.push(e.index);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total indexed intervals.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{write_bamx_file, BamxCompression};
    use ngs_formats::header::{ReferenceSequence, SamHeader};
    use ngs_formats::record::AlignmentRecord;
    use ngs_formats::sam;
    use tempfile::tempdir;

    fn header() -> SamHeader {
        SamHeader::from_references(vec![ReferenceSequence {
            name: b"chr1".to_vec(),
            length: 10_000_000,
        }])
    }

    fn rec(name: &str, pos: i64, cigar: &str) -> AlignmentRecord {
        let line = format!("{name}\t0\tchr1\t{pos}\t60\t{cigar}\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII");
        sam::parse_record(line.as_bytes(), 1).unwrap()
    }

    fn build(recs: &[AlignmentRecord]) -> (tempfile::TempDir, BamxFile, BinnedIndex) {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.bamx");
        write_bamx_file(&path, &header(), recs, BamxCompression::Plain).unwrap();
        let f = BamxFile::open(&path).unwrap();
        let idx = BinnedIndex::build(&f).unwrap();
        (dir, f, idx)
    }

    #[test]
    fn overlap_query_catches_spanning_reads() {
        // A read starting before the region but overlapping it — missed by
        // plain BAIX start-position search, caught by the binned index.
        let recs =
            vec![rec("before", 100, "10M"), rec("spanning", 995, "10M"), rec("inside", 1005, "4M"), rec("after", 2000, "10M")];
        let (_d, _f, idx) = build(&recs);
        let region = Region::new("chr1", 1000, 1500).unwrap();
        let hits = idx.query(0, &region);
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn long_cigar_span_counts() {
        // 10M100000N10M spans far right: starts at 999, ends past 101000.
        let recs = vec![rec("gapped", 1000, "10M100000N10M")];
        let (_d, _f, idx) = build(&recs);
        let region = Region::new("chr1", 100_500, 100_600).unwrap();
        assert_eq!(idx.query(0, &region), vec![0]);
    }

    /// Regression: interval ends are `start + CIGAR reference length` and
    /// can exceed `i32::MAX` even though starts fit in i32. The old
    /// `BinnedEntry` narrowed both through `as i32`, wrapping the end
    /// negative so the overlap test could never match — a query over the
    /// far end of such a read silently came back empty.
    #[test]
    fn span_past_i32_max_still_matches() {
        // Start near the top of the i32 domain, span 100 bases past it.
        let start0 = i32::MAX as i64 - 8; // pos (1-based) = i32::MAX - 7
        let recs = vec![rec("edge", start0 + 1, "100M")];
        let (_d, _f, idx) = build(&recs);
        assert_eq!(idx.len(), 1);
        // Query a window strictly past i32::MAX but inside the span.
        let region = Region::new("chr1", i32::MAX as i64 + 10, i32::MAX as i64 + 40).unwrap();
        assert_eq!(idx.query(0, &region), vec![0]);
        // And a window past the span stays empty.
        let region = Region::new("chr1", start0 + 200, start0 + 300).unwrap();
        assert!(idx.query(0, &region).is_empty());
    }

    #[test]
    fn unmapped_excluded() {
        let u = sam::parse_record(b"u\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII", 1).unwrap();
        let recs = vec![rec("m", 100, "4M"), u];
        let (_d, _f, idx) = build(&recs);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn query_other_reference_empty() {
        let recs = vec![rec("m", 100, "4M")];
        let (_d, _f, idx) = build(&recs);
        let region = Region::new("chrX", 0, 1000).unwrap();
        assert!(idx.query(7, &region).is_empty());
    }

    #[test]
    fn results_sorted_and_unique() {
        let recs: Vec<_> = (0..50).map(|i| rec(&format!("r{i}"), 1000 + i, "10M")).collect();
        let (_d, _f, idx) = build(&recs);
        let region = Region::new("chr1", 990, 1100).unwrap();
        let hits = idx.query(0, &region);
        assert_eq!(hits.len(), 50);
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
    }
}
