//! Manifest robustness suite (DESIGN.md §7.5): `Manifest::decode` must
//! never panic on arbitrary bytes — every malformation is a typed
//! `Error::Decode` — and encoding must be deterministic and involutive
//! (decode ∘ encode = id, byte-for-byte) so resumed preprocessing can
//! reproduce the MANIFEST exactly.

use proptest::prelude::*;

use ngs_bamx::repo::{valid_artifact_name, Manifest, ManifestEntry};
use ngs_formats::error::{DecodeErrorKind, Error};

fn arb_entry() -> impl Strategy<Value = ManifestEntry> {
    ("[a-zA-Z0-9._-]{0,23}", any::<u64>(), any::<u32>(), any::<u32>()).prop_map(
        |(suffix, len, crc32, fingerprint)| {
            // A fixed leading letter keeps every generated name valid
            // (non-empty, not dot-prefixed, not the MANIFEST itself).
            let name = format!("a{suffix}");
            assert!(valid_artifact_name(&name));
            ManifestEntry { name, len, crc32, fingerprint }
        },
    )
}

fn arb_manifest() -> impl Strategy<Value = Manifest> {
    (
        proptest::collection::vec(("[a-z]{1,12}", "[ -~]{0,32}"), 0..4),
        proptest::collection::vec(arb_entry(), 0..8),
    )
        .prop_map(|(meta, entries)| Manifest {
            meta: meta.into_iter().collect(),
            entries: entries.into_iter().map(|e| (e.name.clone(), e)).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic the parser; they either decode or
    /// yield a typed decode error (never a raw I/O error — there is no
    /// I/O here).
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match Manifest::decode(&bytes, "prop") {
            Ok(_) => {}
            Err(Error::Decode(_)) => {}
            Err(other) => prop_assert!(false, "non-decode error: {other:?}"),
        }
    }

    /// Encode → decode is the identity, and re-encoding is byte-identical
    /// (the determinism resumed preprocessing relies on).
    #[test]
    fn encode_decode_roundtrip_is_deterministic(m in arb_manifest()) {
        let enc = m.encode();
        match Manifest::decode(&enc, "prop") {
            Ok(back) => {
                prop_assert_eq!(&back, &m);
                prop_assert_eq!(back.encode(), enc);
            }
            Err(e) => prop_assert!(false, "own encoding rejected: {e}"),
        }
    }

    /// Any single corrupted byte inside the manifest is caught: decode
    /// fails (almost always `ManifestMismatch` from the trailing CRC; a
    /// flip inside the checksum line itself parses as a different stated
    /// CRC or stops parsing — also an error). Silent acceptance of a
    /// scribbled manifest is the one unacceptable outcome.
    #[test]
    fn single_byte_corruption_is_always_detected(
        m in arb_manifest(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let mut enc = m.encode();
        let pos = (pos_seed % enc.len() as u64) as usize;
        enc[pos] ^= xor;
        match Manifest::decode(&enc, "prop") {
            Err(Error::Decode(_)) => {}
            Ok(decoded) => prop_assert!(
                false,
                "corrupt manifest decoded silently at byte {}: {:?}", pos, decoded
            ),
            Err(other) => prop_assert!(false, "non-decode error: {other:?}"),
        }
    }

    /// Truncating a manifest anywhere strictly inside its bytes is
    /// detected as a typed decode error. (Cutting only the final newline
    /// is excluded: the parser deliberately tolerates a missing trailing
    /// `\n` after the checksum line, and no bytes of content are lost.)
    #[test]
    fn truncation_is_always_detected(m in arb_manifest(), cut_seed in any::<u64>()) {
        let enc = m.encode();
        let cut = (cut_seed % (enc.len() as u64 - 1)) as usize;
        match Manifest::decode(&enc[..cut], "prop") {
            Err(Error::Decode(_)) => {}
            Ok(decoded) => prop_assert!(
                false,
                "truncated manifest (cut {}/{}) decoded silently: {:?}",
                cut, enc.len(), decoded
            ),
            Err(other) => prop_assert!(false, "non-decode error: {other:?}"),
        }
    }
}

/// The typed kinds the repair path dispatches on: a manifest cut
/// mid-file is `Truncated`; a checksum-violating scribble is
/// `ManifestMismatch` (or `Corrupt` when the flip breaks line syntax
/// before the checksum is consulted).
#[test]
fn corruption_kinds_are_dispatchable() {
    let mut m = Manifest::default();
    m.meta.insert("ranks".into(), "4".into());
    let enc = m.encode();

    match Manifest::decode(&enc[..enc.len() / 2], "t") {
        Err(Error::Decode(d)) => assert_eq!(d.kind, DecodeErrorKind::Truncated),
        other => panic!("expected Truncated, got {other:?}"),
    }

    let mut scribbled = enc.clone();
    scribbled[enc.len() / 2] ^= 0x01;
    match Manifest::decode(&scribbled, "t") {
        Err(Error::Decode(d)) => assert!(
            matches!(d.kind, DecodeErrorKind::ManifestMismatch | DecodeErrorKind::Corrupt),
            "unexpected kind {:?}",
            d.kind
        ),
        other => panic!("expected decode error, got {other:?}"),
    }
}
