//! Corrupt-input regression suite for BAMX shards and BAIX indexes: every
//! malformed byte pattern must surface as a typed error, never a panic or
//! an attacker-chosen allocation. Each named test records a concrete
//! corrupt-input panic found during the fault-injection audit (ISSUE 2).

use ngs_bamx::{
    write_bamx_file, write_bamx_file_versioned, Baix, BamxCompression, BamxFile, BamxVersion,
    ColumnSet,
};
use ngs_formats::header::{ReferenceSequence, SamHeader};
use ngs_formats::sam;
use tempfile::tempdir;

fn header() -> SamHeader {
    SamHeader::from_references(vec![ReferenceSequence {
        name: b"chr1".to_vec(),
        length: 1_000_000,
    }])
}

fn records(n: usize) -> Vec<ngs_formats::record::AlignmentRecord> {
    (0..n)
        .map(|i| {
            let line = format!(
                "read{i}\t0\tchr1\t{}\t60\t10M\t*\t0\t0\tACGTACGTAC\tIIIIIIIIII",
                100 + i * 7
            );
            sam::parse_record(line.as_bytes(), 1).unwrap()
        })
        .collect()
}

/// Audit finding #2: `Baix::load` trusted the entry count in the header
/// and computed `vec![0u8; n * 16]` — a corrupt count of `u64::MAX`
/// was a multiply-overflow / capacity-overflow panic (and any large
/// count was an attacker-chosen allocation). The count must be validated
/// against the actual file size first.
#[test]
fn baix_implausible_entry_count_is_typed_error() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("bomb.baix");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ngs_bamx::baix::MAGIC);
    bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // absurd entry count
    std::fs::write(&path, &bytes).unwrap();
    assert!(Baix::load(&path).is_err());

    // A merely-huge (allocatable but bogus) count is equally rejected.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&ngs_bamx::baix::MAGIC);
    bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(Baix::load(&path).is_err());
}

/// ISSUE 2 example case: a BAIX file cut inside its fixed header.
#[test]
fn baix_truncated_header_is_typed_error() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("cut.baix");
    for cut in 0..13 {
        std::fs::write(&path, &b"BAIX\x01\x02\x00\x00\x00\x00\x00\x00\x00"[..cut]).unwrap();
        assert!(Baix::load(&path).is_err(), "cut at {cut}");
    }
}

/// A BAIX whose entry array stops short of the count in its header.
#[test]
fn baix_truncated_body_is_typed_error() {
    let dir = tempdir().unwrap();
    let bamx = dir.path().join("t.bamx");
    let baix = dir.path().join("t.baix");
    write_bamx_file(&bamx, &header(), &records(8), BamxCompression::Plain).unwrap();
    Baix::build(&BamxFile::open(&bamx).unwrap()).unwrap().save(&baix).unwrap();
    let good = std::fs::read(&baix).unwrap();
    for cut in [good.len() - 1, good.len() - 15, 14] {
        std::fs::write(&baix, &good[..cut]).unwrap();
        assert!(Baix::load(&baix).is_err(), "cut at {cut}");
    }
}

/// Audit finding #3: a BGZF-bodied BAMX whose record-count trailer claims
/// records but whose block area is empty made `read_raw_range` index
/// `block_offsets[0]` on an empty table — an index-out-of-bounds panic.
/// (ISSUE 2's "record length pointing past EOF" class.)
#[test]
fn bgzf_trailer_past_empty_body_is_typed_error() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("t.bamx");
    // Start from a valid *empty* plain shard, then lie twice: flag the
    // body as BGZF (byte 5) and claim one record in the trailer.
    write_bamx_file(&path, &header(), &[], BamxCompression::Plain).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[5] = 1; // BamxCompression::Bgzf
    let n = bytes.len();
    bytes[n - 8..].copy_from_slice(&1u64.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let f = match BamxFile::open(&path) {
        Ok(f) => f,
        Err(_) => return, // rejecting at open is equally acceptable
    };
    assert!(f.read_record(0).is_err());
    assert!(f.positions().is_err());
    assert!(Baix::build(&f).is_err());
}

/// A plain-body trailer that disagrees with the body size (the classic
/// "record count pointing past EOF") stays a typed error.
#[test]
fn plain_trailer_body_mismatch_is_typed_error() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("t.bamx");
    write_bamx_file(&path, &header(), &records(4), BamxCompression::Plain).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 8..].copy_from_slice(&1_000_000u64.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(BamxFile::open(&path).is_err());
}

/// A BAMX prologue length pointing past EOF must be rejected by bounds
/// arithmetic, not by attempting the implied multi-gigabyte read.
#[test]
fn bamx_prologue_past_eof_is_typed_error() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("t.bamx");
    write_bamx_file(&path, &header(), &records(4), BamxCompression::Plain).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(BamxFile::open(&path).is_err());
}

fn write_v2(dir: &std::path::Path, n: usize) -> std::path::PathBuf {
    let path = dir.join("t2.bamx");
    write_bamx_file_versioned(&path, &header(), &records(n), BamxCompression::Plain, BamxVersion::V2)
        .unwrap();
    path
}

/// Every prefix truncation of a v2 shard must be a typed error: the
/// trailer/footer geometry accounts for the file size exactly, so no cut
/// can look complete.
#[test]
fn bamx_v2_truncations_are_typed_errors() {
    let dir = tempdir().unwrap();
    let path = write_v2(dir.path(), 30);
    let good = std::fs::read(&path).unwrap();
    let cut_path = dir.path().join("cut.bamx");
    for cut in 0..good.len() {
        std::fs::write(&cut_path, &good[..cut]).unwrap();
        assert!(BamxFile::open(&cut_path).is_err(), "cut at {cut}");
    }
}

/// Single-byte corruption sweep over a v2 shard: open, full decode, the
/// positions projection, and index construction must return `Ok`/`Err`,
/// never panic. Flips inside the raw column streams may decode into
/// different records (the same unchecksummed-region caveat as a plain v1
/// body — manifest CRCs catch it in managed repositories).
#[test]
fn bamx_v2_single_byte_flips_never_panic() {
    let dir = tempdir().unwrap();
    let path = write_v2(dir.path(), 12);
    let good = std::fs::read(&path).unwrap();
    let bad_path = dir.path().join("bad2.bamx");
    for pos in 0..good.len() {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        std::fs::write(&bad_path, &bad).unwrap();
        if let Ok(f) = BamxFile::open(&bad_path) {
            let _ = f.read_range(0, f.len());
            let _ = f.read_range_projected(0, f.len(), ColumnSet::POSITIONS);
            let _ = f.positions();
            let _ = Baix::build(&f);
        }
    }
}

/// A v2 records-per-block of zero or past the cap is rejected by
/// arithmetic before any block allocation.
#[test]
fn bamx_v2_implausible_block_size_is_typed_error() {
    let dir = tempdir().unwrap();
    let path = write_v2(dir.path(), 8);
    let good = std::fs::read(&path).unwrap();
    // records_per_block lives right after magic(5)+flags(1)+plen(4)+
    // prologue+layout(12).
    let plen = u32::from_le_bytes([good[6], good[7], good[8], good[9]]) as usize;
    let rpb_at = 10 + plen + 12;
    for bogus in [0u32, u32::MAX, (1 << 20) + 1] {
        let mut bad = good.clone();
        bad[rpb_at..rpb_at + 4].copy_from_slice(&bogus.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(BamxFile::open(&path).is_err(), "rpb {bogus}");
    }
}

/// A v2 trailer whose record count disagrees with the per-block counts
/// (the v2 shape of "record count pointing past EOF") stays typed.
#[test]
fn bamx_v2_trailer_count_mismatch_is_typed_error() {
    let dir = tempdir().unwrap();
    let path = write_v2(dir.path(), 20);
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 8..].copy_from_slice(&1_000_000u64.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(BamxFile::open(&path).is_err());
}

/// Flipping any byte of the v2 footer index (block offsets, counts,
/// stream lengths) is caught by the footer CRC at open time.
#[test]
fn bamx_v2_footer_flips_rejected_at_open() {
    let dir = tempdir().unwrap();
    let path = write_v2(dir.path(), 40);
    let good = std::fs::read(&path).unwrap();
    let n = good.len();
    let footer_off =
        u64::from_le_bytes(good[n - 16..n - 8].try_into().unwrap()) as usize;
    let bad_path = dir.path().join("bad.bamx");
    for pos in footer_off..n - 28 {
        let mut bad = good.clone();
        bad[pos] ^= 0x01;
        std::fs::write(&bad_path, &bad).unwrap();
        assert!(BamxFile::open(&bad_path).is_err(), "footer flip at {pos}");
    }
}

/// Single-byte corruption sweep across a whole small shard: open and full
/// decode must return `Ok` or `Err`, never panic. (Flips in record bodies
/// may decode "successfully" into different records — that is fine; the
/// property under test is panic-freedom plus bounded allocation.)
#[test]
fn bamx_single_byte_flips_never_panic() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("t.bamx");
    write_bamx_file(&path, &header(), &records(6), BamxCompression::Plain).unwrap();
    let good = std::fs::read(&path).unwrap();
    let bad_path = dir.path().join("bad.bamx");
    for pos in 0..good.len() {
        let mut bad = good.clone();
        bad[pos] ^= 0xFF;
        std::fs::write(&bad_path, &bad).unwrap();
        if let Ok(f) = BamxFile::open(&bad_path) {
            let _ = f.read_range(0, f.len());
            let _ = f.positions();
        }
    }
}
