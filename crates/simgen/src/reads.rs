//! Paired-end read simulation: Illumina-HiSeq-shaped 90 bp pairs with
//! base errors, occasional indels, Phred quality profiles, and the common
//! optional tags — the statistical shape of the paper's mouse WGS data.

use ngs_formats::cigar::{Cigar, CigarOp};
use ngs_formats::flags::Flags;
use ngs_formats::record::AlignmentRecord;
use ngs_formats::seq::reverse_complement;
use ngs_formats::tags::{Tag, TagValue};

use crate::reference::Genome;
use crate::rng::Rng;

/// Read-simulation parameters (defaults mirror the paper's dataset:
/// Illumina HiSeq 2000, paired-end, 90 bp).
#[derive(Debug, Clone)]
pub struct ReadProfile {
    /// Read length in bases.
    pub read_len: usize,
    /// Mean outer distance between mates.
    pub mean_insert: f64,
    /// Standard deviation of the insert size.
    pub insert_sd: f64,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// Probability a read carries an indel (1–3 bp).
    pub indel_rate: f64,
    /// Probability a read is soft-clipped at one end.
    pub softclip_rate: f64,
    /// Fraction of reads left unmapped.
    pub unmapped_rate: f64,
    /// Probability a mapped pair is followed by a PCR-duplicate pair:
    /// same alignment signature (positions, strands, CIGARs), a fresh
    /// QNAME, and re-rolled base qualities — honest markdup input.
    pub duplicate_rate: f64,
    /// Read-group name written in the `RG` tag.
    pub read_group: String,
}

impl Default for ReadProfile {
    fn default() -> Self {
        ReadProfile {
            read_len: 90,
            mean_insert: 300.0,
            insert_sd: 30.0,
            error_rate: 0.005,
            indel_rate: 0.02,
            softclip_rate: 0.03,
            unmapped_rate: 0.01,
            duplicate_rate: 0.0,
            read_group: "sim1".to_string(),
        }
    }
}

/// Simulates paired-end reads over a genome.
pub struct ReadSimulator<'g> {
    genome: &'g Genome,
    profile: ReadProfile,
    rng: Rng,
    next_pair: u64,
    pending: std::collections::VecDeque<[AlignmentRecord; 2]>,
}

impl<'g> ReadSimulator<'g> {
    /// Creates a simulator with its own RNG stream.
    pub fn new(genome: &'g Genome, profile: ReadProfile, seed: u64) -> Self {
        ReadSimulator {
            genome,
            profile,
            rng: Rng::seed_from_u64(seed),
            next_pair: 0,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// Generates the next read *pair* (two records).
    pub fn next_pair(&mut self) -> [AlignmentRecord; 2] {
        if let Some(dup) = self.pending.pop_front() {
            return dup;
        }
        let pair_id = self.next_pair;
        self.next_pair += 1;
        let qname = format!("sim.{:09}", pair_id).into_bytes();

        if self.rng.chance(self.profile.unmapped_rate) {
            return self.unmapped_pair(qname);
        }

        let rl = self.profile.read_len as u64;
        let insert = (self.profile.mean_insert + self.profile.insert_sd * self.rng.normal())
            .max(rl as f64 * 1.1) as u64;
        let (chrom, start1) = self.genome.sample_position(&mut self.rng, insert.max(rl));
        let start2 = (start1 + insert).saturating_sub(rl);
        let chrom_name = self.genome.references[chrom].name.clone();
        let chrom_len = self.genome.references[chrom].length;
        let start2 = start2.min(chrom_len.saturating_sub(rl));

        let mut r1 = self.mapped_read(&qname, chrom, &chrom_name, start1);
        let mut r2 = self.mapped_read(&qname, chrom, &chrom_name, start2);

        // Pair bookkeeping: forward/reverse, mate fields, TLEN.
        r1.flag |= Flags::PAIRED | Flags::PROPER_PAIR | Flags::FIRST_IN_PAIR | Flags::MATE_REVERSE;
        r2.flag |= Flags::PAIRED | Flags::PROPER_PAIR | Flags::SECOND_IN_PAIR | Flags::REVERSE;
        r2.seq = reverse_complement(&r2.seq);
        r2.qual.reverse();
        r1.rnext = b"=".to_vec();
        r2.rnext = b"=".to_vec();
        r1.pnext = r2.pos;
        r2.pnext = r1.pos;
        let tlen = (r2.end0().unwrap_or(r2.pos) - r1.start0().unwrap_or(0)).max(0);
        r1.tlen = tlen;
        r2.tlen = -tlen;

        // Duplicate injection. The `> 0.0` guard keeps the RNG stream
        // of every existing seeded fixture byte-identical: a zero rate
        // must not consume a draw.
        if self.profile.duplicate_rate > 0.0 && self.rng.chance(self.profile.duplicate_rate) {
            let dup = self.duplicate_of(&[r1.clone(), r2.clone()]);
            self.pending.push_back(dup);
        }
        [r1, r2]
    }

    /// A PCR-duplicate of `pair`: identical alignment signature (RNAME,
    /// POS, CIGAR, strand, mate fields), a fresh QNAME in the normal
    /// sequence, and independently re-rolled base qualities so
    /// best-of-group selection has real work to do.
    fn duplicate_of(&mut self, pair: &[AlignmentRecord; 2]) -> [AlignmentRecord; 2] {
        let pair_id = self.next_pair;
        self.next_pair += 1;
        let qname = format!("sim.{:09}", pair_id).into_bytes();
        let mut dup = pair.clone();
        for rec in dup.iter_mut() {
            rec.qname = qname.clone();
            let rl = rec.qual.len();
            let mut qual = Vec::with_capacity(rl);
            for i in 0..rl {
                let base_q = 37.0 - 12.0 * (i as f64 / rl as f64).powi(2);
                let q = (base_q + 2.5 * self.rng.normal()).clamp(2.0, 41.0);
                qual.push(q as u8);
            }
            rec.qual = qual;
        }
        dup
    }

    /// Generates `n` single records (pairs flattened in order).
    pub fn take_records(&mut self, n: usize) -> Vec<AlignmentRecord> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let [a, b] = self.next_pair();
            out.push(a);
            if out.len() < n {
                out.push(b);
            }
        }
        out
    }

    fn unmapped_pair(&mut self, qname: Vec<u8>) -> [AlignmentRecord; 2] {
        let mk = |rng: &mut Rng, read_len: usize, flag_extra: Flags, qname: &[u8]| {
            let seq: Vec<u8> =
                (0..read_len).map(|_| *rng.pick(b"ACGT")).collect();
            let qual: Vec<u8> = (0..read_len).map(|_| rng.range_u64(2, 35) as u8).collect();
            AlignmentRecord {
                qname: qname.to_vec(),
                flag: Flags::PAIRED | Flags::UNMAPPED | Flags::MATE_UNMAPPED | flag_extra,
                rname: b"*".to_vec(),
                pos: 0,
                mapq: 0,
                cigar: Cigar::empty(),
                rnext: b"*".to_vec(),
                pnext: 0,
                tlen: 0,
                seq,
                qual,
                tags: Vec::new(),
            }
        };
        let r1 = mk(&mut self.rng, self.profile.read_len, Flags::FIRST_IN_PAIR, &qname);
        let r2 = mk(&mut self.rng, self.profile.read_len, Flags::SECOND_IN_PAIR, &qname);
        [r1, r2]
    }

    fn mapped_read(
        &mut self,
        qname: &[u8],
        chrom: usize,
        chrom_name: &[u8],
        pos0: u64,
    ) -> AlignmentRecord {
        let rl = self.profile.read_len;
        let mut seq = self.genome.bases(chrom, pos0, rl);
        let mut nm = 0i64;

        // Substitution errors.
        for b in seq.iter_mut() {
            if self.rng.chance(self.profile.error_rate) {
                let orig = *b;
                loop {
                    let cand = *self.rng.pick(b"ACGT");
                    if cand != orig {
                        *b = cand;
                        break;
                    }
                }
                nm += 1;
            }
        }

        // CIGAR synthesis: mostly 90M, sometimes with an indel or clip.
        let cigar = if self.rng.chance(self.profile.indel_rate) && rl > 20 {
            let ind_len = self.rng.range_u64(1, 4) as u32;
            let split = self.rng.range_u64(5, rl as u64 - 5) as u32;
            nm += ind_len as i64;
            if self.rng.chance(0.5) {
                // Insertion: read has extra bases vs reference.
                let right = rl as u32 - split - ind_len.min(rl as u32 - split - 1);
                let mid = rl as u32 - split - right;
                Cigar(vec![
                    (split, CigarOp::Match),
                    (mid, CigarOp::Insertion),
                    (right, CigarOp::Match),
                ])
            } else {
                Cigar(vec![
                    (split, CigarOp::Match),
                    (ind_len, CigarOp::Deletion),
                    (rl as u32 - split, CigarOp::Match),
                ])
            }
        } else if self.rng.chance(self.profile.softclip_rate) && rl > 20 {
            let clip = self.rng.range_u64(2, 12) as u32;
            Cigar(vec![(clip, CigarOp::SoftClip), (rl as u32 - clip, CigarOp::Match)])
        } else {
            Cigar(vec![(rl as u32, CigarOp::Match)])
        };

        // HiSeq-like quality profile: high plateau, sagging tail.
        let mut qual = Vec::with_capacity(rl);
        for i in 0..rl {
            let base_q = 37.0 - 12.0 * (i as f64 / rl as f64).powi(2);
            let q = (base_q + 2.5 * self.rng.normal()).clamp(2.0, 41.0);
            qual.push(q as u8);
        }

        let mapq = if self.rng.chance(0.05) {
            self.rng.range_u64(0, 30) as u8
        } else {
            self.rng.range_u64(40, 61) as u8
        };

        let tags = vec![
            Tag::new(*b"NM", TagValue::Int(nm)),
            Tag::new(*b"RG", TagValue::String(self.profile.read_group.clone().into_bytes())),
            Tag::new(*b"AS", TagValue::Int((rl as i64 - 2 * nm).max(0))),
        ];

        AlignmentRecord {
            qname: qname.to_vec(),
            flag: Flags::default(),
            rname: chrom_name.to_vec(),
            pos: pos0 as i64 + 1,
            mapq,
            cigar,
            rnext: b"*".to_vec(),
            pnext: 0,
            tlen: 0,
            seq,
            qual,
            tags,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> Genome {
        Genome::mm9_scaled(200_000, 3, 42)
    }

    #[test]
    fn pairs_share_name_and_flags() {
        let g = genome();
        let mut sim = ReadSimulator::new(&g, ReadProfile::default(), 1);
        for _ in 0..50 {
            let [r1, r2] = sim.next_pair();
            assert_eq!(r1.qname, r2.qname);
            assert!(r1.flag.is_paired() && r2.flag.is_paired());
            if !r1.is_unmapped() {
                assert!(r1.flag.contains(Flags::FIRST_IN_PAIR));
                assert!(r2.flag.contains(Flags::SECOND_IN_PAIR));
                assert!(r2.flag.is_reverse());
                assert_eq!(r1.pnext, r2.pos);
                assert_eq!(r1.tlen, -r2.tlen);
            }
        }
    }

    #[test]
    fn reads_have_profile_length() {
        let g = genome();
        let mut sim = ReadSimulator::new(&g, ReadProfile::default(), 2);
        for rec in sim.take_records(200) {
            assert_eq!(rec.seq.len(), 90);
            assert_eq!(rec.qual.len(), 90);
            if !rec.is_unmapped() {
                assert_eq!(rec.cigar.query_len(), 90);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = genome();
        let a = ReadSimulator::new(&g, ReadProfile::default(), 7).take_records(100);
        let b = ReadSimulator::new(&g, ReadProfile::default(), 7).take_records(100);
        assert_eq!(a, b);
        let c = ReadSimulator::new(&g, ReadProfile::default(), 8).take_records(100);
        assert_ne!(a, c);
    }

    #[test]
    fn unmapped_fraction_reasonable() {
        let g = genome();
        let profile = ReadProfile { unmapped_rate: 0.2, ..Default::default() };
        let mut sim = ReadSimulator::new(&g, profile, 3);
        let records = sim.take_records(2000);
        let unmapped = records.iter().filter(|r| r.is_unmapped()).count();
        // 20% of pairs → ~400 of 2000, generous tolerance.
        assert!((200..700).contains(&unmapped), "unmapped {unmapped}");
    }

    #[test]
    fn mapped_reads_respect_chromosome_bounds() {
        let g = genome();
        let mut sim = ReadSimulator::new(&g, ReadProfile::default(), 4);
        for rec in sim.take_records(500) {
            if let (Some(_), Some(end)) = (rec.start0(), rec.end0()) {
                let chrom = g.references.iter().find(|r| r.name == rec.rname).unwrap();
                assert!(end as u64 <= chrom.length + 12, "read end {end} beyond {}", chrom.length);
            }
        }
    }

    #[test]
    fn nm_tag_present_on_mapped() {
        let g = genome();
        let mut sim = ReadSimulator::new(&g, ReadProfile::default(), 5);
        let recs = sim.take_records(100);
        for r in recs.iter().filter(|r| !r.is_unmapped()) {
            assert!(matches!(r.tag(*b"NM"), Some(TagValue::Int(_))));
            assert!(matches!(r.tag(*b"RG"), Some(TagValue::String(_))));
        }
    }

    #[test]
    fn properly_paired_invariants() {
        // RNEXT/PNEXT/TLEN and the FLAG mate bits must be mutually
        // consistent — collation and markdup fixtures rely on it.
        let g = genome();
        let mut sim = ReadSimulator::new(&g, ReadProfile::default(), 11);
        for _ in 0..200 {
            let [r1, r2] = sim.next_pair();
            if r1.is_unmapped() {
                continue;
            }
            assert_eq!(r1.rnext, b"=");
            assert_eq!(r2.rnext, b"=");
            assert_eq!(r1.pnext, r2.pos);
            assert_eq!(r2.pnext, r1.pos);
            assert_eq!(r1.rname, r2.rname, "mates map to one reference");
            assert!(r1.flag.contains(Flags::PROPER_PAIR));
            assert!(r2.flag.contains(Flags::PROPER_PAIR));
            assert!(!r1.flag.is_reverse() && r2.flag.is_reverse(), "FR orientation");
            assert!(r1.flag.contains(Flags::MATE_REVERSE));
            assert!(!r2.flag.contains(Flags::MATE_REVERSE));
            assert!(r1.tlen >= 0 && r1.tlen == -r2.tlen);
        }
    }

    #[test]
    fn duplicate_rate_injects_signature_sharing_pairs() {
        let g = genome();
        let profile = ReadProfile {
            duplicate_rate: 0.3,
            unmapped_rate: 0.0,
            ..Default::default()
        };
        let mut sim = ReadSimulator::new(&g, profile, 12);
        let mut pairs = Vec::new();
        for _ in 0..600 {
            pairs.push(sim.next_pair());
        }
        // A duplicate pair follows its original with the same alignment
        // signature under a fresh name.
        let mut dups = 0;
        for w in pairs.windows(2) {
            let ([a1, a2], [b1, b2]) = (&w[0], &w[1]);
            if a1.pos == b1.pos
                && a2.pos == b2.pos
                && a1.rname == b1.rname
                && a1.cigar == b1.cigar
                && a2.cigar == b2.cigar
                && a1.qname != b1.qname
            {
                dups += 1;
                assert_eq!(a1.flag, b1.flag);
                assert_eq!(a2.flag, b2.flag);
                assert_eq!(a1.tlen, b1.tlen);
            }
        }
        // ~30% of 600 ≈ 180, generous tolerance.
        assert!((90..320).contains(&dups), "duplicate pairs {dups}");
        // QNAMEs stay unique across the stream.
        let mut names: Vec<_> = pairs.iter().map(|[r1, _]| r1.qname.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), pairs.len());
    }

    #[test]
    fn duplicate_knob_is_deterministic() {
        let g = genome();
        let profile = ReadProfile { duplicate_rate: 0.25, ..Default::default() };
        let a = ReadSimulator::new(&g, profile.clone(), 13).take_records(400);
        let b = ReadSimulator::new(&g, profile, 13).take_records(400);
        assert_eq!(a, b);
    }

    #[test]
    fn bam_encodable() {
        // Every simulated record must survive the BAM codec.
        let g = genome();
        let header = g.header();
        let mut sim = ReadSimulator::new(&g, ReadProfile::default(), 6);
        let mut buf = Vec::new();
        for rec in sim.take_records(300) {
            buf.clear();
            ngs_formats::bam::encode_record(&rec, &header, &mut buf).unwrap();
            let back = ngs_formats::bam::decode_record(&buf[4..], &header).unwrap();
            assert_eq!(back, rec);
        }
    }
}
