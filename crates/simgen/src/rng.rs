//! Deterministic PRNG (xoshiro256++ seeded via splitmix64).
//!
//! Implemented from scratch so generated datasets are reproducible
//! bit-for-bit across runs and platforms, independent of any external
//! crate's stream evolution.

/// splitmix64 step, used for seeding.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` (Lemire's unbiased method).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection path for exact uniformity.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        lo + self.next_below(hi - lo)
    }

    /// Uniform value in `[lo, hi)` for i64 intervals.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(hi > lo);
        lo + self.next_below((hi - lo) as u64) as i64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// adequate for workload generation).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Poisson sample (Knuth for small λ, normal approximation above 64).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let v = lambda + lambda.sqrt() * self.normal();
            return v.max(0.0).round() as u64;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Samples one element of `choices` uniformly.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        &choices[self.next_below(choices.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.next_below(17);
            assert!(v < 17);
            let w = r.range_i64(-5, 5);
            assert!((-5..5).contains(&w));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut r = Rng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn poisson_mean_close() {
        let mut r = Rng::seed_from_u64(5);
        for lambda in [0.5, 4.0, 40.0, 120.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda {lambda}, mean {mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn pick_covers_all() {
        let mut r = Rng::seed_from_u64(3);
        let choices = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&choices) - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
