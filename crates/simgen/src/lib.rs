//! # ngs-simgen
//!
//! Deterministic synthetic NGS dataset generation, substituting for the
//! paper's proprietary 37–117 GB mouse WGS data (Illumina HiSeq 2000,
//! 90 bp paired-end, BWA-aligned to mm9):
//!
//! * [`rng`] — from-scratch xoshiro256++ so datasets are bit-for-bit
//!   reproducible;
//! * [`mod@reference`] — mm9-shaped synthetic genomes with position-keyed
//!   base synthesis (no whole-chromosome materialization);
//! * [`reads`] — paired-end read simulation (errors, indels, soft clips,
//!   HiSeq-like quality decay, NM/RG/AS tags);
//! * [`dataset`] — SAM/BAM dataset writers with target sizes and
//!   coordinate sorting.
//!
//! The converter and statistics experiments are throughput-bound on
//! record count and field sizes, not biological content, so these
//! datasets preserve every performance-relevant property of the paper's
//! inputs (see DESIGN.md §2).

pub mod dataset;
pub mod reads;
pub mod reference;
pub mod rng;

pub use dataset::{write_sam_of_size, Dataset, DatasetSpec};
pub use reads::{ReadProfile, ReadSimulator};
pub use reference::Genome;
pub use rng::Rng;
