//! Synthetic reference genomes.
//!
//! Substitutes for the mouse reference (mm9) the paper aligned against:
//! a deterministic, mm9-*shaped* chromosome table (scaled lengths, same
//! naming) plus base-level sequence synthesis when FASTA output is
//! needed.

use ngs_formats::header::{ReferenceSequence, SamHeader};

use crate::rng::Rng;

/// A synthetic genome: named chromosomes with deterministic sequences.
#[derive(Debug, Clone)]
pub struct Genome {
    /// Chromosome dictionary in file order.
    pub references: Vec<ReferenceSequence>,
    /// Seed from which chromosome sequences are derived.
    pub seed: u64,
}

/// Relative chromosome sizes of mm9 (chr1..chr19, chrX, chrY), used to
/// shape scaled-down genomes.
const MM9_PROPORTIONS: [(&str, f64); 21] = [
    ("chr1", 1.000), ("chr2", 0.920), ("chr3", 0.810), ("chr4", 0.789),
    ("chr5", 0.769), ("chr6", 0.757), ("chr7", 0.773), ("chr8", 0.665),
    ("chr9", 0.631), ("chr10", 0.661), ("chr11", 0.622), ("chr12", 0.614),
    ("chr13", 0.610), ("chr14", 0.633), ("chr15", 0.527), ("chr16", 0.497),
    ("chr17", 0.483), ("chr18", 0.461), ("chr19", 0.311), ("chrX", 0.846),
    ("chrY", 0.081),
];

impl Genome {
    /// Builds an mm9-shaped genome whose largest chromosome has
    /// `chr1_len` bases and which contains the first `n_chroms`
    /// chromosomes of the mm9 table.
    pub fn mm9_scaled(chr1_len: u64, n_chroms: usize, seed: u64) -> Self {
        let n = n_chroms.clamp(1, MM9_PROPORTIONS.len());
        let references = MM9_PROPORTIONS[..n]
            .iter()
            .map(|&(name, frac)| ReferenceSequence {
                name: name.as_bytes().to_vec(),
                length: ((chr1_len as f64 * frac) as u64).max(1_000),
            })
            .collect();
        Genome { references, seed }
    }

    /// A single-chromosome genome (the paper's chr1-restricted datasets).
    pub fn single(name: &str, length: u64, seed: u64) -> Self {
        Genome {
            references: vec![ReferenceSequence { name: name.as_bytes().to_vec(), length }],
            seed,
        }
    }

    /// The SAM header for this genome.
    pub fn header(&self) -> SamHeader {
        SamHeader::from_references(self.references.clone())
    }

    /// Total genome length.
    pub fn total_len(&self) -> u64 {
        self.references.iter().map(|r| r.length).sum()
    }

    /// Deterministically synthesizes `len` reference bases starting at
    /// 0-based `pos` on chromosome `chrom_idx`. The same coordinates
    /// always yield the same bases, without materializing whole
    /// chromosomes.
    pub fn bases(&self, chrom_idx: usize, pos: u64, len: usize) -> Vec<u8> {
        const ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];
        let mut out = Vec::with_capacity(len);
        for i in 0..len as u64 {
            // Position-keyed hash → base. splitmix-style mixing keeps
            // neighbouring positions decorrelated.
            let mut key = self
                .seed
                .wrapping_add((chrom_idx as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F))
                .wrapping_add((pos + i).wrapping_mul(0xE703_7ED1_A0B4_28DB));
            key = (key ^ (key >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            key = (key ^ (key >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            key ^= key >> 31;
            out.push(ALPHABET[(key & 3) as usize]);
        }
        out
    }

    /// Writes the genome as FASTA (wrapped at 70 columns).
    pub fn to_fasta(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (idx, r) in self.references.iter().enumerate() {
            let seq = self.bases(idx, 0, r.length as usize);
            ngs_formats::fasta::write_sequence(&r.name, &seq, 70, &mut out);
        }
        out
    }

    /// Samples a random mapped position able to hold a read of
    /// `read_len`, returning `(chrom_idx, pos0)`. Longer chromosomes are
    /// proportionally likelier, matching uniform whole-genome coverage.
    pub fn sample_position(&self, rng: &mut Rng, read_len: u64) -> (usize, u64) {
        let eligible: Vec<u64> =
            self.references.iter().map(|r| r.length.saturating_sub(read_len)).collect();
        let total: u64 = eligible.iter().sum();
        assert!(total > 0, "genome too small for read length {read_len}");
        let mut target = rng.next_below(total);
        for (idx, &span) in eligible.iter().enumerate() {
            if target < span {
                return (idx, target);
            }
            target -= span;
        }
        unreachable!("target within total span")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm9_shape() {
        let g = Genome::mm9_scaled(1_000_000, 21, 1);
        assert_eq!(g.references.len(), 21);
        assert_eq!(g.references[0].name, b"chr1");
        assert_eq!(g.references[0].length, 1_000_000);
        assert!(g.references[20].length < g.references[0].length / 10); // chrY tiny
        assert!(g.header().text.contains("@SQ\tSN:chr1\tLN:1000000"));
    }

    #[test]
    fn bases_deterministic_and_consistent_across_windows() {
        let g = Genome::single("chr1", 10_000, 7);
        let a = g.bases(0, 100, 50);
        let b = g.bases(0, 100, 50);
        assert_eq!(a, b);
        // Overlapping windows agree on shared positions.
        let c = g.bases(0, 120, 50);
        assert_eq!(&a[20..], &c[..30]);
        // Different seeds differ.
        let g2 = Genome::single("chr1", 10_000, 8);
        assert_ne!(g.bases(0, 0, 100), g2.bases(0, 0, 100));
    }

    #[test]
    fn bases_are_nucleotides() {
        let g = Genome::single("chr1", 1000, 3);
        assert!(g.bases(0, 0, 1000).iter().all(|b| b"ACGT".contains(b)));
    }

    #[test]
    fn fasta_roundtrip() {
        let g = Genome::mm9_scaled(5_000, 2, 9);
        let fasta = g.to_fasta();
        let mut reader = ngs_formats::fasta::FastaReader::new(std::io::Cursor::new(&fasta));
        let e1 = reader.read_entry().unwrap().unwrap();
        assert_eq!(e1.name, b"chr1");
        assert_eq!(e1.seq.len(), 5_000);
        assert_eq!(e1.seq, g.bases(0, 0, 5_000));
    }

    #[test]
    fn sample_position_fits_reads() {
        let g = Genome::mm9_scaled(100_000, 3, 5);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let (chrom, pos) = g.sample_position(&mut rng, 90);
            assert!(pos + 90 <= g.references[chrom].length);
        }
    }

    #[test]
    fn sample_position_covers_chromosomes() {
        let g = Genome::mm9_scaled(50_000, 4, 5);
        let mut rng = Rng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..2000 {
            let (chrom, _) = g.sample_position(&mut rng, 90);
            seen[chrom] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
