//! Dataset materialization: write simulated reads as SAM or BAM files of
//! a target size or record count.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use ngs_formats::error::Result;
use ngs_formats::record::AlignmentRecord;
use ngs_formats::sam;

use crate::reads::{ReadProfile, ReadSimulator};
use crate::reference::Genome;

/// Specification of a generated dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Genome shape: chr1 length in bases.
    pub chr1_len: u64,
    /// Number of chromosomes (mm9-shaped).
    pub n_chroms: usize,
    /// Number of alignment records (not pairs).
    pub n_records: usize,
    /// Read profile.
    pub profile: ReadProfile,
    /// Master seed.
    pub seed: u64,
    /// Sort records by coordinate (the paper's BAM inputs are sorted).
    pub coordinate_sorted: bool,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            chr1_len: 2_000_000,
            n_chroms: 3,
            n_records: 10_000,
            profile: ReadProfile::default(),
            seed: 20140519, // IPPS 2014
            coordinate_sorted: false,
        }
    }
}

/// A fully materialized in-memory dataset.
pub struct Dataset {
    /// The genome used for simulation.
    pub genome: Genome,
    /// All alignment records.
    pub records: Vec<AlignmentRecord>,
}

impl Dataset {
    /// Generates the dataset described by `spec`.
    pub fn generate(spec: &DatasetSpec) -> Self {
        let genome = Genome::mm9_scaled(spec.chr1_len, spec.n_chroms, spec.seed);
        let mut sim = ReadSimulator::new(&genome, spec.profile.clone(), spec.seed ^ 0xDA7A);
        let mut records = sim.take_records(spec.n_records);
        if spec.coordinate_sorted {
            let header = genome.header();
            records.sort_by_key(|r| {
                let tid = header
                    .reference_id(&r.rname)
                    .map(|i| i as i64)
                    .unwrap_or(i64::MAX); // unmapped last
                (tid, r.pos)
            });
        }
        Dataset { genome, records }
    }

    /// The SAM header.
    pub fn header(&self) -> ngs_formats::header::SamHeader {
        self.genome.header()
    }

    /// Serializes to SAM text (header + records).
    pub fn to_sam_bytes(&self) -> Vec<u8> {
        let header = self.header();
        let mut out = Vec::new();
        out.extend_from_slice(header.text.as_bytes());
        for r in &self.records {
            sam::write_record(r, &mut out);
            out.push(b'\n');
        }
        out
    }

    /// Serializes to BAM bytes (BGZF-compressed).
    pub fn to_bam_bytes(&self) -> Result<Vec<u8>> {
        let mut w = ngs_formats::bam::BamWriter::new(Vec::new(), self.header())?;
        for r in &self.records {
            w.write_record(r)?;
        }
        w.finish()
    }

    /// Writes a SAM file.
    pub fn write_sam(&self, path: impl AsRef<Path>) -> Result<u64> {
        let mut f = BufWriter::new(File::create(path)?);
        let bytes = self.to_sam_bytes();
        f.write_all(&bytes)?;
        f.flush()?;
        Ok(bytes.len() as u64)
    }

    /// Writes a BAM file.
    pub fn write_bam(&self, path: impl AsRef<Path>) -> Result<u64> {
        let bytes = self.to_bam_bytes()?;
        std::fs::write(path, &bytes)?;
        Ok(bytes.len() as u64)
    }
}

/// Generates a SAM file of approximately `target_bytes` (within one
/// record's tolerance), returning the record count used.
pub fn write_sam_of_size(
    path: impl AsRef<Path>,
    spec: &DatasetSpec,
    target_bytes: u64,
) -> Result<usize> {
    // Estimate bytes/record from a small probe, then generate.
    let probe_spec = DatasetSpec { n_records: 200.min(spec.n_records.max(2)), ..spec.clone() };
    let probe = Dataset::generate(&probe_spec);
    let probe_bytes = probe.to_sam_bytes().len() as u64;
    let header_bytes = probe.header().text.len() as u64;
    let per_record = (probe_bytes - header_bytes).max(1) / probe_spec.n_records as u64;
    let n_records = ((target_bytes.saturating_sub(header_bytes)) / per_record.max(1)) as usize;
    let spec = DatasetSpec { n_records: n_records.max(2), ..spec.clone() };
    let ds = Dataset::generate(&spec);
    ds.write_sam(path)?;
    Ok(spec.n_records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use tempfile::tempdir;

    #[test]
    fn sam_file_parses_back() {
        let spec = DatasetSpec { n_records: 500, ..Default::default() };
        let ds = Dataset::generate(&spec);
        let bytes = ds.to_sam_bytes();
        let mut reader = sam::SamReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.header().reference_count(), 3);
        let records: Vec<_> = reader.records().map(|r| r.unwrap()).collect();
        assert_eq!(records, ds.records);
    }

    #[test]
    fn bam_file_parses_back() {
        let spec = DatasetSpec { n_records: 300, ..Default::default() };
        let ds = Dataset::generate(&spec);
        let bytes = ds.to_bam_bytes().unwrap();
        let mut reader = ngs_formats::bam::BamReader::new(Cursor::new(&bytes)).unwrap();
        let records: Vec<_> = reader.records().map(|r| r.unwrap()).collect();
        assert_eq!(records, ds.records);
    }

    #[test]
    fn coordinate_sorting() {
        let spec =
            DatasetSpec { n_records: 400, coordinate_sorted: true, ..Default::default() };
        let ds = Dataset::generate(&spec);
        let header = ds.header();
        let keys: Vec<(i64, i64)> = ds
            .records
            .iter()
            .map(|r| {
                let tid =
                    header.reference_id(&r.rname).map(|i| i as i64).unwrap_or(i64::MAX);
                (tid, r.pos)
            })
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec { n_records: 100, ..Default::default() };
        let a = Dataset::generate(&spec);
        let b = Dataset::generate(&spec);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn sized_sam_close_to_target() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("sized.sam");
        let spec = DatasetSpec::default();
        let target = 512 * 1024;
        write_sam_of_size(&path, &spec, target).unwrap();
        let actual = std::fs::metadata(&path).unwrap().len();
        let ratio = actual as f64 / target as f64;
        assert!((0.8..1.2).contains(&ratio), "actual {actual} vs target {target}");
    }

    #[test]
    fn files_written_to_disk() {
        let dir = tempdir().unwrap();
        let spec = DatasetSpec { n_records: 100, ..Default::default() };
        let ds = Dataset::generate(&spec);
        let sam_len = ds.write_sam(dir.path().join("d.sam")).unwrap();
        let bam_len = ds.write_bam(dir.path().join("d.bam")).unwrap();
        assert_eq!(std::fs::metadata(dir.path().join("d.sam")).unwrap().len(), sam_len);
        assert_eq!(std::fs::metadata(dir.path().join("d.bam")).unwrap().len(), bam_len);
        assert!(bam_len < sam_len, "BAM must compress smaller than SAM text");
    }
}
