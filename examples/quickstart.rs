//! Quickstart: generate a synthetic dataset, convert it in parallel, and
//! inspect the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ngs_repro::core_api::{Framework, FrameworkConfig, TargetFormat};
use ngs_simgen::{Dataset, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_root = std::env::temp_dir().join("ngs-quickstart");
    std::fs::create_dir_all(&out_root)?;

    // 1. A synthetic paired-end dataset (stand-in for BWA output).
    let spec = DatasetSpec { n_records: 20_000, ..Default::default() };
    let dataset = Dataset::generate(&spec);
    let sam_path = out_root.join("reads.sam");
    let sam_bytes = dataset.write_sam(&sam_path)?;
    println!("generated {} records ({} KiB of SAM) at {}", spec.n_records, sam_bytes / 1024, sam_path.display());

    // 2. Parallel conversion: SAM → BED with 4 ranks.
    let fw = Framework::new(FrameworkConfig::with_ranks(4));
    let report = fw.convert_sam(&sam_path, TargetFormat::Bed, out_root.join("bed"))?;

    println!(
        "converted {} of {} records into {} part files in {:?}",
        report.records_out(),
        report.records_in(),
        report.outputs.len(),
        report.convert_time,
    );
    for stats in &report.per_rank {
        println!(
            "  rank {}: {:>6} records in, {:>6} out, {:>8} bytes written, {:?}",
            stats.rank, stats.records_in, stats.records_out, stats.bytes_out, stats.elapsed
        );
    }
    println!("outputs:");
    for path in &report.outputs {
        println!("  {}", path.display());
    }
    Ok(())
}
