//! Format zoo: one dataset converted into every supported target format,
//! with output sizes — the paper's cross-tool interoperability pitch.
//!
//! ```text
//! cargo run --release --example format_zoo
//! ```

use ngs_repro::core_api::{Framework, FrameworkConfig, TargetFormat};
use ngs_simgen::{Dataset, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_root = std::env::temp_dir().join("ngs-format-zoo");
    std::fs::create_dir_all(&out_root)?;

    let ds = Dataset::generate(&DatasetSpec { n_records: 10_000, ..Default::default() });
    let sam_path = out_root.join("reads.sam");
    let input_size = ds.write_sam(&sam_path)?;
    println!("input: {} ({} KiB of SAM)\n", sam_path.display(), input_size / 1024);
    println!("{:<10}{:>10}{:>14}{:>12}", "target", "records", "total bytes", "vs input");

    let fw = Framework::new(FrameworkConfig::with_ranks(2));
    for target in TargetFormat::ALL {
        let out_dir = out_root.join(target.extension());
        let report = fw.convert_sam(&sam_path, target, &out_dir)?;
        let bytes = report.bytes_out();
        println!(
            "{:<10}{:>10}{:>14}{:>11.0}%",
            target.extension(),
            report.records_out(),
            bytes,
            bytes as f64 / input_size as f64 * 100.0
        );
    }

    println!("\n(each target wrote one file per rank under {})", out_root.display());
    Ok(())
}
