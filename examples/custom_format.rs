//! Extending the framework: the paper's programmability claim is that a
//! user adds a new target format by writing only a conversion function —
//! "all the low-level details such as parallelization, concurrency
//! control, resource management ... are abstracted within the runtime".
//!
//! This example defines a custom tab-separated "insert-size report"
//! format as one `RecordConverter` impl and runs it through the same
//! parallel runtime as the built-in formats, then does a small
//! distributed analysis directly on the rank communicator.
//!
//! ```text
//! cargo run --release --example custom_format
//! ```

use ngs_cluster::run_ranks;
use ngs_converter::{ConvertConfig, MemSource, RecordConverter, SamConverter, TargetFormat};
use ngs_formats::record::AlignmentRecord;
use ngs_formats::header::SamHeader;
use ngs_simgen::{Dataset, DatasetSpec};

/// The user program: one line per properly-paired first-of-pair record,
/// reporting name, chromosome and observed insert size.
struct InsertSizeReport;

impl RecordConverter for InsertSizeReport {
    fn convert(&self, rec: &AlignmentRecord, out: &mut Vec<u8>) -> bool {
        use ngs_formats::Flags;
        if !rec.flag.contains(Flags::PROPER_PAIR)
            || !rec.flag.contains(Flags::FIRST_IN_PAIR)
            || rec.tlen <= 0
        {
            return false;
        }
        out.extend_from_slice(&rec.qname);
        out.push(b'\t');
        out.extend_from_slice(&rec.rname);
        out.push(b'\t');
        out.extend_from_slice(rec.tlen.to_string().as_bytes());
        out.push(b'\n');
        true
    }

    fn prologue(&self, _header: &SamHeader, out: &mut Vec<u8>) {
        out.extend_from_slice(b"#name\tchrom\tinsert_size\n");
    }

    fn extension(&self) -> &'static str {
        "tsv"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_root = std::env::temp_dir().join("ngs-custom-format");
    std::fs::create_dir_all(&out_root)?;

    let ds = Dataset::generate(&DatasetSpec { n_records: 20_000, ..Default::default() });
    let source = MemSource::new(ds.to_sam_bytes());

    // The runtime pieces are public: partition with Algorithm 1, then run
    // the custom user program per rank. (The built-in TargetFormat path
    // wraps exactly this; here we drive it manually to show the seam.)
    let config = ConvertConfig::with_ranks(4);
    let conv = SamConverter::new(config.clone());
    // Built-in target for comparison:
    let bed = conv.convert_source(&source, TargetFormat::Bed, &out_root.join("bed"), "x")?;
    println!("built-in BED: {} records", bed.records_out());

    // Custom target through the same partition + scan machinery:
    let (header, _) = ngs_converter::runtime::scan_sam_header(&source)?;
    let ranges = ngs_converter::partition_serial(&source, 4, Default::default())?;
    let reporter = InsertSizeReport;
    let mut outputs = Vec::new();
    for (rank, &range) in ranges.iter().enumerate() {
        let mut buf = Vec::new();
        if rank == 0 {
            reporter.prologue(&header, &mut buf);
        }
        let mut emitted = 0u64;
        ngs_converter::scan::scan_records(&source, range, 1 << 20, |rec| {
            if reporter.convert(&rec, &mut buf) {
                emitted += 1;
            }
            Ok(())
        })?;
        let path = out_root.join(format!("inserts.part{rank:04}.{}", reporter.extension()));
        std::fs::write(&path, &buf)?;
        outputs.push((path, emitted));
    }
    let total: u64 = outputs.iter().map(|(_, n)| n).sum();
    println!("custom insert-size report: {total} rows across {} parts", outputs.len());

    // And a custom distributed analysis over the communicator: the mean
    // insert size via one allreduce, exactly how the paper's statistics
    // module is built.
    let records = std::sync::Arc::new(ds.records);
    let sums = run_ranks(4, |comm| {
        let n = records.len();
        let lo = comm.rank() * n / comm.size();
        let hi = (comm.rank() + 1) * n / comm.size();
        let (mut local_sum, mut local_n) = (0f64, 0u64);
        for rec in &records[lo..hi] {
            if rec.tlen > 0 {
                local_sum += rec.tlen as f64;
                local_n += 1;
            }
        }
        let sum = comm.all_reduce_sum_f64(1, local_sum);
        let count = comm.all_reduce_sum_u64(2, local_n);
        sum / count as f64
    });
    println!("distributed mean insert size: {:.1} bp (every rank agrees: {})",
        sums[0],
        sums.iter().all(|&v| (v - sums[0]).abs() < 1e-9)
    );
    Ok(())
}
