//! Partial conversion: preprocess a BAM once, then extract and convert
//! only a chromosome region — the paper's "avoid blindly converting the
//! entire dataset" use case (Section III-B).
//!
//! ```text
//! cargo run --release --example region_extract
//! ```

use ngs_bamx::{Baix, BamxFile, BinnedIndex, Region};
use ngs_repro::core_api::{ConvertConfig, TargetFormat};
use ngs_converter::BamConverter;
use ngs_simgen::{Dataset, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_root = std::env::temp_dir().join("ngs-region-extract");
    std::fs::create_dir_all(&out_root)?;

    // A coordinate-sorted BAM (as the paper's 117 GB input was).
    let spec = DatasetSpec {
        n_records: 25_000,
        coordinate_sorted: true,
        ..Default::default()
    };
    let ds = Dataset::generate(&spec);
    let bam_path = out_root.join("sample.bam");
    ds.write_bam(&bam_path)?;

    // One-time sequential preprocessing: BAM -> BAMX + BAIX.
    let conv = BamConverter::new(ConvertConfig::with_ranks(4));
    let prep = conv.preprocess(&bam_path, out_root.join("bamx"))?;
    println!(
        "preprocessed {} records into {} (+ index) in {:?}; fixed record size {} bytes",
        prep.records,
        prep.bamx_path.display(),
        prep.elapsed,
        prep.layout.record_size(),
    );

    // Partial conversion of the first half of chr1 into SAM.
    let shard = BamxFile::open(&prep.bamx_path)?;
    let chr1_len = shard.header().references[0].length as i64;
    // An interior region: reads that start before it but span into it are
    // found by the binned overlap index, not by BAIX start search.
    let region = Region::new("chr1", chr1_len / 4, 3 * chr1_len / 4)?;
    println!("extracting region {region}");

    let report = conv.convert_partial(
        &prep.bamx_path,
        &prep.baix_path,
        &region,
        TargetFormat::Sam,
        out_root.join("partial"),
    )?;
    println!(
        "partial conversion: {} records in region ({}% of dataset) across {} rank files in {:?}",
        report.records_in(),
        report.records_in() * 100 / prep.records.max(1),
        report.outputs.len(),
        report.convert_time,
    );

    // Full conversion for comparison.
    let full = conv.convert_bamx(&prep.bamx_path, TargetFormat::Sam, out_root.join("full"))?;
    println!(
        "full conversion:    {} records in {:?}",
        full.records_in(),
        full.convert_time
    );

    // Bonus: the binned (overlap) index — the paper's future-work item —
    // also finds reads *spanning into* the region, not just starting
    // inside it.
    let baix = Baix::load(&prep.baix_path)?;
    let ref_id = region.resolve(shard.header())?;
    let start_hits = baix.shard_indices(baix.locate(ref_id, &region)).len();
    let binned = BinnedIndex::build(&shard)?;
    let overlap_hits = binned.query(ref_id, &region).len();
    println!(
        "index comparison for {region}: {start_hits} reads start inside (BAIX), \
         {overlap_hits} reads overlap (binned index)"
    );
    Ok(())
}
