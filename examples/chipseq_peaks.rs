//! ChIP-seq-style peak analysis: the end-to-end scenario motivating the
//! paper's statistical module — convert alignments to a coverage
//! histogram, denoise it with NL-means, and pick an enrichment threshold
//! by FDR.
//!
//! ```text
//! cargo run --release --example chipseq_peaks
//! ```

use ngs_repro::core_api::{Framework, FrameworkConfig};
use ngs_stats::{build_fdr_input, fdr_curve, peaks, NlMeansParams, NullModel};
use ngs_simgen::{Dataset, DatasetSpec, ReadProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_root = std::env::temp_dir().join("ngs-chipseq");
    std::fs::create_dir_all(&out_root)?;

    // Simulated "enriched" sample: ordinary WGS reads plus focal pileups
    // (we fake enrichment by sampling extra reads from a single
    // chromosome region via a narrow genome).
    let spec = DatasetSpec {
        n_records: 30_000,
        n_chroms: 2,
        chr1_len: 500_000,
        profile: ReadProfile::default(),
        ..Default::default()
    };
    let mut ds = Dataset::generate(&spec);
    // Inject focal enrichment: relocate 15% of mapped chr1 reads into ten
    // narrow peak loci, mimicking transcription-factor binding pileups.
    let peaks: Vec<i64> = (0..10).map(|k| 30_000 + k * 45_000).collect();
    let mut moved = 0usize;
    for (idx, rec) in ds.records.iter_mut().enumerate() {
        if rec.rname == b"chr1" && !rec.is_unmapped() && idx % 7 == 0 {
            let peak = peaks[moved % peaks.len()];
            rec.pos = peak + (idx as i64 % 400);
            moved += 1;
        }
    }
    let sam_path = out_root.join("chip.sam");
    ds.write_sam(&sam_path)?;
    println!("relocated {moved} reads into {} peak loci", peaks.len());

    let mut config = FrameworkConfig::with_ranks(4);
    config.bin_size = 25; // the paper's bin width
    config.nlmeans = NlMeansParams { search_radius: 20, half_patch: 15, sigma: 10.0 };
    let fw = Framework::new(config);

    // 1. Parallel conversion feeding the histogram (SAM → BEDGRAPH).
    let histogram = fw.histogram_from_sam(&sam_path)?;
    println!(
        "histogram: {} bins of {} bp, mean coverage {:.2}",
        histogram.len(),
        histogram.bin_size,
        histogram.mean()
    );

    // 2. Parallel NL-means denoising.
    let denoised = fw.denoise(&histogram);
    let before_var = variance(&histogram.bins);
    let after_var = variance(&denoised);
    println!("denoising variance: {before_var:.3} -> {after_var:.3}");

    // 3. FDR threshold selection over B simulation rounds.
    let rounds = 20;
    let input = build_fdr_input(denoised.clone(), rounds, NullModel::Poisson, 42);
    let thresholds: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
    let curve = fdr_curve(&input, &thresholds, 4);
    println!("FDR curve (threshold -> estimated FDR):");
    let mut chosen = None;
    for (t, fdr) in &curve {
        println!("  p_t = {t:>4.1}  FDR = {fdr:.4}");
        if chosen.is_none() && fdr.is_finite() && *fdr <= 0.10 {
            chosen = Some(*t);
        }
    }

    // 4. Peak calling at the chosen threshold: selected bins merged into
    //    regions and emitted as BED.
    if let Some(p_t) = chosen {
        let mut peak_hist = histogram.clone();
        peak_hist.bins = denoised.clone();
        let selected = peaks::select_bins(&input, p_t);
        let called = peaks::call_peaks(&peak_hist, &selected, 2);
        println!(
            "threshold p_t = {p_t}: {} bins selected, {} peaks called",
            selected.iter().filter(|&&s| s).count(),
            called.len()
        );
        for p in called.iter().take(5) {
            println!(
                "  {}:{}-{}  summit {:.1}  ({} bins)",
                String::from_utf8_lossy(&p.chrom),
                p.start,
                p.end,
                p.summit_value,
                p.bins
            );
        }
        let bed = peaks::peaks_to_bed(&peak_hist, &input, p_t, 2);
        let bed_path = out_root.join("peaks.bed");
        std::fs::write(&bed_path, &bed)?;
        println!("peak BED written to {}", bed_path.display());
    } else {
        println!("no threshold reached FDR <= 0.10 on this synthetic sample");
    }
    Ok(())
}

fn variance(v: &[f64]) -> f64 {
    let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
    v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len().max(1) as f64
}

