//! Minimal in-tree `crossbeam` shim.
//!
//! Provides the `crossbeam::channel` MPMC subset the workspace uses
//! (bounded/unbounded channels, cloneable senders *and* receivers,
//! non-blocking `try_send` for admission control), implemented over
//! `std::sync::{Mutex, Condvar}`. Built because the environment cannot
//! fetch crates.io (see DESIGN.md §4).

pub mod channel;
