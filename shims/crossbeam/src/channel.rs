//! Multi-producer multi-consumer channels with crossbeam's API shape.
//!
//! A channel is a `Mutex<VecDeque>` plus two condvars (`not_empty`,
//! `not_full`) and sender/receiver reference counts so each side
//! observes disconnection of the other. Cloned receivers share one
//! queue, so N workers pulling from one receiver form a work queue —
//! exactly the pattern `ngs-query`'s worker pool needs.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers have been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// The channel is empty and all senders have been dropped.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `None` means unbounded.
    capacity: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of a channel. Clone freely; the channel disconnects
/// for receivers when the last sender drops.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Clone freely; all clones drain the
/// same queue (MPMC work-queue semantics).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a channel holding at most `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap))
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .shared
                        .not_full
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Sends without blocking; rejects with [`TrySendError::Full`] when
    /// the channel is at capacity (the admission-control path).
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or every sender
    /// is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns all currently queued messages.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            // Wake blocked receivers so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        let last = st.receivers == 0;
        drop(st);
        if last {
            // Wake blocked senders so they observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_reports_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(matches!(tx.try_send(1), Err(TrySendError::Disconnected(1))));
        assert!(tx.send(2).is_err());
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        let h = {
            let rx2 = rx2;
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            })
        };
        while let Ok(v) = rx.recv() {
            seen.push(v);
        }
        seen.extend(h.join().unwrap());
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_on_empty_channel() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_stress_delivers_every_message_once() {
        let (tx, rx) = bounded(8);
        let mut producers = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut all = Vec::new();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..4).flat_map(|p| (0..250).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
