//! Minimal in-tree `rayon` shim.
//!
//! The build environment cannot fetch crates.io, so the workspace
//! vendors an API-compatible subset of rayon (see DESIGN.md §4). This
//! is **not** a work-stealing pool: each consuming operation splits its
//! input into one contiguous range per available core and runs them on
//! `std::thread::scope` threads. For the coarse-grained block/chunk
//! parallelism this repo uses (BGZF block codecs, flagstat chunks,
//! NL-means tiles) that matches rayon's performance shape; there is no
//! global pool to configure and no nested-parallelism balancing.
//!
//! Supported surface (exactly what the workspace calls):
//! `slice.par_iter()`, `slice.par_chunks(n)`, `slice.par_chunks_mut(n)`,
//! `slice.par_sort()`, `slice.par_sort_by(cmp)`, adapter chains of
//! `.map(..)` / `.enumerate(..)` ending in `.collect()`, `.for_each(..)`
//! or `.reduce(..)`, and `rayon::current_num_threads()`.

use std::cmp::Ordering;

/// Everything needed for `use rayon::prelude::*` call sites.
pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..len` into at most `current_num_threads()` contiguous
/// ranges of near-equal size.
fn split_ranges(len: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(len);
    let chunk = len.div_ceil(threads);
    (0..len).step_by(chunk).map(|lo| lo..(lo + chunk).min(len)).collect()
}

/// A data source whose items can be produced by index, concurrently
/// from multiple threads.
///
/// # Safety
///
/// Implementations may hand out aliasing-sensitive items (e.g. `&mut`
/// chunks); callers must request each index at most once per run.
pub unsafe trait IndexedSource: Sync + Sized {
    /// The per-index item type.
    type Item: Send;
    /// Total number of items.
    fn length(&self) -> usize;
    /// Produces the item at `i`.
    ///
    /// # Safety
    ///
    /// `i < self.length()`, and each `i` is requested at most once
    /// across all threads of one consuming operation.
    unsafe fn item(&self, i: usize) -> Self::Item;
}

/// Consuming operations available on every parallel iterator.
pub trait ParallelIterator: IndexedSource {
    /// Maps each item through `f` (lazily; runs at the consumer).
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { src: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { src: self }
    }

    /// Runs `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let ranges = split_ranges(self.length());
        let src = &self;
        let f = &f;
        std::thread::scope(|s| {
            for r in ranges {
                s.spawn(move || {
                    for i in r {
                        // SAFETY: ranges are disjoint, i < length.
                        f(unsafe { src.item(i) });
                    }
                });
            }
        });
    }

    /// Collects all items, preserving input order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        let ranges = split_ranges(self.length());
        let src = &self;
        let parts: Vec<Vec<Self::Item>> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    s.spawn(move || {
                        // SAFETY: ranges are disjoint, i < length.
                        r.map(|i| unsafe { src.item(i) }).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rayon shim worker panicked")).collect()
        });
        let mut out = Vec::with_capacity(self.length());
        for p in parts {
            out.extend(p);
        }
        C::from(out)
    }

    /// Folds each thread's range from `identity()`, then combines the
    /// per-thread results with `op` in input order.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let ranges = split_ranges(self.length());
        let src = &self;
        let identity = &identity;
        let op = &op;
        let parts: Vec<Self::Item> = std::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    s.spawn(move || {
                        let mut acc = identity();
                        for i in r {
                            // SAFETY: ranges are disjoint, i < length.
                            acc = op(acc, unsafe { src.item(i) });
                        }
                        acc
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rayon shim worker panicked")).collect()
        });
        parts.into_iter().fold(identity(), op)
    }
}

impl<S: IndexedSource> ParallelIterator for S {}

/// `.map(f)` adapter.
pub struct Map<S, F> {
    src: S,
    f: F,
}

// SAFETY: forwards the at-most-once index contract to `src`.
unsafe impl<S, R, F> IndexedSource for Map<S, F>
where
    S: IndexedSource,
    R: Send,
    F: Fn(S::Item) -> R + Sync,
{
    type Item = R;
    fn length(&self) -> usize {
        self.src.length()
    }
    unsafe fn item(&self, i: usize) -> R {
        (self.f)(self.src.item(i))
    }
}

/// `.enumerate()` adapter.
pub struct Enumerate<S> {
    src: S,
}

// SAFETY: forwards the at-most-once index contract to `src`.
unsafe impl<S: IndexedSource> IndexedSource for Enumerate<S> {
    type Item = (usize, S::Item);
    fn length(&self) -> usize {
        self.src.length()
    }
    unsafe fn item(&self, i: usize) -> (usize, S::Item) {
        (i, self.src.item(i))
    }
}

/// Borrowed parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

// SAFETY: shared references may be produced any number of times.
unsafe impl<'a, T: Sync> IndexedSource for ParIter<'a, T> {
    type Item = &'a T;
    fn length(&self) -> usize {
        self.slice.len()
    }
    unsafe fn item(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Parallel iterator over `&[T]` in chunks of `size`.
pub struct ParChunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

// SAFETY: shared sub-slices may be produced any number of times.
unsafe impl<'a, T: Sync> IndexedSource for ParChunks<'a, T> {
    type Item = &'a [T];
    fn length(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    unsafe fn item(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        self.slice.get_unchecked(lo..hi)
    }
}

/// Parallel iterator over `&mut [T]` in disjoint mutable chunks.
pub struct ParChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: the raw pointer is only used to construct disjoint `&mut`
// chunks (the IndexedSource contract guarantees each index once).
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

// SAFETY: chunk `i` covers exactly `[i*size, min((i+1)*size, len))`;
// distinct indices yield non-overlapping mutable slices.
unsafe impl<'a, T: Send> IndexedSource for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn length(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    unsafe fn item(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// Parallel operations on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel counterpart of `slice.iter()`.
    fn par_iter(&self) -> ParIter<'_, T>;
    /// Parallel counterpart of `slice.chunks(size)` (`size > 0`).
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunks { slice: self, size }
    }
}

/// Parallel operations on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `slice.chunks_mut(size)` (`size > 0`).
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T>;
    /// Stable parallel sort.
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Stable parallel sort with a comparator.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _marker: std::marker::PhantomData,
        }
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.par_sort_by(T::cmp);
    }

    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let threads = current_num_threads();
        if self.len() < 8192 || threads < 2 {
            self.sort_by(|a, b| compare(a, b));
            return;
        }
        // Sort one contiguous run per core in parallel, then let std's
        // adaptive stable sort merge the pre-sorted runs (it detects
        // ascending runs, so the final pass is the cheap merge phase).
        let run = self.len().div_ceil(threads);
        let compare = &compare;
        std::thread::scope(|s| {
            let mut rest = &mut *self;
            while !rest.is_empty() {
                let take = run.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                s.spawn(move || head.sort_by(|a, b| compare(a, b)));
            }
        });
        self.sort_by(|a, b| compare(a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_enumerate_matches_sequential() {
        let v = vec![5u8; 1000];
        let out: Vec<(usize, u8)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out.len(), 1000);
        assert_eq!(out[42], (42, 5));
        assert_eq!(out[999], (999, 5));
    }

    #[test]
    fn par_chunks_reduce_sums_everything() {
        let v: Vec<u64> = (1..=100_000).collect();
        let total = v
            .par_chunks(1024)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 100_000u64 * 100_001 / 2);
    }

    #[test]
    fn par_chunks_mut_for_each_writes_disjoint_chunks() {
        let mut v = vec![0u32; 4096];
        v.par_chunks_mut(100).enumerate().for_each(|(ci, chunk)| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = (ci * 100 + k) as u32;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut v: Vec<i64> = (0..50_000).map(|i| (i * 2_654_435_761u64 as i64) % 1000).collect();
        let mut expect = v.clone();
        expect.sort();
        v.par_sort();
        assert_eq!(v, expect);
    }

    #[test]
    fn par_sort_by_is_stable() {
        // Pair (key, original index); sort by key only and verify ties
        // keep their original order.
        let mut v: Vec<(u8, usize)> =
            (0..20_000).map(|i| ((i % 7) as u8, i)).collect();
        v.par_sort_by(|a, b| a.0.cmp(&b.0));
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let sum = v.par_chunks(8).map(|c| c.len()).reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 0);
    }
}
