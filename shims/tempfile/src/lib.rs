//! Minimal in-tree `tempfile` shim.
//!
//! Provides the `tempdir()` / [`TempDir`] subset the workspace uses,
//! implemented on `std` only (the build environment cannot reach
//! crates.io; see DESIGN.md §4). Directories are created under
//! `std::env::temp_dir()` with a process-unique name and removed on
//! drop.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory on disk that is deleted (recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    /// `true` once ownership of the path has been released via
    /// [`TempDir::keep`]; suppresses the drop-time delete.
    released: bool,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Releases ownership: the directory is no longer deleted on drop.
    pub fn keep(mut self) -> PathBuf {
        self.released = true;
        self.path.clone()
    }

    /// Deletes the directory now, reporting any I/O error.
    pub fn close(mut self) -> io::Result<()> {
        self.released = true;
        std::fs::remove_dir_all(&self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.released {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

/// Creates a new process-unique temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    tempdir_in(std::env::temp_dir())
}

/// Creates a new temporary directory under `base`.
pub fn tempdir_in<P: AsRef<Path>>(base: P) -> io::Result<TempDir> {
    let pid = std::process::id();
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.as_ref().join(format!(".ngs-tmp-{pid}-{n}"));
        match std::fs::create_dir_all(&path) {
            Ok(()) => return Ok(TempDir { path, released: false }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_created_and_removed_on_drop() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("f.txt"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn two_tempdirs_are_distinct() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn keep_suppresses_deletion() {
        let dir = tempdir().unwrap();
        let path = dir.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
