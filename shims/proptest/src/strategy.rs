//! Value-generation strategies (no shrinking; see crate docs).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { src: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    src: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.src.generate(rng))
    }
}

/// Strategy from a generation closure (used by `prop_compose!`).
pub struct FnStrategy<T, F> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
    /// Wraps `f` as a strategy.
    pub fn new(f: F) -> Self {
        FnStrategy { f, _marker: PhantomData }
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Always generates a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `variants`; must be non-empty.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for `T` (use as `any::<T>()`).
pub struct Any<T>(PhantomData<fn() -> T>);

/// The canonical strategy generating any `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => { $(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+ };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => { $(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                // span == 0 would mean a full u64 domain, which no
                // in-repo strategy uses; `below` needs a non-zero bound.
                (*self.start() as i128 + rng.below(span.max(1)) as i128) as $t
            }
        }
    )+ };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => { $(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+ };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// `[class]{m,n}` regex subset for string strategies.
struct CharClassPattern {
    allowed: Vec<char>,
    min_len: usize,
    max_len: usize,
}

/// Parses the supported pattern subset: one bracketed character class
/// (literals, `a-z` ranges, `\x` escapes, optional `&&[^…]`
/// subtraction) followed by an optional `{m}` / `{m,n}` repetition.
fn parse_pattern(pattern: &str) -> CharClassPattern {
    let bytes: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    assert!(
        bytes.first() == Some(&'['),
        "unsupported string strategy pattern (want [class]{{m,n}}): {pattern:?}"
    );
    i += 1;
    let mut include: Vec<(char, char)> = Vec::new();
    let mut exclude: Vec<(char, char)> = Vec::new();
    let mut target = &mut include;
    loop {
        match bytes.get(i) {
            None => panic!("unterminated character class in {pattern:?}"),
            Some(']') => {
                i += 1;
                break;
            }
            Some('&') if bytes.get(i + 1) == Some(&'&') => {
                assert!(
                    bytes.get(i + 2) == Some(&'[') && bytes.get(i + 3) == Some(&'^'),
                    "only `&&[^…]` subtraction is supported in {pattern:?}"
                );
                i += 4;
                target = &mut exclude;
                // The subtracted class has its own closing ']'.
                loop {
                    match bytes.get(i) {
                        None => panic!("unterminated subtraction class in {pattern:?}"),
                        Some(']') => {
                            i += 1;
                            break;
                        }
                        _ => {
                            let (item, next) = parse_class_item(&bytes, i, pattern);
                            target.push(item);
                            i = next;
                        }
                    }
                }
                target = &mut include;
            }
            _ => {
                let (item, next) = parse_class_item(&bytes, i, pattern);
                target.push(item);
                i = next;
            }
        }
    }
    let (min_len, max_len) = if bytes.get(i) == Some(&'{') {
        let close = bytes[i..]
            .iter()
            .position(|&c| c == '}')
            .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"))
            + i;
        let body: String = bytes[i + 1..close].iter().collect();
        i = close + 1;
        match body.split_once(',') {
            Some((m, n)) => (
                m.trim().parse().expect("bad repetition min"),
                n.trim().parse().expect("bad repetition max"),
            ),
            None => {
                let m: usize = body.trim().parse().expect("bad repetition count");
                (m, m)
            }
        }
    } else {
        (1, 1)
    };
    assert!(i == bytes.len(), "trailing pattern syntax unsupported: {pattern:?}");
    assert!(min_len <= max_len, "bad repetition bounds in {pattern:?}");
    let allowed: Vec<char> = (0u8..128)
        .map(char::from)
        .filter(|&c| {
            include.iter().any(|&(lo, hi)| (lo..=hi).contains(&c))
                && !exclude.iter().any(|&(lo, hi)| (lo..=hi).contains(&c))
        })
        .collect();
    assert!(!allowed.is_empty(), "character class matches nothing: {pattern:?}");
    CharClassPattern { allowed, min_len, max_len }
}

/// Parses one class item (literal, escape, or `a-b` range) starting at
/// `i`; returns the covered range and the next index.
fn parse_class_item(bytes: &[char], i: usize, pattern: &str) -> ((char, char), usize) {
    let read = |k: usize| -> (char, usize) {
        match bytes.get(k) {
            Some('\\') => {
                let c = *bytes
                    .get(k + 1)
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                let c = match c {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                (c, k + 2)
            }
            Some(&c) => (c, k + 1),
            None => panic!("unterminated character class in {pattern:?}"),
        }
    };
    let (lo, next) = read(i);
    if bytes.get(next) == Some(&'-') && bytes.get(next + 1).is_some_and(|&c| c != ']') {
        let (hi, next2) = read(next + 1);
        assert!(lo <= hi, "inverted range {lo:?}-{hi:?} in {pattern:?}");
        ((lo, hi), next2)
    } else {
        ((lo, lo), next)
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let p = parse_pattern(self);
        let len = p.min_len + rng.below((p.max_len - p.min_len + 1) as u64) as usize;
        (0..len)
            .map(|_| p.allowed[rng.below(p.allowed.len() as u64) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn range_strategies_cover_bounds() {
        let mut r = rng();
        let s = 3u8..6;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn inclusive_range_hits_upper_bound() {
        let mut r = rng();
        let s = 0u8..=1;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn negative_ranges_work() {
        let mut r = rng();
        let s = -5i64..5;
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn pattern_with_ranges_and_literals() {
        let p = parse_pattern("[a-cxZ]{2,3}");
        let set: String = p.allowed.iter().collect();
        assert_eq!(set, "Zabcx");
        assert_eq!((p.min_len, p.max_len), (2, 3));
    }

    #[test]
    fn pattern_subtraction_removes_chars() {
        // Printable ASCII minus backslash — the pattern the format
        // tests use for SAM tag strings.
        let p = parse_pattern("[ -~&&[^\\\\]]{0,20}");
        assert!(p.allowed.contains(&'A'));
        assert!(!p.allowed.contains(&'\\'));
        assert_eq!((p.min_len, p.max_len), (0, 20));
    }

    #[test]
    fn pattern_punctuation_ranges() {
        // The qname pattern from the format tests.
        let p = parse_pattern("[!-?A-~]{1,40}");
        assert!(p.allowed.contains(&'!'));
        assert!(p.allowed.contains(&'?'));
        assert!(!p.allowed.contains(&'@')); // between the two ranges
        assert!(p.allowed.contains(&'~'));
    }

    #[test]
    fn union_only_emits_variant_values() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(9u8).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..60 {
            seen.insert(u.generate(&mut r));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 9]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let s = (0u8..4, 10u16..12);
        for _ in 0..50 {
            let (a, b) = s.generate(&mut r);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }
}
