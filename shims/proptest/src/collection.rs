//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec-size range");
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_elements_in_range() {
        let mut rng = TestRng::deterministic("collection-tests");
        let s = vec(1u32..5, 2..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 7);
            assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }
    }
}
