//! Minimal in-tree `proptest` shim.
//!
//! The build environment cannot fetch crates.io, so the workspace
//! vendors a small property-testing harness exposing the proptest API
//! subset its tests use (see DESIGN.md §4): the `proptest!`,
//! `prop_compose!`, `prop_oneof!`, `prop_assert*!` and `prop_assume!`
//! macros, `Strategy` with `prop_map`/`boxed`, integer-range and
//! regex-character-class string strategies, `Just`, `any::<T>()`, and
//! `collection::vec`.
//!
//! Differences from real proptest, by design:
//! - **Deterministic**: the RNG is seeded from the test's module path
//!   and name, so every run generates the same cases (CLAUDE.md
//!   requires tests independent of wall-clock and scheduling).
//! - **No shrinking**: a failing case reports its assertion message
//!   immediately instead of minimizing the input first.
//! - String strategies support only `[class]{m,n}` patterns (char
//!   ranges, literals, and one `&&[^…]` subtraction), which covers
//!   every pattern in this repo.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; generate a replacement.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The common imports proptest users expect.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, ProptestConfig, TestCaseError,
    };
}

/// Defines property tests: each `fn` runs `config.cases` deterministic
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(16).max(1024),
                                "proptest '{}': too many prop_assume! rejections",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed (after {} passing cases): {}",
                                stringify!($name), accepted, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Defines a function returning a composed strategy:
/// `fn name()(x in sx, y in sy) -> T { expr }`.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident ()
      ( $($pat:pat in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a `proptest!` body; failure reports the generated
/// case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal (by `PartialEq`), reporting both
/// values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`", left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}", left, right, format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`", left, right,
            )));
        }
    }};
}

/// Filters the current case out (regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..100, b in 0u32..100) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes((a, b) in arb_pair()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, y in 0i64..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0..=3).contains(&y), "y was {y}");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..20) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just_and_map(v in prop_oneof![
            Just(7u64),
            (0u64..3).prop_map(|x| x + 100),
            any::<bool>().prop_map(|b| if b { 1 } else { 2 }),
        ]) {
            prop_assert!(v == 7 || (100..103).contains(&v) || v == 1 || v == 2);
        }

        #[test]
        fn string_pattern_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn string_pattern_subtraction(s in "[ -~&&[^\\\\]]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c) && c != '\\'));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!(v.len() >= 3 && v.len() < 6);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("seed-name");
        let mut b = crate::test_runner::TestRng::deterministic("seed-name");
        let s = crate::collection::vec(any::<u64>(), 0..50);
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
