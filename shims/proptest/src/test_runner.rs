//! Deterministic RNG for case generation.

/// SplitMix64 generator seeded from a test's name, so case sequences
/// are stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from `name` (FNV-1a hash), typically
    /// `module_path!() :: test_name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine for test-case
        // generation (bias < 2^-64 per draw).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("y");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::deterministic("bounds");
        for bound in [1u64, 2, 7, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }
}
