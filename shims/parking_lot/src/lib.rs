//! Minimal in-tree `parking_lot` shim.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns a guard directly, `Condvar::wait` takes the guard
//! by `&mut`). Built because the environment cannot fetch crates.io
//! (see DESIGN.md §4). Poisoned std locks are recovered transparently:
//! these shims, like parking_lot, do not propagate poisoning.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion primitive (poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The `Option` is only `None` transiently
/// while a `Condvar` wait has taken the inner guard.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking;
    /// `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard taken by condvar wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// guarded lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken by condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken by condvar wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock (poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let res = pair.1.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
