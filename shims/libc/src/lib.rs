//! Minimal in-tree `libc` shim.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors tiny API-compatible shims for its external
//! dependencies (see DESIGN.md §4). The CLI only needs `signal(2)` to
//! restore default `SIGPIPE` behaviour; everything else is omitted.

/// C `int`.
#[allow(non_camel_case_types)]
pub type c_int = i32;

/// Signal-handler value as passed to `signal(2)`.
#[allow(non_camel_case_types)]
pub type sighandler_t = usize;

/// Broken-pipe signal number (Linux and macOS both use 13).
pub const SIGPIPE: c_int = 13;

/// Default signal disposition.
pub const SIG_DFL: sighandler_t = 0;

/// Ignore-signal disposition. The CLI ignores `SIGPIPE` so writes to a
/// closed pipe surface as `EPIPE` errors it can turn into a clean,
/// consistent exit instead of an abrupt signal death.
pub const SIG_IGN: sighandler_t = 1;

extern "C" {
    /// Installs `handler` for `signum`; returns the previous handler.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
}

#[cfg(test)]
mod tests {
    #[test]
    fn signal_installs_default_handler() {
        // SIGPIPE/SIG_DFL is exactly the call the CLI makes; it must not
        // crash and must return a previous-handler value.
        unsafe {
            let prev = super::signal(super::SIGPIPE, super::SIG_DFL);
            super::signal(super::SIGPIPE, prev);
        }
    }
}
