//! Minimal in-tree `criterion` shim.
//!
//! The build environment cannot fetch crates.io (see DESIGN.md §4), so
//! this crate keeps the workspace's `[[bench]]` targets compiling and
//! running with the criterion API subset they use: `criterion_group!`/
//! `criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter`. Timing is a
//! plain median-of-samples wall-clock measurement printed to stdout —
//! no statistics engine, plots, or HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench context, one per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report("", id);
        self
    }
}

/// Identifies one benchmark within a group (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        }
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples (or as many as
    /// fit in the measurement-time budget, minimum one).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let budget = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() >= budget {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        let label =
            if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{label:<40} median {median:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
            sorted.len()
        );
    }
}

/// Declares a bench group function compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` passes args; this shim runs
            // everything regardless (filtering is not supported).
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) -> &mut Criterion {
        c.sample_size = 3;
        c.measurement_time = Duration::from_millis(10);
        c.warm_up_time = Duration::from_millis(1);
        c
    }

    #[test]
    fn bench_group_runs_routines() {
        let mut c = Criterion::default();
        let c = quick(&mut c);
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2).measurement_time(Duration::from_millis(5));
            g.warm_up_time(Duration::from_millis(1));
            g.bench_with_input(BenchmarkId::new("x", 1), &41u32, |b, &n| {
                b.iter(|| {
                    calls += 1;
                    n + 1
                })
            });
            g.finish();
        }
        assert!(calls >= 2);
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        quick(&mut c).bench_function("f", |b| b.iter(|| black_box(2 + 2)));
    }
}
