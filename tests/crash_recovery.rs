//! Crash matrix (DESIGN.md §7.5): preprocessing is killed at injected
//! byte offsets of its publication stream, and after every simulated
//! power cut the full recovery contract must hold end to end:
//!
//! 1. the shard repository reopens and `verify()` is clean — the
//!    manifest never references a torn artifact;
//! 2. resumed preprocessing skips manifest-verified shards and rebuilds
//!    only the lost tail, restoring a byte-identical shard set
//!    (MANIFEST included);
//! 3. the query engine serves correct results before the crash, during
//!    the damage (healing through its repairer seam), and after repair.

use std::sync::Arc;

use ngs_bamx::repo::ShardRepo;
use ngs_converter::{BamConverter, ConvertConfig, MemSource, SamxConverter, TargetFormat};
use ngs_fault::{Fault, FaultPlan, FaultyFs};
use ngs_query::{EngineConfig, ManualClock, QueryClass, QueryEngine, QueryKind, QueryOutcome, QueryRequest, RetryPolicy, ShardStore};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

fn dataset(records: usize) -> Dataset {
    Dataset::generate(&DatasetSpec {
        n_records: records,
        n_chroms: 2,
        coordinate_sorted: true,
        seed: 0xC0FFEE,
        ..Default::default()
    })
}

/// Kill multi-rank preprocessing at a sweep of byte offsets; every
/// crashed repository must reopen with a clean manifest, and resume must
/// restore the reference byte set exactly.
#[test]
fn crash_matrix_reopens_clean_and_resumes_byte_identically() {
    let ds = dataset(600);
    let source = MemSource::new(ds.to_sam_bytes());
    let conv = SamxConverter::new(ConvertConfig::with_ranks(3));
    let dir = tempdir().unwrap();

    // Reference run through an instrumented (fault-free) filesystem to
    // learn the publication stream length and snapshot expected bytes.
    let ref_dir = dir.path().join("reference");
    let fs = FaultyFs::new(FaultPlan::none());
    let state = Arc::clone(fs.state());
    let repo = ShardRepo::create_with(&ref_dir, Arc::new(fs)).unwrap();
    conv.preprocess_source_repo(&source, &repo, "x", false).unwrap();
    let total = state.written();

    let mut reference = std::collections::BTreeMap::new();
    for entry in std::fs::read_dir(&ref_dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        reference.insert(name, std::fs::read(&path).unwrap());
    }
    assert!(reference.contains_key("MANIFEST"));
    assert_eq!(reference.len(), 7, "MANIFEST + 3 × (bamx + baix)");

    // Crash points: an even sweep plus tail offsets (rank threads
    // publish concurrently, so only late crashes leave resumable shards).
    let mut offsets: Vec<u64> = (0..6).map(|p| total * p / 6).collect();
    offsets.push(total - total / 64);
    offsets.push(total - 1);

    let mut any_resumed = false;
    for (i, offset) in offsets.into_iter().enumerate() {
        let crash_dir = dir.path().join(format!("crash-{i}"));
        let plan = FaultPlan::new(vec![Fault::CrashAtByte { offset }]);
        let run = ShardRepo::create_with(&crash_dir, Arc::new(FaultyFs::new(plan)))
            .and_then(|repo| conv.preprocess_source_repo(&source, &repo, "x", false));
        assert!(run.is_err(), "crash at byte {offset}/{total} must abort the run");

        // (1) Reopen: the manifest never references a torn artifact.
        let repo = ShardRepo::create(&crash_dir).unwrap();
        let report = repo.verify().unwrap();
        assert!(
            report.is_clean(),
            "crash at byte {offset}: damaged artifacts behind the manifest: {:?}",
            report.damaged
        );
        repo.clean_stray_temps().unwrap();

        // (2) Resume: byte-identical shard set, nothing extra on disk.
        let prep = conv.preprocess_source_repo(&source, &repo, "x", true).unwrap();
        any_resumed |= prep.shards.iter().any(|s| s.resumed);
        for (name, bytes) in &reference {
            let recovered = std::fs::read(crash_dir.join(name))
                .unwrap_or_else(|e| panic!("crash at {offset}: missing {name}: {e}"));
            assert_eq!(&recovered, bytes, "crash at byte {offset}: {name} diverged");
        }
        let mut names: Vec<String> = std::fs::read_dir(&crash_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, reference.keys().cloned().collect::<Vec<_>>());
    }
    assert!(any_resumed, "the tail crash points must exercise the resume path");
}

/// A crash inside the meta-update window: a rank-count change writes
/// `set_meta("ranks", ...)` and dies before rebuilding a single shard,
/// leaving a manifest whose meta matches the *next* run over shards
/// built under the old layout. Resume must detect the inconsistency
/// (meta matches but out-of-range shard entries survive), distrust the
/// whole stem, and rebuild — never serve the stale shard subset.
/// Formerly `samx_converter::review_repro`, committed failing by the
/// PR-4 review.
#[test]
fn crash_in_meta_update_window_rebuilds_instead_of_serving_stale_shards() {
    let ds = dataset(500);
    let src = MemSource::new(ds.to_sam_bytes());
    let dir = tempdir().unwrap();
    let wide = SamxConverter::new(ConvertConfig::with_ranks(4));
    wide.preprocess_source(&src, dir.path(), "x").unwrap();

    // Reference: what an uncrashed 2-rank run over a fresh directory
    // produces (deterministic partitioning → the recovery oracle).
    let ref_dir = dir.path().join("reference");
    let narrow = SamxConverter::new(ConvertConfig::with_ranks(2));
    narrow.preprocess_source(&src, &ref_dir, "x").unwrap();

    // Simulate: a 2-rank run starts, writes set_meta("ranks","2"), then
    // the process dies before any shard is rebuilt/recorded.
    let repo = ShardRepo::open(dir.path()).unwrap();
    repo.set_meta("ranks", "2").unwrap();

    // Restart the 2-rank run with resume=true.
    let prep = narrow.preprocess_source_repo(&src, &repo, "x", true).unwrap();
    assert_eq!(prep.records(), 500, "resume must not serve stale 4-rank shards");
    assert!(prep.shards.iter().all(|s| !s.resumed), "no stale shard may be resumed");

    // The stale 4-rank shards are gone from manifest and disk, and the
    // recovered set is byte-identical to the uncrashed reference.
    let manifest = repo.manifest().unwrap();
    assert!(manifest.entries.keys().all(|n| !n.contains("shard0002")));
    assert!(!dir.path().join("x.shard0003.bamx").exists());
    assert!(repo.verify().unwrap().is_clean());
    for name in ["x.shard0000.bamx", "x.shard0000.baix", "x.shard0001.bamx", "x.shard0001.baix"]
    {
        assert_eq!(
            std::fs::read(dir.path().join(name)).unwrap(),
            std::fs::read(ref_dir.join(name)).unwrap(),
            "{name} diverged from the uncrashed reference"
        );
    }
}

/// The query engine across the whole damage lifecycle: correct answers
/// before the damage, self-healing through the repairer seam while the
/// shard is torn, and normal (cache-hit) service afterwards.
#[test]
fn engine_serves_correctly_before_during_and_after_repair() {
    let ds = dataset(800);
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();

    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let shard_dir = dir.path().join("shards");
    conv.preprocess(&bam_path, &shard_dir).unwrap();
    assert!(ShardRepo::is_managed(&shard_dir), "preprocess publishes through a manifest");

    let request = |out: std::path::PathBuf| QueryRequest {
        dataset: "input".into(),
        region: "chr1:1-50000".into(),
        kind: QueryKind::Convert { format: TargetFormat::Sam, out_dir: out },
        deadline: None,
        class: QueryClass::Interactive,
    };
    let run = |engine: &QueryEngine, out: std::path::PathBuf| {
        let outcome = engine.submit(request(out)).unwrap().wait().outcome;
        match outcome {
            Ok(QueryOutcome::Converted { output, .. }) => std::fs::read(output).unwrap(),
            other => panic!("query failed: {other:?}"),
        }
    };

    // BEFORE: a clean engine answers; this is the byte oracle.
    let clean_engine = QueryEngine::new(&shard_dir, EngineConfig::with_workers(1)).unwrap();
    let baseline = run(&clean_engine, dir.path().join("before"));
    drop(clean_engine);

    // Tear the shard the way a power cut mid-rewrite would.
    let bamx_path = shard_dir.join("input.bamx");
    let pristine = std::fs::read(&bamx_path).unwrap();
    std::fs::write(&bamx_path, &pristine[..pristine.len() / 3]).unwrap();

    // DURING: an engine whose store carries a repairer — re-deriving the
    // shard from the source BAM via resumable preprocessing — must heal
    // on first touch and serve the same bytes as the clean engine.
    let clock = Arc::new(ManualClock::new());
    let store = ShardStore::open_with(&shard_dir, 4, clock.clone(), RetryPolicy::default())
        .unwrap()
        .with_repairer(Box::new({
            let bam_path = bam_path.clone();
            let shard_dir = shard_dir.clone();
            move |_dataset: &str| {
                let repo = ShardRepo::create(&shard_dir)?;
                repo.clean_stray_temps()?;
                let conv = BamConverter::new(ConvertConfig::with_ranks(1));
                conv.preprocess_repo(&bam_path, &repo, true)?;
                Ok(())
            }
        }));
    let engine =
        QueryEngine::with_store(Arc::new(store), EngineConfig::with_workers(1), clock).unwrap();
    let healed = run(&engine, dir.path().join("during"));
    assert_eq!(healed, baseline, "healed engine must serve the clean bytes");

    // The repair really happened: counters say so, and the shard's bytes
    // are restored exactly.
    let stats = engine.stats();
    assert_eq!(stats.repairs, 1, "one structural failure → one repair attempt");
    assert_eq!(stats.repaired, 1, "the repair succeeded");
    assert_eq!(std::fs::read(&bamx_path).unwrap(), pristine);

    // AFTER: the same engine keeps serving (now from cache), and a fresh
    // engine over the repaired directory agrees without any repairer.
    let after = run(&engine, dir.path().join("after"));
    assert_eq!(after, baseline);
    assert_eq!(engine.stats().repairs, 1, "no further repairs needed");
    drop(engine);
    let fresh = QueryEngine::new(&shard_dir, EngineConfig::with_workers(1)).unwrap();
    assert_eq!(run(&fresh, dir.path().join("fresh")), baseline);
}

/// Kill the collate shuffle (DESIGN.md §10) mid-spill at a sweep of
/// byte offsets of its spill publication stream: every spill repository
/// must reopen with a clean manifest (no torn run behind an entry), and
/// a rerun over the surviving directory must produce byte-identical
/// output — deterministic run names republish through the manifest.
#[test]
fn collate_spill_crash_reopens_clean_and_rerun_is_byte_identical() {
    use ngs_collate::{CollateConfig, Collator, Workload};
    use ngs_formats::record::AlignmentRecord;
    use ngs_simgen::ReadProfile;

    let ds = Dataset::generate(&DatasetSpec {
        n_records: 400,
        n_chroms: 2,
        seed: 0xC0FFEE,
        profile: ReadProfile { duplicate_rate: 0.15, ..Default::default() },
        ..Default::default()
    });
    let header = ds.header();
    let dir = tempdir().unwrap();

    let config = |spill_dir: std::path::PathBuf,
                  fs: Option<Arc<dyn ngs_bamx::repo::RepoFs>>| CollateConfig {
        spill_budget: 4_000,
        spill_dir: Some(spill_dir),
        spill_fs: fs,
        ..Default::default()
    };
    let run = |config: CollateConfig| -> Result<Vec<AlignmentRecord>, _> {
        let mut out = Vec::new();
        Collator::new(config)
            .run_records(&header, ds.records.clone(), Workload::MarkDup, &mut |r| {
                out.push(r);
                Ok(())
            })
            .map(|_| out)
    };
    let verify_clean = |spill_dir: &std::path::Path, what: &str| {
        for phase in ["markdup", "restore"] {
            let phase_dir = spill_dir.join(phase);
            if !ShardRepo::is_managed(&phase_dir) {
                continue; // the kill landed before this phase published
            }
            let repo = ShardRepo::open(&phase_dir).unwrap();
            let report = repo.verify().unwrap();
            assert!(report.is_clean(), "{what}: damaged spill runs: {:?}", report.damaged);
            repo.clean_stray_temps().unwrap();
        }
    };

    // Instrumented fault-free reference: spill stream length + oracle.
    let fs = FaultyFs::new(FaultPlan::none());
    let state = Arc::clone(fs.state());
    let expected = run(config(dir.path().join("reference"), Some(Arc::new(fs)))).unwrap();
    let total = state.written();
    assert!(total > 0, "the tiny budget must force spilling");

    let mut offsets: Vec<u64> = (0..6).map(|p| 1 + total * p / 6).collect();
    offsets.push(total - 1);
    offsets.dedup();
    for (i, offset) in offsets.into_iter().enumerate() {
        let spill_dir = dir.path().join(format!("kill-{i}"));
        let plan = FaultPlan::new(vec![Fault::CrashAtByte { offset }]);
        let killed = run(config(spill_dir.clone(), Some(Arc::new(FaultyFs::new(plan)))));
        assert!(killed.is_err(), "kill at byte {offset}/{total} must abort the run");
        verify_clean(&spill_dir, &format!("kill at byte {offset}"));

        let rerun = run(config(spill_dir.clone(), None)).unwrap();
        assert_eq!(rerun, expected, "kill at byte {offset}: rerun diverged");
        verify_clean(&spill_dir, &format!("rerun after byte {offset}"));
    }
}

/// Kill the collate *merge consumer* partway through the merged stream:
/// the merge is read-only over sealed runs, so the spill repositories
/// must stay clean and a rerun over the same directory byte-identical.
#[test]
fn collate_merge_kill_leaves_repo_clean_and_rerun_is_byte_identical() {
    use ngs_collate::{CollateConfig, Collator, SortBy, Workload};
    use ngs_formats::record::AlignmentRecord;

    let ds = dataset(300);
    let header = ds.header();
    let dir = tempdir().unwrap();
    let spill_dir = dir.path().join("spill");
    let config = || CollateConfig {
        spill_budget: 4_000,
        spill_dir: Some(spill_dir.clone()),
        ..Default::default()
    };
    let workload = Workload::Sort(SortBy::Coordinate);

    let mut expected: Vec<AlignmentRecord> = Vec::new();
    Collator::new(config())
        .run_records(&header, ds.records.clone(), workload, &mut |r| {
            expected.push(r);
            Ok(())
        })
        .unwrap();

    for keep in [0u64, 1, 150, 299] {
        let mut emitted = 0u64;
        let killed = Collator::new(config()).run_records(&header, ds.records.clone(), workload, &mut |_| {
            if emitted == keep {
                return Err(ngs_formats::Error::InvalidRecord(
                    "injected merge-consumer kill".into(),
                ));
            }
            emitted += 1;
            Ok(())
        });
        assert!(killed.is_err(), "kill after {keep} records must abort the run");

        let repo = ShardRepo::open(spill_dir.join(workload.stem())).unwrap();
        assert!(repo.verify().unwrap().is_clean(), "merge kill after {keep} records");

        let mut rerun: Vec<AlignmentRecord> = Vec::new();
        Collator::new(config())
            .run_records(&header, ds.records.clone(), workload, &mut |r| {
                rerun.push(r);
                Ok(())
            })
            .unwrap();
        assert_eq!(rerun, expected, "kill after {keep} records: rerun diverged");
    }
}

/// A crash mid-preprocessing of a *single-dataset* (BAM) repository:
/// the repaired repository must be byte-identical to an uncrashed one,
/// and `preprocess_repo` with resume must skip work when nothing is
/// damaged.
#[test]
fn bam_preprocess_crash_then_repair_is_byte_identical() {
    let ds = dataset(500);
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));

    // Reference (instrumented to learn the stream length).
    let ref_dir = dir.path().join("reference");
    let fs = FaultyFs::new(FaultPlan::none());
    let state = Arc::clone(fs.state());
    let repo = ShardRepo::create_with(&ref_dir, Arc::new(fs)).unwrap();
    conv.preprocess_repo(&bam_path, &repo, false).unwrap();
    let total = state.written();

    for frac in [3u64, 2, 1] {
        let crash_dir = dir.path().join(format!("crash-{frac}"));
        let offset = total - total / (frac * 2 + 1);
        let plan = FaultPlan::new(vec![Fault::CrashAtByte { offset }]);
        let run = ShardRepo::create_with(&crash_dir, Arc::new(FaultyFs::new(plan)))
            .and_then(|repo| conv.preprocess_repo(&bam_path, &repo, false));
        assert!(run.is_err());

        let repo = ShardRepo::create(&crash_dir).unwrap();
        assert!(repo.verify().unwrap().is_clean());
        repo.clean_stray_temps().unwrap();
        conv.preprocess_repo(&bam_path, &repo, true).unwrap();

        for name in ["MANIFEST", "input.bamx", "input.baix"] {
            assert_eq!(
                std::fs::read(crash_dir.join(name)).unwrap(),
                std::fs::read(ref_dir.join(name)).unwrap(),
                "crash at byte {offset}: {name} diverged"
            );
        }

        // Resume over an intact repository is a no-op.
        let again = conv.preprocess_repo(&bam_path, &repo, true).unwrap();
        assert!(again.skipped, "verified shards must be skipped, not rebuilt");
    }
}
