//! Property-based tests over the whole format stack: arbitrary records
//! must survive SAM text, BAM binary, and BAMX fixed-width round trips,
//! and Algorithm 1 must tile arbitrary line files for any rank count.

use proptest::prelude::*;

use ngs_bamx::{BamxLayout, Region};
use ngs_converter::{partition_serial, MemSource, Variant};
use ngs_formats::cigar::{Cigar, CigarOp};
use ngs_formats::flags::Flags;
use ngs_formats::header::{ReferenceSequence, SamHeader};
use ngs_formats::record::AlignmentRecord;
use ngs_formats::tags::{Tag, TagValue};

fn header() -> SamHeader {
    SamHeader::from_references(vec![
        ReferenceSequence { name: b"chr1".to_vec(), length: 1 << 28 },
        ReferenceSequence { name: b"chr2".to_vec(), length: 1 << 27 },
    ])
}

prop_compose! {
    fn arb_qname()(s in "[!-?A-~]{1,40}") -> Vec<u8> {
        // "*" alone is the reserved missing-name sentinel.
        if s == "*" { b"star".to_vec() } else { s.into_bytes() }
    }
}

prop_compose! {
    fn arb_seq_qual()(len in 1usize..150, seed in any::<u64>()) -> (Vec<u8>, Vec<u8>) {
        let bases = b"ACGTN";
        let mut s = Vec::with_capacity(len);
        let mut q = Vec::with_capacity(len);
        let mut x = seed | 1;
        for _ in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push(bases[(x >> 33) as usize % bases.len()]);
            q.push(((x >> 40) % 42) as u8);
        }
        (s, q)
    }
}

fn arb_tag() -> impl Strategy<Value = Tag> {
    prop_oneof![
        (any::<i32>()).prop_map(|v| Tag::new(*b"XI", TagValue::Int(v as i64))),
        ("[ -~&&[^\\\\]]{0,20}").prop_map(|s| Tag::new(*b"XZ", TagValue::String(s.into_bytes()))),
        (any::<u8>()).prop_map(|c| Tag::new(*b"XA", TagValue::Char(c.clamp(b'!', b'~')))),
        proptest::collection::vec(any::<i16>(), 0..8)
            .prop_map(|v| Tag::new(*b"XB", TagValue::Array(ngs_formats::TagArray::I16(v)))),
    ]
}

prop_compose! {
    fn arb_record()(
        qname in arb_qname(),
        mapped in any::<bool>(),
        chrom in 0usize..2,
        pos in 1i64..100_000_000,
        mapq in 0u8..=254,
        flag_bits in 0u16..0x800,
        (seq, qual) in arb_seq_qual(),
        tags in proptest::collection::vec(arb_tag(), 0..4),
    ) -> AlignmentRecord {
        let mut flag = Flags(flag_bits & !0x4); // clear unmapped; set below
        let names: [&[u8]; 2] = [b"chr1", b"chr2"];
        if mapped {
            AlignmentRecord {
                qname,
                flag,
                rname: names[chrom].to_vec(),
                pos,
                mapq,
                cigar: Cigar(vec![(seq.len() as u32, CigarOp::Match)]),
                rnext: b"*".to_vec(),
                pnext: 0,
                tlen: 0,
                seq,
                qual,
                tags,
            }
        } else {
            flag |= Flags::UNMAPPED;
            AlignmentRecord {
                qname,
                flag,
                rname: b"*".to_vec(),
                pos: 0,
                mapq: 0,
                cigar: Cigar::empty(),
                rnext: b"*".to_vec(),
                pnext: 0,
                tlen: 0,
                seq,
                qual,
                tags,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sam_text_roundtrip(rec in arb_record()) {
        let mut line = Vec::new();
        ngs_formats::sam::write_record(&rec, &mut line);
        let parsed = ngs_formats::sam::parse_record(&line, 1).unwrap();
        prop_assert_eq!(parsed, rec);
    }

    #[test]
    fn bam_binary_roundtrip(rec in arb_record()) {
        let h = header();
        let mut buf = Vec::new();
        ngs_formats::bam::encode_record(&rec, &h, &mut buf).unwrap();
        let decoded = ngs_formats::bam::decode_record(&buf[4..], &h).unwrap();
        prop_assert_eq!(decoded, rec);
    }

    #[test]
    fn bamx_fixed_width_roundtrip(recs in proptest::collection::vec(arb_record(), 1..20)) {
        let h = header();
        let layout = BamxLayout::compute(&recs).unwrap();
        let mut buf = Vec::new();
        for r in &recs {
            ngs_bamx::record_codec::encode(r, &h, &layout, &mut buf).unwrap();
        }
        prop_assert_eq!(buf.len(), layout.record_size() * recs.len());
        for (i, r) in recs.iter().enumerate() {
            let slice = &buf[i * layout.record_size()..(i + 1) * layout.record_size()];
            let decoded = ngs_bamx::record_codec::decode(slice, &h, &layout).unwrap();
            prop_assert_eq!(&decoded, r);
        }
    }

    #[test]
    fn bamx_v1_v2_roundtrips_agree(
        recs in proptest::collection::vec(arb_record(), 1..40),
        rpb in 1u32..16,
    ) {
        use ngs_bamx::{write_bamx_file_versioned, BamxCompression, BamxFile, BamxVersion};
        let h = header();
        let dir = tempfile::tempdir().unwrap();
        let p1 = dir.path().join("a.bamx");
        let p2 = dir.path().join("b.bamx");
        write_bamx_file_versioned(&p1, &h, &recs, BamxCompression::Plain, BamxVersion::V1)
            .unwrap();
        // Small block sizes force multi-block shards and ragged tails.
        let layout = BamxLayout::compute(&recs).unwrap();
        let sink = std::io::BufWriter::new(std::fs::File::create(&p2).unwrap());
        let mut w = ngs_bamx::V2Writer::with_block_size(sink, h, layout, rpb).unwrap();
        for r in &recs {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();

        let f1 = BamxFile::open(&p1).unwrap();
        let f2 = BamxFile::open(&p2).unwrap();
        prop_assert_eq!(f1.version(), BamxVersion::V1);
        prop_assert_eq!(f2.version(), BamxVersion::V2);
        prop_assert_eq!(f1.len(), f2.len());
        // Both versions decode back to the source records, so any v1
        // shard re-encodes to v2 (and back) without loss.
        let d1 = f1.read_range(0, f1.len()).unwrap();
        let d2 = f2.read_range(0, f2.len()).unwrap();
        prop_assert_eq!(&d1, &recs);
        prop_assert_eq!(&d2, &recs);
        // The position projection agrees with the full decode.
        prop_assert_eq!(f1.positions().unwrap(), f2.positions().unwrap());
    }

    #[test]
    fn partition_tiles_arbitrary_line_files(
        lines in proptest::collection::vec("[a-z]{0,60}", 0..200),
        n in 1usize..24,
        forward in any::<bool>(),
    ) {
        let mut data = Vec::new();
        for l in &lines {
            data.extend_from_slice(l.as_bytes());
            data.push(b'\n');
        }
        let src = MemSource::new(data.clone());
        let variant = if forward { Variant::Forward } else { Variant::Backward };
        let ranges = partition_serial(&src, n, variant).unwrap();
        prop_assert_eq!(ranges.len(), n);
        // Tiling: concatenation reproduces the input.
        let mut rebuilt = Vec::new();
        for &(s, e) in &ranges {
            prop_assert!(s <= e);
            rebuilt.extend_from_slice(&data[s as usize..e as usize]);
        }
        prop_assert_eq!(rebuilt, data.clone());
        // Alignment: every interior boundary sits right after a newline.
        for w in ranges.windows(2) {
            let b = w[0].1;
            prop_assert_eq!(w[1].0, b);
            if b > 0 && b < data.len() as u64 {
                prop_assert_eq!(data[b as usize - 1], b'\n');
            }
        }
    }

    #[test]
    fn region_parse_display_roundtrip(start in 0i64..1_000_000, len in 1i64..1_000_000) {
        let h = header();
        let end = (start + len).min((1 << 28) as i64);
        prop_assume!(end > start);
        let r = Region::new("chr1", start, end).unwrap();
        let reparsed = Region::parse(&r.to_string(), &h).unwrap();
        prop_assert_eq!(reparsed, r);
    }
}
