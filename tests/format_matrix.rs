//! Format matrix: every (input, target) pair the framework advertises
//! must convert the same dataset consistently — same records selected,
//! deterministic bytes, consistent across the three converter instances.

use ngs_converter::{
    BamConverter, ConvertConfig, ConvertReport, SamConverter, SamxConverter, TargetFormat,
};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

fn dataset() -> Dataset {
    Dataset::generate(&DatasetSpec {
        n_records: 400,
        coordinate_sorted: true,
        ..Default::default()
    })
}

fn cat(report: &ConvertReport) -> Vec<u8> {
    let mut outputs = report.outputs.clone();
    outputs.sort();
    let mut all = Vec::new();
    for p in outputs {
        all.extend_from_slice(&std::fs::read(p).unwrap());
    }
    all
}

/// Expected number of emitted target objects per format for this dataset.
fn expected_out(ds: &Dataset, target: TargetFormat) -> u64 {
    let mapped = ds.records.iter().filter(|r| !r.is_unmapped()).count() as u64;
    let with_seq = ds.records.iter().filter(|r| !r.seq.is_empty()).count() as u64;
    let total = ds.records.len() as u64;
    match target {
        TargetFormat::Bed
        | TargetFormat::BedGraph
        | TargetFormat::Wig
        | TargetFormat::Gff => mapped,
        TargetFormat::Fasta | TargetFormat::Fastq => with_seq,
        TargetFormat::Sam | TargetFormat::Bam | TargetFormat::Json | TargetFormat::Yaml => total,
    }
}

#[test]
fn every_target_counts_records_correctly() {
    let ds = dataset();
    let dir = tempdir().unwrap();
    let sam = dir.path().join("in.sam");
    ds.write_sam(&sam).unwrap();
    let conv = SamConverter::new(ConvertConfig::with_ranks(3));
    for target in TargetFormat::ALL {
        let out = dir.path().join(format!("{target:?}"));
        let report = conv.convert_file(&sam, target, &out).unwrap();
        assert_eq!(report.records_in(), 400, "{target:?}");
        assert_eq!(report.records_out(), expected_out(&ds, target), "{target:?}");
    }
}

#[test]
fn all_instances_agree_on_every_line_target() {
    let ds = dataset();
    let dir = tempdir().unwrap();
    let sam = dir.path().join("in.sam");
    let bam = dir.path().join("in.bam");
    ds.write_sam(&sam).unwrap();
    ds.write_bam(&bam).unwrap();

    let sam_conv = SamConverter::new(ConvertConfig::with_ranks(2));
    let samx_conv = SamxConverter::new(ConvertConfig::with_ranks(2));
    let bam_conv = BamConverter::new(ConvertConfig::with_ranks(2));
    let prep = bam_conv.preprocess(&bam, dir.path().join("x")).unwrap();

    for target in TargetFormat::ALL {
        if target == TargetFormat::Bam {
            continue; // BGZF bytes differ per writer; covered elsewhere
        }
        let a = cat(&sam_conv
            .convert_file(&sam, target, dir.path().join(format!("a{target:?}")))
            .unwrap());
        let (_, samx_report) = samx_conv
            .convert_file(&sam, target, dir.path().join(format!("b{target:?}")))
            .unwrap();
        let b = cat(&samx_report);
        let c = cat(&bam_conv
            .convert_bamx(&prep.bamx_path, target, dir.path().join(format!("c{target:?}")))
            .unwrap());
        assert_eq!(a, b, "sam vs samx for {target:?}");
        assert_eq!(a, c, "sam vs bam for {target:?}");
    }
}

#[test]
fn wig_output_is_parseable_fragments() {
    let ds = dataset();
    let dir = tempdir().unwrap();
    let sam = dir.path().join("in.sam");
    ds.write_sam(&sam).unwrap();
    let report = SamConverter::new(ConvertConfig::with_ranks(2))
        .convert_file(&sam, TargetFormat::Wig, dir.path().join("wig"))
        .unwrap();
    let text = cat(&report);
    let decls = text
        .split(|&b| b == b'\n')
        .filter(|l| l.starts_with(b"variableStep"))
        .count() as u64;
    assert_eq!(decls, report.records_out());
}

#[test]
fn gff_output_is_parseable_features() {
    let ds = dataset();
    let dir = tempdir().unwrap();
    let sam = dir.path().join("in.sam");
    ds.write_sam(&sam).unwrap();
    let report = SamConverter::new(ConvertConfig::with_ranks(2))
        .convert_file(&sam, TargetFormat::Gff, dir.path().join("gff"))
        .unwrap();
    let text = cat(&report);
    assert!(text.starts_with(b"##gff-version 3\n"));
    let mut features = 0u64;
    for line in text.split(|&b| b == b'\n') {
        if line.is_empty() || line.starts_with(b"#") {
            continue;
        }
        let f = ngs_formats::gff::parse_feature(line).unwrap();
        assert!(f.start >= 1 && f.end >= f.start);
        features += 1;
    }
    assert_eq!(features, report.records_out());
}
