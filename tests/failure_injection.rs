//! Failure injection: every layer must reject corrupted inputs with an
//! error — never panic, never silently emit wrong records.

use std::io::Read;

use ngs_converter::{ConvertConfig, MemSource, SamConverter, TargetFormat};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

fn dataset(n: usize) -> Dataset {
    Dataset::generate(&DatasetSpec {
        n_records: n,
        coordinate_sorted: true,
        ..Default::default()
    })
}

// ---------------------------------------------------------------------------
// BGZF layer
// ---------------------------------------------------------------------------

#[test]
fn bgzf_detects_corruption_at_every_offset_region() {
    let payload = b"bgzf corruption probe ".repeat(200);
    let file = ngs_bgzf::compress_sequential(&payload, ngs_bgzf::Options::default());
    // Flip one bit in several structurally distinct places.
    for &offset in &[0usize, 3, 12, 17, 40, file.len() / 2, file.len() - 30] {
        let mut corrupt = file.clone();
        corrupt[offset] ^= 0x10;
        let result = ngs_bgzf::decompress_sequential(&corrupt);
        // Either an error, or (for flips in unused header bits) the exact
        // original payload — never a silently different payload.
        if let Ok(out) = result {
            assert_eq!(out, payload, "silent corruption at offset {offset}");
        }
    }
}

#[test]
fn bgzf_truncation_rejected() {
    let payload = vec![9u8; 100_000];
    let file = ngs_bgzf::compress_sequential(&payload, ngs_bgzf::Options::default());
    for cut in [1, 10, file.len() / 3, file.len() - 1] {
        assert!(
            ngs_bgzf::decompress_sequential(&file[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
}

// ---------------------------------------------------------------------------
// BAM layer
// ---------------------------------------------------------------------------

#[test]
fn bam_reader_rejects_corrupted_records() {
    let ds = dataset(200);
    let bytes = ds.to_bam_bytes().unwrap();

    // Decompress, flip bytes inside the record area, recompress: CRC will
    // pass (we recompress), so the *record decoder* must catch structure
    // violations — or the data decodes to different-but-valid records,
    // which the reader cannot distinguish; what it must never do is panic.
    let plain = ngs_bgzf::decompress_sequential(&bytes).unwrap();
    for &offset in &[100usize, 500, 2000, plain.len() - 50] {
        let mut corrupt = plain.clone();
        corrupt[offset] ^= 0xFF;
        let refile = ngs_bgzf::compress_sequential(&corrupt, ngs_bgzf::Options::default());
        let result = std::panic::catch_unwind(|| {
            let mut reader =
                ngs_formats::bam::BamReader::new(std::io::Cursor::new(&refile))?;
            let mut n = 0usize;
            while let Some(_rec) = reader.read_record()? {
                n += 1;
            }
            Ok::<usize, ngs_formats::Error>(n)
        });
        assert!(result.is_ok(), "panic on corrupted BAM at offset {offset}");
    }
}

#[test]
fn bam_reader_rejects_wrong_magic_and_truncation() {
    let ds = dataset(50);
    let bytes = ds.to_bam_bytes().unwrap();
    // Whole-file truncations.
    for cut in [5, 30, bytes.len() / 2] {
        let result = (|| -> ngs_formats::error::Result<usize> {
            let mut reader =
                ngs_formats::bam::BamReader::new(std::io::Cursor::new(&bytes[..cut]))?;
            let mut n = 0;
            while reader.read_record()?.is_some() {
                n += 1;
            }
            Ok(n)
        })();
        assert!(result.is_err(), "truncated BAM at {cut} must error");
    }
}

// ---------------------------------------------------------------------------
// SAM layer
// ---------------------------------------------------------------------------

#[test]
fn sam_converter_surfaces_parse_errors_from_any_rank() {
    let ds = dataset(300);
    let mut text = ds.to_sam_bytes();
    // Inject a malformed line near the end (hit by the last rank).
    let inject_at = text.len() - 1;
    text.splice(inject_at..inject_at, b"\ngarbage line without tabs".iter().copied());
    let src = MemSource::new(text);
    let dir = tempdir().unwrap();
    let result = SamConverter::new(ConvertConfig::with_ranks(4)).convert_source(
        &src,
        TargetFormat::Bed,
        dir.path(),
        "x",
    );
    assert!(result.is_err());
}

#[test]
fn sam_parse_error_reports_line_content_context() {
    let err = ngs_formats::sam::parse_record(b"r1\tNOTANUMBER\tchr1", 7).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 7"), "got {msg}");
}

// ---------------------------------------------------------------------------
// BAMX layer
// ---------------------------------------------------------------------------

#[test]
fn bamx_detects_trailer_and_body_mismatch() {
    let ds = dataset(100);
    let dir = tempdir().unwrap();
    let path = dir.path().join("t.bamx");
    ngs_bamx::write_bamx_file(
        &path,
        &ds.header(),
        &ds.records,
        ngs_bamx::BamxCompression::Plain,
    )
    .unwrap();

    // Append junk: body size no longer matches the trailer count.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.splice(bytes.len() - 8..bytes.len() - 8, [0u8; 13]);
    std::fs::write(&path, &bytes).unwrap();
    assert!(ngs_bamx::BamxFile::open(&path).is_err());
}

#[test]
fn bamx_truncated_file_rejected() {
    let ds = dataset(60);
    let dir = tempdir().unwrap();
    let path = dir.path().join("t.bamx");
    ngs_bamx::write_bamx_file(
        &path,
        &ds.header(),
        &ds.records,
        ngs_bamx::BamxCompression::Plain,
    )
    .unwrap();
    let bytes = std::fs::read(&path).unwrap();
    for cut in [3usize, 12, bytes.len() / 2] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(ngs_bamx::BamxFile::open(&path).is_err(), "cut {cut}");
    }
}

// ---------------------------------------------------------------------------
// Index layer
// ---------------------------------------------------------------------------

#[test]
fn indices_reject_garbage_files() {
    let dir = tempdir().unwrap();
    let p = dir.path().join("junk");
    std::fs::write(&p, b"not an index at all").unwrap();
    assert!(ngs_bamx::Baix::load(&p).is_err());
    assert!(ngs_bamx::BamIndex::load(&p).is_err());
    // Empty file too.
    std::fs::write(&p, b"").unwrap();
    assert!(ngs_bamx::Baix::load(&p).is_err());
    assert!(ngs_bamx::BamIndex::load(&p).is_err());
}

// ---------------------------------------------------------------------------
// End-to-end: corrupted inputs through the framework facade
// ---------------------------------------------------------------------------

#[test]
fn facade_fails_cleanly_on_binary_garbage() {
    let dir = tempdir().unwrap();
    let bad_sam = dir.path().join("bad.sam");
    // A "SAM" file of random bytes (not even valid lines).
    let noise: Vec<u8> = (0..10_000u32).map(|i| (i.wrapping_mul(2654435761) >> 9) as u8).collect();
    std::fs::write(&bad_sam, &noise).unwrap();
    let fw = ngs_core::Framework::new(ngs_core::FrameworkConfig::with_ranks(2));
    assert!(fw.convert_sam(&bad_sam, TargetFormat::Bed, dir.path().join("o")).is_err());

    let bad_bam = dir.path().join("bad.bam");
    std::fs::write(&bad_bam, &noise).unwrap();
    assert!(fw.convert_bam(&bad_bam, TargetFormat::Sam, dir.path().join("o2")).is_err());
}

#[test]
fn bgzf_reader_is_safe_on_adversarial_bsize() {
    // Handcraft a block header claiming a tiny BSIZE that cuts into the
    // header itself; the reader must error, not loop or panic.
    let mut data = ngs_bgzf::compress_sequential(b"x", ngs_bgzf::Options::default());
    // BSIZE lives at offset 16..18 of the first block.
    data[16] = 1;
    data[17] = 0;
    let mut reader = ngs_bgzf::BgzfReader::new(std::io::Cursor::new(&data));
    let mut out = Vec::new();
    assert!(reader.read_to_end(&mut out).is_err());
}
