//! Cross-crate integration: the three converter instances must agree
//! with each other on every target format, end to end through real
//! files (simgen → SAM/BAM on disk → converter → target files).

use std::path::Path;

use ngs_converter::{
    BamConverter, ConvertConfig, ConvertReport, SamConverter, SamxConverter, TargetFormat,
};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

fn dataset(n: usize, sorted: bool) -> Dataset {
    Dataset::generate(&DatasetSpec {
        n_records: n,
        coordinate_sorted: sorted,
        ..Default::default()
    })
}

fn cat_outputs(report: &ConvertReport) -> Vec<u8> {
    let mut all = Vec::new();
    let mut outputs = report.outputs.clone();
    outputs.sort();
    for p in outputs {
        all.extend_from_slice(&std::fs::read(p).unwrap());
    }
    all
}

/// SAM and BAM encodings of the same records must convert into identical
/// line-format outputs via their respective converter instances.
#[test]
fn sam_and_bam_instances_agree_on_all_line_targets() {
    let ds = dataset(1200, false);
    let dir = tempdir().unwrap();
    let sam_path = dir.path().join("in.sam");
    let bam_path = dir.path().join("in.bam");
    ds.write_sam(&sam_path).unwrap();
    ds.write_bam(&bam_path).unwrap();

    let sam_conv = SamConverter::new(ConvertConfig::with_ranks(3));
    let bam_conv = BamConverter::new(ConvertConfig::with_ranks(3));
    let prep = bam_conv.preprocess(&bam_path, dir.path().join("bamx")).unwrap();

    for target in [
        TargetFormat::Bed,
        TargetFormat::BedGraph,
        TargetFormat::Fastq,
        TargetFormat::Json,
    ] {
        let from_sam = sam_conv
            .convert_file(&sam_path, target, dir.path().join(format!("sam-{target:?}")))
            .unwrap();
        let from_bam = bam_conv
            .convert_bamx(&prep.bamx_path, target, dir.path().join(format!("bam-{target:?}")))
            .unwrap();
        // Identical records in identical order, so identical bytes modulo
        // partition boundaries — compare concatenations.
        assert_eq!(
            cat_outputs(&from_sam),
            cat_outputs(&from_bam),
            "target {target:?}"
        );
    }
}

/// The preprocessing-optimized instance is a drop-in replacement for the
/// plain SAM instance at every rank count.
#[test]
fn samx_instance_is_dropin_for_sam_instance() {
    let ds = dataset(900, false);
    let dir = tempdir().unwrap();
    let sam_path = dir.path().join("in.sam");
    ds.write_sam(&sam_path).unwrap();

    for ranks in [1usize, 2, 5] {
        let plain = SamConverter::new(ConvertConfig::with_ranks(ranks))
            .convert_file(&sam_path, TargetFormat::Fasta, dir.path().join(format!("p{ranks}")))
            .unwrap();
        let (prep, opt) = SamxConverter::new(ConvertConfig::with_ranks(ranks))
            .convert_file(&sam_path, TargetFormat::Fasta, dir.path().join(format!("o{ranks}")))
            .unwrap();
        assert_eq!(prep.records(), 900);
        assert_eq!(cat_outputs(&plain), cat_outputs(&opt), "ranks {ranks}");
        assert_eq!(opt.outputs.len(), ranks * ranks, "M × N output files");
    }
}

/// Full chain: SAM → BAM (via converter) → BAMX → SAM recovers the
/// original records byte-for-byte.
#[test]
fn full_format_cycle_is_lossless() {
    let ds = dataset(700, false);
    let dir = tempdir().unwrap();
    let sam_path = dir.path().join("in.sam");
    ds.write_sam(&sam_path).unwrap();

    // SAM → BAM parts.
    let sam_conv = SamConverter::new(ConvertConfig::with_ranks(2));
    let to_bam = sam_conv.convert_file(&sam_path, TargetFormat::Bam, dir.path().join("bam")).unwrap();

    // Each BAM part → SAM via the BAM instance; stitch in rank order.
    let bam_conv = BamConverter::new(ConvertConfig::with_ranks(2));
    let mut recovered = Vec::new();
    for (i, part) in to_bam.outputs.iter().enumerate() {
        let prep = bam_conv.preprocess(part, dir.path().join(format!("x{i}"))).unwrap();
        let report = bam_conv
            .convert_bamx(&prep.bamx_path, TargetFormat::Sam, dir.path().join(format!("s{i}")))
            .unwrap();
        let bytes = cat_outputs(&report);
        let mut reader =
            ngs_formats::sam::SamReader::new(std::io::Cursor::new(&bytes)).unwrap();
        recovered.extend(reader.records().map(|r| r.unwrap()));
    }
    assert_eq!(recovered, ds.records);
}

/// Boundary torture: many ranks over a file whose lines straddle every
/// possible initial partition boundary.
#[test]
fn partitioning_never_loses_or_duplicates_records() {
    let ds = dataset(333, false);
    let dir = tempdir().unwrap();
    let sam_path = dir.path().join("in.sam");
    ds.write_sam(&sam_path).unwrap();

    for ranks in [1usize, 2, 3, 7, 13, 32, 64] {
        let report = SamConverter::new(ConvertConfig::with_ranks(ranks))
            .convert_file(&sam_path, TargetFormat::Json, dir.path().join(format!("r{ranks}")))
            .unwrap();
        assert_eq!(report.records_in(), 333, "ranks {ranks}");
        assert_eq!(report.records_out(), 333, "ranks {ranks}");
    }
}

/// Outputs concatenate deterministically across repeated runs.
#[test]
fn conversion_is_deterministic() {
    let ds = dataset(400, true);
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("in.bam");
    ds.write_bam(&bam_path).unwrap();
    let conv = BamConverter::new(ConvertConfig::with_ranks(4));
    let prep = conv.preprocess(&bam_path, dir.path().join("x")).unwrap();
    let a = conv.convert_bamx(&prep.bamx_path, TargetFormat::Yaml, dir.path().join("a")).unwrap();
    let b = conv.convert_bamx(&prep.bamx_path, TargetFormat::Yaml, dir.path().join("b")).unwrap();
    assert_eq!(cat_outputs(&a), cat_outputs(&b));
}

fn _assert_path_helper(_: &Path) {}
