//! Concurrency stress: the rank runtime and thread-parallel converters
//! must behave identically under repetition — no races, no
//! order-dependent output, no deadlocks (each case bounded by the test
//! harness timeout).

use ngs_cluster::{run_ranks, Communicator};
use ngs_converter::{ConvertConfig, MemSource, SamConverter, TargetFormat};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

#[test]
fn communicator_survives_message_storm() {
    // Every rank sends many messages to every other rank on several tags;
    // totals must balance exactly.
    let n = 6usize;
    let per_pair = 200u64;
    let results = run_ranks(n, |comm: &Communicator| {
        let me = comm.rank() as u64;
        for to in 0..comm.size() {
            if to == comm.rank() {
                continue;
            }
            for i in 0..per_pair {
                comm.send_u64(to, i % 3, me * 1_000_000 + i);
            }
        }
        let mut received = 0u64;
        let mut checksum = 0u64;
        for from in 0..comm.size() {
            if from == comm.rank() {
                continue;
            }
            for i in 0..per_pair {
                let v = comm.recv_u64(from, i % 3);
                checksum = checksum.wrapping_add(v);
                received += 1;
            }
        }
        (received, checksum)
    });
    let expected_per_rank = per_pair * (n as u64 - 1);
    for (i, (received, _)) in results.iter().enumerate() {
        assert_eq!(*received, expected_per_rank, "rank {i}");
    }
    // Checksums: every rank receives the same multiset from its peers'
    // perspective symmetric construction — verify the global sum matches
    // the sent sum.
    let sent_sum: u64 = (0..n as u64)
        .map(|me| {
            (0..per_pair).map(|i| me * 1_000_000 + i).sum::<u64>() * (n as u64 - 1)
        })
        .fold(0u64, |a, b| a.wrapping_add(b));
    let recv_sum = results.iter().fold(0u64, |a, (_, c)| a.wrapping_add(*c));
    assert_eq!(sent_sum, recv_sum);
}

#[test]
fn repeated_allreduce_remains_consistent() {
    for _ in 0..20 {
        let results = run_ranks(5, |comm| {
            let mut acc = 0u64;
            for round in 0..10u64 {
                acc = comm.all_reduce_sum_u64(round, comm.rank() as u64 + round);
                comm.barrier();
            }
            acc
        });
        // Final round: sum of (rank + 9) over 5 ranks = 10 + 45.
        assert!(results.iter().all(|&v| v == 10 + 45), "{results:?}");
    }
}

#[test]
fn thread_parallel_conversion_is_repeatable() {
    let ds = Dataset::generate(&DatasetSpec { n_records: 600, ..Default::default() });
    let src = MemSource::new(ds.to_sam_bytes());
    let dir = tempdir().unwrap();
    let conv = SamConverter::new(ConvertConfig::with_ranks(6));

    let mut reference: Option<Vec<u8>> = None;
    for round in 0..5 {
        let out = dir.path().join(format!("r{round}"));
        let report = conv.convert_source(&src, TargetFormat::Json, &out, "x").unwrap();
        let mut all = Vec::new();
        let mut outputs = report.outputs.clone();
        outputs.sort();
        for p in outputs {
            all.extend_from_slice(&std::fs::read(p).unwrap());
        }
        match &reference {
            None => reference = Some(all),
            Some(expected) => assert_eq!(&all, expected, "round {round}"),
        }
    }
}

#[test]
fn nlmeans_distributed_is_deterministic_under_thread_scheduling() {
    let data: Vec<f64> = (0..4000).map(|i| ((i * 37) % 101) as f64).collect();
    let params = ngs_stats::NlMeansParams { search_radius: 12, half_patch: 4, sigma: 6.0 };
    let first = ngs_stats::nlmeans_distributed(&data, &params, 7);
    for _ in 0..5 {
        let again = ngs_stats::nlmeans_distributed(&data, &params, 7);
        assert_eq!(again, first);
    }
}

#[test]
fn fdr_parallel_is_deterministic_under_thread_scheduling() {
    let input = ngs_stats::build_fdr_input(
        (0..800).map(|i| (i % 23) as f64).collect(),
        12,
        ngs_stats::NullModel::Poisson,
        5,
    );
    let first = ngs_stats::fdr_parallel(&input, 2.0, 9);
    for _ in 0..10 {
        assert_eq!(ngs_stats::fdr_parallel(&input, 2.0, 9).to_bits(), first.to_bits());
    }
}

#[test]
fn many_small_worlds_do_not_leak_or_deadlock() {
    for n in 1..=12 {
        let results = run_ranks(n, |comm| {
            comm.barrier();
            comm.all_reduce_sum_u64(0, 1)
        });
        assert!(results.iter().all(|&v| v == n as u64));
    }
}
