//! Cross-crate integration for the BAMX v2 columnar layout (DESIGN.md
//! §14): a query engine serving v2 shards must be byte-for-byte
//! indistinguishable from one serving v1 shards — for every target
//! format, worker count, and streaming mode. The storage layout is an
//! implementation detail; nothing a client downloads may depend on it.

use ngs_bamx::{BamxFile, BamxVersion, Region};
use ngs_converter::{BamConverter, ConvertConfig, TargetFormat};
use ngs_query::{
    EngineConfig, QueryClass, QueryEngine, QueryKind, QueryOutcome, QueryRequest,
};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

const ALL_FORMATS: [TargetFormat; 10] = [
    TargetFormat::Sam,
    TargetFormat::Bam,
    TargetFormat::Bed,
    TargetFormat::BedGraph,
    TargetFormat::Fasta,
    TargetFormat::Fastq,
    TargetFormat::Json,
    TargetFormat::Yaml,
    TargetFormat::Wig,
    TargetFormat::Gff,
];

/// Every target format, served from a v1 shard repo and a v2 shard repo
/// by engines at several worker counts with and without the streaming
/// pipeline, produces identical part files — all anchored to
/// single-threaded one-shot conversion from the v1 shard.
#[test]
fn v2_engine_output_is_byte_identical_to_v1_for_every_format() {
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 800,
        n_chroms: 2,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();

    let conv_v1 = BamConverter::new(ConvertConfig::with_ranks(1));
    let mut conv_v2 = BamConverter::new(ConvertConfig::with_ranks(1));
    conv_v2.format_version = BamxVersion::V2;

    let shards_v1 = dir.path().join("shards-v1");
    let shards_v2 = dir.path().join("shards-v2");
    let prep_v1 = conv_v1.preprocess(&bam_path, &shards_v1).unwrap();
    let prep_v2 = conv_v2.preprocess(&bam_path, &shards_v2).unwrap();
    assert_eq!(BamxFile::open(&prep_v1.bamx_path).unwrap().version(), BamxVersion::V1);
    assert_eq!(BamxFile::open(&prep_v2.bamx_path).unwrap().version(), BamxVersion::V2);
    // Identical index bytes: region → record-range resolution is shared.
    assert_eq!(
        std::fs::read(&prep_v1.baix_path).unwrap(),
        std::fs::read(&prep_v2.baix_path).unwrap()
    );

    // Reference bytes: one-shot single-threaded conversion from v1.
    let header_probe = BamxFile::open(&prep_v1.bamx_path).unwrap();
    let regions = ["chr1:1-5000", "chr2:1-100000"];
    let mix: Vec<(&str, TargetFormat)> =
        regions.iter().flat_map(|r| ALL_FORMATS.iter().map(move |t| (*r, *t))).collect();
    let reference: Vec<(std::ffi::OsString, Vec<u8>)> = mix
        .iter()
        .enumerate()
        .map(|(i, (region_text, target))| {
            let region = Region::parse(region_text, header_probe.header()).unwrap();
            let out = dir.path().join(format!("ref-{i}"));
            let oneshot = conv_v1
                .convert_partial(&prep_v1.bamx_path, &prep_v1.baix_path, &region, *target, &out)
                .unwrap();
            let path = &oneshot.outputs[0];
            (path.file_name().unwrap().to_os_string(), std::fs::read(path).unwrap())
        })
        .collect();

    for workers in [1usize, 4, 8] {
        for streaming in [false, true] {
            for (version, shard_dir) in [("v1", &shards_v1), ("v2", &shards_v2)] {
                let config = EngineConfig {
                    workers,
                    convert: ConvertConfig::with_ranks(1),
                    streaming: streaming.then(|| ngs_pipeline::PipelineConfig {
                        workers: 2,
                        batch_size: 64,
                        channel_bound: 2,
                        ..Default::default()
                    }),
                    ..Default::default()
                };
                let engine = QueryEngine::new(shard_dir, config).unwrap();
                let tickets: Vec<_> = mix
                    .iter()
                    .enumerate()
                    .map(|(i, (region_text, target))| {
                        let out_dir = dir
                            .path()
                            .join(format!("{version}-w{workers}-p{streaming}-{i}"));
                        engine
                            .submit(QueryRequest {
                                dataset: "input".into(),
                                region: (*region_text).into(),
                                kind: QueryKind::Convert { format: *target, out_dir },
                                deadline: None,
                                class: QueryClass::Interactive,
                            })
                            .unwrap()
                    })
                    .collect();
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let label = format!(
                        "{version} workers={workers} streaming={streaming} request={:?}",
                        mix[i]
                    );
                    let QueryOutcome::Converted { output, .. } = ticket
                        .wait()
                        .outcome
                        .unwrap_or_else(|e| panic!("{label}: failed: {e}"))
                    else {
                        panic!("{label}: expected a conversion outcome");
                    };
                    assert_eq!(
                        output.file_name().unwrap(),
                        reference[i].0,
                        "{label}: part-file name"
                    );
                    assert_eq!(
                        std::fs::read(&output).unwrap(),
                        reference[i].1,
                        "{label}: bytes must match the v1 one-shot reference"
                    );
                }
                let stats = engine.drain();
                assert_eq!(stats.completed, mix.len() as u64, "{version} workers={workers}");
                assert_eq!(stats.failed, 0);
            }
        }
    }
}

/// Coverage histograms (which read only positions and CIGARs — the
/// projected fast path on v2) agree exactly across shard versions.
#[test]
fn v2_engine_coverage_matches_v1() {
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 600,
        n_chroms: 2,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();

    let mut outcomes = Vec::new();
    for version in [BamxVersion::V1, BamxVersion::V2] {
        let mut conv = BamConverter::new(ConvertConfig::with_ranks(1));
        conv.format_version = version;
        let shard_dir = dir.path().join(format!("shards-{}", version.name()));
        conv.preprocess(&bam_path, &shard_dir).unwrap();
        let engine = QueryEngine::new(
            &shard_dir,
            EngineConfig { workers: 2, convert: ConvertConfig::with_ranks(1), ..Default::default() },
        )
        .unwrap();
        let response = engine
            .submit(QueryRequest {
                dataset: "input".into(),
                region: "chr1".into(),
                kind: QueryKind::Coverage { bin_size: 250 },
                deadline: None,
                class: QueryClass::Interactive,
            })
            .unwrap()
            .wait();
        let QueryOutcome::Coverage { bins, bin_size, records } =
            response.outcome.expect("coverage should succeed")
        else {
            panic!("expected a coverage outcome");
        };
        outcomes.push((bins, bin_size, records));
        let stats = engine.drain();
        assert_eq!(stats.failed, 0);
    }
    assert_eq!(outcomes[0], outcomes[1]);
}

/// A v2 repo resumes like a v1 repo: re-preprocessing with the same
/// version verifies the manifest and skips the rebuild, and the shard it
/// trusts is still readable end to end.
#[test]
fn v2_repo_resume_is_trusted_and_readable() {
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 300,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();
    let mut conv = BamConverter::new(ConvertConfig::with_ranks(1));
    conv.format_version = BamxVersion::V2;
    let shard_dir = dir.path().join("shards");
    let first = conv.preprocess(&bam_path, &shard_dir).unwrap();
    let first_bytes = std::fs::read(&first.bamx_path).unwrap();
    let again = conv.preprocess(&bam_path, &shard_dir).unwrap();
    assert_eq!(std::fs::read(&again.bamx_path).unwrap(), first_bytes);
    let f = BamxFile::open(&again.bamx_path).unwrap();
    assert_eq!(f.version(), BamxVersion::V2);
    assert_eq!(f.len() as usize, ds.records.len());
}
