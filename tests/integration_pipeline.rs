//! End-to-end pipeline integration: framework facade, statistics over
//! converter output, and partial conversion correctness against a
//! brute-force reference.

use ngs_core::{Framework, FrameworkConfig, NlMeansParams, NullModel, TargetFormat};
use ngs_simgen::{Dataset, DatasetSpec};
use ngs_stats::{fdr_fused, nlmeans_sequential, CoverageHistogram};
use tempfile::tempdir;

fn small_framework(ranks: usize) -> Framework {
    let mut config = FrameworkConfig::with_ranks(ranks);
    config.nlmeans = NlMeansParams { search_radius: 6, half_patch: 2, sigma: 5.0 };
    Framework::new(config)
}

#[test]
fn histogram_pipeline_equals_ground_truth() {
    let dir = tempdir().unwrap();
    let ds = Dataset::generate(&DatasetSpec { n_records: 600, ..Default::default() });
    let sam = dir.path().join("in.sam");
    ds.write_sam(&sam).unwrap();

    let fw = small_framework(3);
    let via_pipeline = fw.histogram_from_sam(&sam).unwrap();
    let truth = CoverageHistogram::from_records(&ds.header(), 25, &ds.records);
    assert_eq!(via_pipeline.len(), truth.len());
    let max_err = via_pipeline
        .bins
        .iter()
        .zip(&truth.bins)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 1e-6, "max bin error {max_err}");
}

#[test]
fn denoise_and_fdr_through_facade_match_kernels() {
    let dir = tempdir().unwrap();
    let ds = Dataset::generate(&DatasetSpec { n_records: 500, ..Default::default() });
    let sam = dir.path().join("in.sam");
    ds.write_sam(&sam).unwrap();

    let fw = small_framework(4);
    let hist = fw.histogram_from_sam(&sam).unwrap();

    let facade = fw.denoise(&hist);
    let kernel = nlmeans_sequential(&hist.bins, &fw.config.nlmeans);
    assert_eq!(facade, kernel);

    let input = ngs_stats::build_fdr_input(facade.clone(), 6, NullModel::Poisson, 11);
    let via_facade = fw.fdr_with_input(&input, 2.0);
    let via_kernel = fdr_fused(&input, 2.0);
    assert_eq!(via_facade.to_bits(), via_kernel.to_bits());
}

#[test]
fn partial_conversion_matches_bruteforce_filter() {
    let dir = tempdir().unwrap();
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 1500,
        coordinate_sorted: true,
        ..Default::default()
    });
    let bam = dir.path().join("in.bam");
    ds.write_bam(&bam).unwrap();

    let fw = small_framework(4);
    let chr1_len = ds.header().references[0].length as i64;
    let (lo, hi) = (chr1_len / 5, chr1_len / 2);
    let region = format!("chr1:{}-{}", lo + 1, hi);
    let (_prep, report) = fw
        .convert_bam_partial(&bam, &region, TargetFormat::Bed, dir.path().join("out"))
        .unwrap();

    let expected: u64 = ds
        .records
        .iter()
        .filter(|r| {
            r.rname == b"chr1"
                && r.start0().map(|s| s >= lo && s < hi).unwrap_or(false)
        })
        .count() as u64;
    assert_eq!(report.records_in(), expected);
    assert!(expected > 0, "test region must contain reads");

    // The BED output intervals all start inside the region.
    for path in &report.outputs {
        let text = std::fs::read(path).unwrap();
        for line in text.split(|&b| b == b'\n').filter(|l| !l.is_empty()) {
            let rec = ngs_formats::bed::parse_record(line).unwrap();
            assert!(rec.start >= lo && rec.start < hi, "start {} outside", rec.start);
        }
    }
}

#[test]
fn whole_chromosome_partial_equals_chromosome_filter() {
    let dir = tempdir().unwrap();
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 800,
        coordinate_sorted: true,
        ..Default::default()
    });
    let bam = dir.path().join("in.bam");
    ds.write_bam(&bam).unwrap();

    let fw = small_framework(2);
    let (_, report) = fw
        .convert_bam_partial(&bam, "chr2", TargetFormat::Json, dir.path().join("out"))
        .unwrap();
    let expected =
        ds.records.iter().filter(|r| r.rname == b"chr2" && !r.is_unmapped()).count() as u64;
    assert_eq!(report.records_in(), expected);
}

#[test]
fn facade_bam_roundtrip_preserves_records() {
    let dir = tempdir().unwrap();
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 400,
        coordinate_sorted: true,
        ..Default::default()
    });
    let bam = dir.path().join("in.bam");
    ds.write_bam(&bam).unwrap();

    let fw = small_framework(3);
    let (prep, report) = fw.convert_bam(&bam, TargetFormat::Sam, dir.path().join("out")).unwrap();
    assert_eq!(prep.records, 400);

    let mut outputs = report.outputs.clone();
    outputs.sort();
    let mut all = Vec::new();
    for p in outputs {
        all.extend_from_slice(&std::fs::read(p).unwrap());
    }
    let mut reader = ngs_formats::sam::SamReader::new(std::io::Cursor::new(&all)).unwrap();
    let records: Vec<_> = reader.records().map(|r| r.unwrap()).collect();
    assert_eq!(records, ds.records);
}
