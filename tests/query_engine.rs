//! Cross-crate integration: the long-lived query engine must be a
//! drop-in for one-shot partial conversion — for the same region and
//! target format it produces byte-identical part files, because both
//! drive the same `convert_index_list` work unit. When the opt-in
//! streaming path (`EngineConfig::streaming`) is enabled, the bounded
//! pipeline must preserve that guarantee byte for byte.

use std::sync::Arc;

use ngs_bamx::Region;
use ngs_converter::{BamConverter, ConvertConfig, TargetFormat};
use ngs_query::{
    EngineConfig, ManualClock, QueryClass, QueryEngine, QueryKind, QueryOutcome, QueryRequest,
};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

/// Engine output vs `BamConverter::convert_partial` at one rank, across
/// several regions and target formats.
#[test]
fn engine_matches_one_shot_partial_conversion_byte_for_byte() {
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 1_500,
        n_chroms: 2,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();

    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let shard_dir = dir.path().join("shards");
    let prep = conv.preprocess(&bam_path, &shard_dir).unwrap();

    let engine = QueryEngine::new(
        &shard_dir,
        EngineConfig { workers: 2, convert: ConvertConfig::with_ranks(1), ..Default::default() },
    )
    .unwrap();
    assert_eq!(engine.store().datasets().unwrap(), vec!["input".to_string()]);

    let header_probe = ngs_bamx::BamxFile::open(&prep.bamx_path).unwrap();
    let regions = ["chr1:1-2000", "chr1:5001-9000", "chr2:1-100000"];
    let formats = [TargetFormat::Bed, TargetFormat::Sam, TargetFormat::Json];

    for (i, (region_text, target)) in
        regions.iter().flat_map(|r| formats.iter().map(move |t| (*r, *t))).enumerate()
    {
        // One-shot path.
        let oneshot_dir = dir.path().join(format!("oneshot-{i}"));
        let region = Region::parse(region_text, header_probe.header()).unwrap();
        let oneshot =
            conv.convert_partial(&prep.bamx_path, &prep.baix_path, &region, target, &oneshot_dir)
                .unwrap();
        assert_eq!(oneshot.outputs.len(), 1, "one rank → one part file");

        // Engine path.
        let engine_dir = dir.path().join(format!("engine-{i}"));
        let ticket = engine
            .submit(QueryRequest {
                dataset: "input".into(),
                region: region_text.into(),
                kind: QueryKind::Convert { format: target, out_dir: engine_dir },
                deadline: None,
                class: QueryClass::Interactive,
            })
            .unwrap();
        let response = ticket.wait();
        let outcome = response.outcome.expect("engine request should succeed");
        let QueryOutcome::Converted { output, records_in, records_out, .. } = outcome else {
            panic!("expected a conversion outcome");
        };

        // Same part file name, same bytes.
        assert_eq!(
            output.file_name(),
            oneshot.outputs[0].file_name(),
            "{region_text} as {target:?}"
        );
        assert_eq!(
            std::fs::read(&output).unwrap(),
            std::fs::read(&oneshot.outputs[0]).unwrap(),
            "{region_text} as {target:?}"
        );
        assert_eq!(records_in, oneshot.records_in());
        assert_eq!(records_out, oneshot.records_out());
    }

    let stats = engine.drain();
    assert_eq!(stats.completed, (regions.len() * formats.len()) as u64);
    assert_eq!(stats.failed, 0);
    // One dataset, capacity-bounded cache: exactly one miss, rest hits.
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, stats.completed - 1);
}

/// The opt-in streaming Convert path (`EngineConfig::streaming`) must be
/// indistinguishable on disk from the default `convert_index_list`
/// path: same part-file names, same bytes, same record counts, for
/// every region × format pair — otherwise enabling bounded-memory
/// serving would silently change what clients download.
#[test]
fn engine_streaming_convert_matches_batch_engine_byte_for_byte() {
    use ngs_pipeline::PipelineConfig;

    let ds = Dataset::generate(&DatasetSpec {
        n_records: 1_200,
        n_chroms: 2,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let shard_dir = dir.path().join("shards");
    let prep = conv.preprocess(&bam_path, &shard_dir).unwrap();

    let batch_engine = QueryEngine::new(
        &shard_dir,
        EngineConfig { workers: 1, convert: ConvertConfig::with_ranks(1), ..Default::default() },
    )
    .unwrap();
    let streaming_engine = QueryEngine::new(
        &shard_dir,
        EngineConfig {
            workers: 1,
            convert: ConvertConfig::with_ranks(1),
            streaming: Some(PipelineConfig {
                workers: 2,
                batch_size: 64,
                channel_bound: 2,
                ..Default::default()
            }),
            ..Default::default()
        },
    )
    .unwrap();

    let header_probe = ngs_bamx::BamxFile::open(&prep.bamx_path).unwrap();
    let regions = ["chr1:1-3000", "chr2:1-100000"];
    let formats = [TargetFormat::Sam, TargetFormat::Bed, TargetFormat::Json, TargetFormat::Bam];
    for (i, (region_text, target)) in
        regions.iter().flat_map(|r| formats.iter().map(move |t| (*r, *t))).enumerate()
    {
        // Sanity anchor: the batch engine itself still matches one-shot.
        let region = Region::parse(region_text, header_probe.header()).unwrap();
        let oneshot_dir = dir.path().join(format!("s-oneshot-{i}"));
        let oneshot =
            conv.convert_partial(&prep.bamx_path, &prep.baix_path, &region, target, &oneshot_dir)
                .unwrap();

        let mut outputs = Vec::new();
        for (label, engine) in [("batch", &batch_engine), ("streaming", &streaming_engine)] {
            let out_dir = dir.path().join(format!("s-{label}-{i}"));
            let response = engine
                .submit(QueryRequest {
                    dataset: "input".into(),
                    region: (*region_text).into(),
                    kind: QueryKind::Convert { format: target, out_dir },
                    deadline: None,
                    class: QueryClass::Interactive,
                })
                .unwrap()
                .wait();
            let QueryOutcome::Converted { output, records_in, records_out, .. } =
                response.outcome.unwrap_or_else(|e| {
                    panic!("{label} convert of {region_text} as {target:?} failed: {e}")
                })
            else {
                panic!("expected a conversion outcome");
            };
            assert_eq!(records_in, oneshot.records_in(), "{label} {region_text} {target:?}");
            assert_eq!(records_out, oneshot.records_out(), "{label} {region_text} {target:?}");
            outputs.push((label, output));
        }
        let (batch_out, streaming_out) = (&outputs[0].1, &outputs[1].1);
        assert_eq!(
            batch_out.file_name(),
            streaming_out.file_name(),
            "{region_text} as {target:?}: part-file names must agree"
        );
        assert_eq!(
            batch_out.file_name(),
            oneshot.outputs[0].file_name(),
            "{region_text} as {target:?}"
        );
        let batch_bytes = std::fs::read(batch_out).unwrap();
        assert_eq!(
            batch_bytes,
            std::fs::read(streaming_out).unwrap(),
            "{region_text} as {target:?}: streaming engine must emit identical bytes"
        );
        assert_eq!(
            batch_bytes,
            std::fs::read(&oneshot.outputs[0]).unwrap(),
            "{region_text} as {target:?}: engine bytes must match one-shot"
        );
    }

    for engine in [batch_engine, streaming_engine] {
        let stats = engine.drain();
        assert_eq!(stats.completed, (regions.len() * formats.len()) as u64);
        assert_eq!(stats.failed, 0);
    }
}

/// Under injected *lossless* faults — transient open failures plus short
/// reads — the engine's retry path must still produce part files
/// byte-identical to one-shot partial conversion over pristine files:
/// fault recovery is not allowed to change a single output byte.
#[test]
fn engine_retries_transient_faults_to_byte_identical_output() {
    use std::collections::HashMap;
    use std::path::PathBuf;
    use std::sync::Mutex;

    use ngs_fault::{Fault, FaultPlan, FaultyFile};
    use ngs_query::{RetryPolicy, ShardStore, SourceOpener};

    let ds = Dataset::generate(&DatasetSpec {
        n_records: 900,
        n_chroms: 2,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let shard_dir = dir.path().join("shards");
    let prep = conv.preprocess(&bam_path, &shard_dir).unwrap();

    // Every shard file is served through a FaultyFile whose first read
    // fails transiently and whose deliveries are capped at 7 bytes. The
    // wrapper is shared across open attempts (one per path), so the
    // transient budget drains the way a real flaky mount would recover.
    let sources: Mutex<HashMap<PathBuf, std::sync::Arc<FaultyFile<Vec<u8>>>>> =
        Mutex::new(HashMap::new());
    let opener: Box<SourceOpener> = Box::new(move |path| {
        let mut map = sources.lock().unwrap();
        let source = map.entry(path.to_path_buf()).or_insert_with(|| {
            let bytes = std::fs::read(path).expect("shard fixture exists");
            let plan = FaultPlan::new(vec![
                Fault::TransientIo { failures: 1 },
                Fault::ShortRead { max: 7 },
            ]);
            assert!(plan.is_lossless());
            std::sync::Arc::new(FaultyFile::new(bytes, plan))
        });
        Ok(Box::new(std::sync::Arc::clone(source)))
    });
    let clock = Arc::new(ManualClock::new());
    let store = Arc::new(
        ShardStore::open_with(&shard_dir, 4, clock.clone(), RetryPolicy::default())
            .unwrap()
            .with_opener(opener),
    );
    let engine = QueryEngine::with_store(
        store,
        EngineConfig { workers: 1, convert: ConvertConfig::with_ranks(1), ..Default::default() },
        clock,
    )
    .unwrap();

    let header_probe = ngs_bamx::BamxFile::open(&prep.bamx_path).unwrap();
    for (i, region_text) in ["chr1:1-4000", "chr2:1-100000"].iter().enumerate() {
        let region = Region::parse(region_text, header_probe.header()).unwrap();
        let oneshot_dir = dir.path().join(format!("oneshot-{i}"));
        let oneshot = conv
            .convert_partial(
                &prep.bamx_path,
                &prep.baix_path,
                &region,
                TargetFormat::Sam,
                &oneshot_dir,
            )
            .unwrap();

        let engine_dir = dir.path().join(format!("engine-{i}"));
        let response = engine
            .submit(QueryRequest {
                dataset: "input".into(),
                region: (*region_text).into(),
                kind: QueryKind::Convert { format: TargetFormat::Sam, out_dir: engine_dir },
                deadline: None,
                class: QueryClass::Interactive,
            })
            .unwrap()
            .wait();
        let QueryOutcome::Converted { output, .. } =
            response.outcome.expect("retry must absorb the injected transient faults")
        else {
            panic!("expected a conversion outcome");
        };
        assert_eq!(
            std::fs::read(&output).unwrap(),
            std::fs::read(&oneshot.outputs[0]).unwrap(),
            "{region_text}: engine output under faults must match pristine one-shot bytes"
        );
    }

    let stats = engine.drain();
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed, 0);
    // Attempt 1 hits the bamx wrapper's fault, attempt 2 the baix one's;
    // attempt 3 opens clean. The second request is a cache hit.
    assert_eq!(stats.transient_retries, 2);
    assert_eq!(stats.quarantined, 0);
    assert_eq!(stats.backoff_rejections, 0);
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.cache_hits, 1);
}

/// The identity guarantee must survive the segmented-store rebuild: for
/// every worker count × segment count × streaming mode, and for every
/// region × format in a mixed request batch submitted all at once, the
/// part file is byte-identical to single-threaded one-shot partial
/// conversion (`convert_index_list` under `convert_partial`). Workers
/// race on the shared cache — including the cold single-flight decode —
/// and batching drains several queued requests per wakeup; none of that
/// may change a single output byte.
#[test]
fn engine_byte_identity_holds_across_workers_segments_and_streaming() {
    use ngs_pipeline::PipelineConfig;

    let ds = Dataset::generate(&DatasetSpec {
        n_records: 1_000,
        n_chroms: 2,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let shard_dir = dir.path().join("shards");
    let prep = conv.preprocess(&bam_path, &shard_dir).unwrap();

    // Reference bytes: one-shot single-threaded partial conversion.
    let header_probe = ngs_bamx::BamxFile::open(&prep.bamx_path).unwrap();
    let regions = ["chr1:1-2500", "chr1:4001-8000", "chr2:1-100000"];
    let formats = [TargetFormat::Sam, TargetFormat::Bed];
    let mix: Vec<(&str, TargetFormat)> =
        regions.iter().flat_map(|r| formats.iter().map(move |t| (*r, *t))).collect();
    let reference: Vec<(std::ffi::OsString, Vec<u8>)> = mix
        .iter()
        .enumerate()
        .map(|(i, (region_text, target))| {
            let region = Region::parse(region_text, header_probe.header()).unwrap();
            let out = dir.path().join(format!("m-ref-{i}"));
            let oneshot = conv
                .convert_partial(&prep.bamx_path, &prep.baix_path, &region, *target, &out)
                .unwrap();
            let path = &oneshot.outputs[0];
            (path.file_name().unwrap().to_os_string(), std::fs::read(path).unwrap())
        })
        .collect();

    for workers in [1usize, 4, 8] {
        for segments in [1usize, 4] {
            for streaming in [false, true] {
                let config = EngineConfig {
                    workers,
                    segments,
                    convert: ConvertConfig::with_ranks(1),
                    streaming: streaming.then(|| PipelineConfig {
                        workers: 2,
                        batch_size: 64,
                        channel_bound: 2,
                        ..Default::default()
                    }),
                    ..Default::default()
                };
                let engine = QueryEngine::new(&shard_dir, config).unwrap();
                assert_eq!(engine.store().segment_count(), segments);
                // Submit the whole mix at once so the workers genuinely
                // race (and the cold open genuinely coalesces).
                let tickets: Vec<_> = mix
                    .iter()
                    .enumerate()
                    .map(|(i, (region_text, target))| {
                        let out_dir = dir
                            .path()
                            .join(format!("m-w{workers}-s{segments}-p{streaming}-{i}"));
                        engine
                            .submit(QueryRequest {
                                dataset: "input".into(),
                                region: (*region_text).into(),
                                kind: QueryKind::Convert { format: *target, out_dir },
                                deadline: None,
                                class: QueryClass::Interactive,
                            })
                            .unwrap()
                    })
                    .collect();
                for (i, ticket) in tickets.into_iter().enumerate() {
                    let label = format!(
                        "workers={workers} segments={segments} streaming={streaming} \
                         request={:?}",
                        mix[i]
                    );
                    let QueryOutcome::Converted { output, .. } = ticket
                        .wait()
                        .outcome
                        .unwrap_or_else(|e| panic!("{label}: failed: {e}"))
                    else {
                        panic!("{label}: expected a conversion outcome");
                    };
                    assert_eq!(
                        output.file_name().unwrap(),
                        reference[i].0,
                        "{label}: part-file name"
                    );
                    assert_eq!(
                        std::fs::read(&output).unwrap(),
                        reference[i].1,
                        "{label}: bytes must match single-threaded one-shot"
                    );
                }
                // One dataset: exactly one decode however many workers
                // raced for the cold shard.
                let counters = engine.store().counters();
                assert_eq!(counters.decodes, 1, "workers={workers} segments={segments}");
                assert_eq!(counters.hits + counters.misses, mix.len() as u64);
                let stats = engine.drain();
                assert_eq!(stats.completed, mix.len() as u64, "workers={workers}");
                assert_eq!(stats.failed, 0);
            }
        }
    }
}

/// Coverage requests agree with a direct histogram over the same region,
/// and deadline bookkeeping stays deterministic under a manual clock.
#[test]
fn engine_coverage_and_deadlines_are_deterministic() {
    let ds = Dataset::generate(&DatasetSpec {
        n_records: 400,
        coordinate_sorted: true,
        ..Default::default()
    });
    let dir = tempdir().unwrap();
    let bam_path = dir.path().join("input.bam");
    ds.write_bam(&bam_path).unwrap();
    let conv = BamConverter::new(ConvertConfig::with_ranks(1));
    let shard_dir = dir.path().join("shards");
    conv.preprocess(&bam_path, &shard_dir).unwrap();

    let clock = Arc::new(ManualClock::new());
    let engine = QueryEngine::with_clock(
        &shard_dir,
        EngineConfig { workers: 1, ..Default::default() },
        clock.clone(),
    )
    .unwrap();

    let ticket = engine
        .submit(QueryRequest {
            dataset: "input".into(),
            region: "chr1".into(),
            kind: QueryKind::Coverage { bin_size: 100 },
            deadline: None,
            class: QueryClass::Interactive,
        })
        .unwrap();
    let response = ticket.wait();
    let QueryOutcome::Coverage { bins, bin_size, records } =
        response.outcome.expect("coverage should succeed")
    else {
        panic!("expected a coverage outcome");
    };
    assert_eq!(bin_size, 100);
    assert!(!bins.is_empty());
    assert!(records > 0);
    // Every mapped base lands in some bin: total coverage is positive.
    assert!(bins.iter().sum::<f64>() > 0.0);

    let stats = engine.drain();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.deadline_missed, 0);
}
