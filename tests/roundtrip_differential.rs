//! Differential round-trip: parsing a SAM stream, encoding it through a
//! BAMX shard (both body compressions), decoding it back, and re-emitting
//! SAM must reproduce the input byte for byte. Any lossy step in the
//! record codec — a narrowed tag type, a re-ordered field, a normalized
//! CIGAR — shows up here as a first-byte diff instead of a silent
//! downstream corruption.

use ngs_bamx::{write_bamx_file, BamxCompression, BamxFile};
use ngs_formats::sam::{SamReader, SamWriter};
use ngs_simgen::{Dataset, DatasetSpec};
use tempfile::tempdir;

/// SAM text → parsed records → BAMX shard on disk → decoded records →
/// SAM text, asserting byte identity with the input.
fn assert_sam_round_trips(spec: &DatasetSpec, compression: BamxCompression) {
    let ds = Dataset::generate(spec);
    let original = ds.to_sam_bytes();

    let mut reader = SamReader::new(&original[..]).unwrap();
    let header = reader.header().clone();
    let records: Vec<_> = reader.records().collect::<Result<Vec<_>, _>>().unwrap();
    assert_eq!(records.len(), spec.n_records, "parse must see every record");

    let dir = tempdir().unwrap();
    let path = dir.path().join("rt.bamx");
    write_bamx_file(&path, &header, &records, compression).unwrap();
    let shard = BamxFile::open(&path).unwrap();
    let decoded = shard.read_range(0, shard.len()).unwrap();
    assert_eq!(decoded.len(), records.len());

    let mut writer = SamWriter::new(Vec::new(), shard.header()).unwrap();
    for record in &decoded {
        writer.write_record(record).unwrap();
    }
    let rewritten = writer.finish().unwrap();
    assert_eq!(
        rewritten, original,
        "SAM→BAMX({compression:?})→SAM must be byte-identical (seed {})",
        spec.seed
    );
}

#[test]
fn sam_bamx_sam_is_byte_identical_plain_body() {
    for seed in [1u64, 20140519, 987654321] {
        let spec = DatasetSpec {
            n_records: 800,
            n_chroms: 2,
            coordinate_sorted: true,
            seed,
            ..Default::default()
        };
        assert_sam_round_trips(&spec, BamxCompression::Plain);
    }
}

#[test]
fn sam_bamx_sam_is_byte_identical_bgzf_body() {
    for seed in [2u64, 20140519] {
        let spec = DatasetSpec {
            n_records: 1_200,
            n_chroms: 3,
            coordinate_sorted: true,
            seed,
            ..Default::default()
        };
        assert_sam_round_trips(&spec, BamxCompression::Bgzf);
    }
}

#[test]
fn sam_bamx_sam_is_byte_identical_unsorted_small() {
    // Unsorted order exercises the codec without the positional index
    // assumptions; tiny datasets exercise the single-block edge.
    for n_records in [1usize, 7, 63] {
        let spec = DatasetSpec {
            n_records,
            coordinate_sorted: false,
            seed: 42,
            ..Default::default()
        };
        assert_sam_round_trips(&spec, BamxCompression::Plain);
        assert_sam_round_trips(&spec, BamxCompression::Bgzf);
    }
}
