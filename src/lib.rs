pub use ngs_core as core_api;
