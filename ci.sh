#!/usr/bin/env sh
# Offline CI gate: everything must pass before merging.
#
#   ./ci.sh            # build + test + clippy (warnings are errors)
#   ./ci.sh --quick    # skip the release build
#
# The workspace is fully vendored (shims/* stand in for crates.io
# dependencies), so this runs with no network access.
set -eu

quick=0
[ "${1:-}" = "--quick" ] && quick=1

echo "==> cargo build --workspace --all-targets"
cargo build --workspace --all-targets

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --workspace --release"
    cargo build --workspace --release
fi

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo clippy --workspace --all-targets (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# Fault matrix: the corruption suites run in the workspace tests above,
# but the chaos verifier exercises the full engine retry/quarantine path
# end to end and exits nonzero on any failure-model violation.
echo "==> ngsp chaos (fault-injection verify)"
cargo run -p ngs-cli --bin ngsp -- chaos --plans 48 --records 300

echo "==> ci.sh: all green"
