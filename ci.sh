#!/usr/bin/env sh
# Offline CI gate: everything must pass before merging.
#
#   ./ci.sh            # build + test + clippy (warnings are errors)
#   ./ci.sh --quick    # skip the release build
#
# The workspace is fully vendored (shims/* stand in for crates.io
# dependencies), so this runs with no network access.
set -eu

quick=0
[ "${1:-}" = "--quick" ] && quick=1

echo "==> cargo build --workspace --all-targets"
cargo build --workspace --all-targets

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --workspace --release"
    cargo build --workspace --release
fi

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo clippy --workspace --all-targets (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# Fault matrix: the corruption suites run in the workspace tests above,
# but the chaos verifier exercises the full engine retry/quarantine path
# end to end and exits nonzero on any failure-model violation.
echo "==> ngsp chaos (fault-injection verify)"
cargo run -p ngs-cli --bin ngsp -- chaos --plans 48 --records 300

# Power-cut matrix: kill preprocessing at evenly spaced (plus tail) byte
# offsets of the publication stream, then assert the repository reopens
# clean, resume restores a byte-identical shard set, and the query
# engine serves identical bytes (DESIGN.md §7.5).
echo "==> ngsp chaos --crash (power-cut recovery matrix)"
cargo run -p ngs-cli --bin ngsp -- chaos --crash --points 8 --records 300

# Streaming pipeline smoke: a small seeded dataset through both graphs,
# byte-identity against the batch converter, plus the quarantine /
# transient-retry drain tests under injected faults (DESIGN.md §8).
echo "==> ngsp pipeline smoke (both graphs, byte-identity, fault drain)"
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
cargo run -p ngs-cli --bin ngsp -- \
    generate --records 1500 --out "$smoke/in.bam" --sorted
cargo run -p ngs-cli --bin ngsp -- \
    convert "$smoke/in.bam" --to sam --out "$smoke/batch" --ranks 1
cargo run -p ngs-cli --bin ngsp -- \
    pipeline "$smoke/in.bam" --to sam --out "$smoke/stream" \
    --workers 2 --batch 128 --bound 2
cmp "$smoke/batch/in.part0000.sam" "$smoke/stream/in.part0000.sam"
cargo run -p ngs-cli --bin ngsp -- \
    pipeline "$smoke/in.bam" --analyze --rounds 4 > /dev/null
cargo test --quiet -p ngs-pipeline --test streaming_identity -- \
    corrupt_shard_is_quarantined_and_graph_drains \
    transient_faults_are_retried_to_identical_output

# Collate smoke: the three keyed-regroup workloads over a seeded
# duplicate-bearing fixture. Each runs once in memory and once with a
# tiny spill budget (forcing ShardRepo-published runs + k-way merge);
# output must be byte-identical either way (DESIGN.md §10.5), and the
# identity/crash proptest suites must pass.
echo "==> ngsp collate/markdup/sort smoke (spill vs in-memory byte-identity)"
cargo run -p ngs-cli --bin ngsp -- \
    generate --records 1200 --duplicates 0.15 --out "$smoke/dup.bam"
for cmd in "sort --by coord" "sort --by name" "collate" "markdup"; do
    cargo run -p ngs-cli --bin ngsp -- \
        $cmd "$smoke/dup.bam" --out "$smoke/mem.bam" > /dev/null
    cargo run -p ngs-cli --bin ngsp -- \
        $cmd "$smoke/dup.bam" --out "$smoke/spill.bam" \
        --spill-budget 8000 --workers 2 > /dev/null
    cmp "$smoke/mem.bam" "$smoke/spill.bam"
done
cargo test --quiet -p ngs-collate --test collate_identity
echo "==> repro collate (shuffle scaling + spill sweep, BENCH_collate.json)"
cargo run --release -p ngs-bench --bin repro -- collate --scale 0.05 > /dev/null
python3 -c 'import json; json.load(open("BENCH_collate.json"))'

# Observability smoke: the unified registry report must stay valid JSON
# (CI is the consumer the byte-determinism contract protects), and the
# overhead experiment must run end to end (DESIGN.md §9).
echo "==> ngsp stats smoke (registry JSON parses, trace is valid JSONL)"
cargo run -p ngs-cli --bin ngsp -- stats --records 800 --json \
    | python3 -c 'import json,sys; json.load(sys.stdin)'
cargo run -p ngs-cli --bin ngsp -- \
    pipeline "$smoke/in.bam" --to sam --out "$smoke/trace-out" \
    --trace "$smoke/pipeline.trace" --workers 2 > /dev/null
python3 -c 'import json,sys; [json.loads(l) for l in open(sys.argv[1])]' \
    "$smoke/pipeline.trace"
echo "==> repro obs (instrumentation overhead, BENCH_obs.json)"
cargo run --release -p ngs-bench --bin repro -- obs --scale 0.05 > /dev/null
python3 -c 'import json; json.load(open("BENCH_obs.json"))'

# Query-scaling smoke: the concurrency battery behind the segmented
# store + single-flight decode (DESIGN.md §11), then a smoke-scale
# BENCH_query.json regeneration gated on the regression this exists to
# kill — warm throughput at 8 workers must not drop below 1 worker.
echo "==> query-scaling (segmented store + single-flight + engine identity)"
cargo test --quiet -p ngs-query --test store_concurrency --test single_flight
cargo test --quiet -p ngs-repro --test query_engine
echo "==> repro query (worker-scaling gate, BENCH_query.json)"
cargo run --release -p ngs-bench --bin repro -- query --scale 0.05 > /dev/null
python3 - <<'PY'
import json
rows = json.load(open("BENCH_query.json"))["rows"]
warm = {r["workers"]: r["warm"]["requests_per_sec"] for r in rows}
assert warm[8] >= warm[1], f"warm req/s regressed with workers: {warm}"
print(f"warm req/s 1->8 workers: {warm[1]} -> {warm[8]}")
PY

# Dist smoke: the distributed tier's acceptance gates (DESIGN.md §12) —
# placement math stays proptest-pinned, the socket loopback failover
# path answers byte-identically with a dead rank, the chaos matrix
# (kill-a-rank + injected delivery faults) passes, and repro dist
# emits parseable JSON.
echo "==> dist-smoke (placement proptests + socket failover + chaos matrix)"
cargo test --quiet -p ngs-dist --test placement_props
cargo test --quiet -p ngs-dist --test failover -- \
    socket_failover_after_rank_death_is_byte_identical
cargo run -p ngs-cli --bin ngsp -- chaos --dist --plans 8 --records 200
cargo run -p ngs-cli --bin ngsp -- \
    dist --transport socket --kill 0 --records 200 > /dev/null
echo "==> repro dist (placement scaling + failover latency, BENCH_dist.json)"
cargo run --release -p ngs-bench --bin repro -- dist --scale 0.05 > /dev/null
python3 -c 'import json; json.load(open("BENCH_dist.json"))'

# Load-smoke: graceful degradation under sustained overload
# (DESIGN.md §13). The deadline/priority/shed acceptance suites run in
# the workspace tests above; here the overload chaos matrix verifies
# typed shed-before-decode + byte-identity + no-quarantine under
# delivery faults end to end, and a smoke-scale BENCH_load.json is
# gated on the headline property: goodput *rate* at 2x offered load must
# hold at >= 80% of the rate at 1x (shedding the excess, not collapsing;
# completion counts are not comparable across rows because the open-loop
# replay span shrinks as the offered rate rises).
echo "==> load-smoke (overload chaos matrix + goodput-retention gate)"
cargo test --quiet -p ngs-query --test overload --test deadline_edges
cargo run -p ngs-cli --bin ngsp -- chaos --overload --plans 4 --records 200
echo "==> repro load (open-loop overload sweep, BENCH_load.json)"
cargo run --release -p ngs-bench --bin repro -- load --scale 0.05 > /dev/null
python3 - <<'PY'
import json
rows = json.load(open("BENCH_load.json"))["rows"]
rps = {r["offered_multiplier"]: r["goodput_rps"] for r in rows}
assert rps[2.0] >= 0.8 * rps[1.0], \
    f"goodput rate collapsed under 2x overload: {rps}"
print(f"goodput req/s 1x -> 2x offered: {rps[1.0]} -> {rps[2.0]}")
PY

# BAMX v2 smoke: columnar-layout acceptance (DESIGN.md §14). The
# corruption and byte-identity suites run in the workspace tests above;
# here the v2 chaos sweep runs end to end and a smoke-scale
# BENCH_bamx2.json is gated on the two headline properties: the v2 shard
# is smaller than v1 on disk, and a positions-only projected scan
# decodes strictly fewer column bytes than a full scan.
echo "==> bamx2-smoke (v1/v2 identity + projection gate)"
cargo test --quiet -p ngs-repro --test bamx_v2
echo "==> repro bamx2 (columnar size + projection gate, BENCH_bamx2.json)"
cargo run --release -p ngs-bench --bin repro -- bamx2 --scale 0.05 > /dev/null
python3 - <<'PY'
import json
b = json.load(open("BENCH_bamx2.json"))
assert b["v2_shard_bytes"] < b["v1_shard_bytes"], \
    f"v2 shard not smaller: {b['v2_shard_bytes']} vs {b['v1_shard_bytes']}"
assert b["positions_scan_column_bytes"] < b["full_scan_column_bytes"], \
    "projection decoded no fewer bytes than a full scan"
print(f"v2/v1 size ratio: {b['v2_over_v1_size_ratio']}; "
      f"projected scan: {b['positions_scan_column_bytes']} "
      f"of {b['full_scan_column_bytes']} column bytes")
PY

echo "==> ci.sh: all green"
